//! # Dolos
//!
//! A reproduction of *"Dolos: Improving the Performance of Persistent
//! Applications in ADR-Supported Secure Memory"* (Han, Tuck, Awad — MICRO
//! 2021) as a Rust workspace.
//!
//! This facade crate re-exports the public API of every subsystem so
//! examples, integration tests, and downstream users can depend on a single
//! crate:
//!
//! * [`sim`] — simulation kernel (cycles, resources, RNG, statistics);
//! * [`crypto`] — functional AES-128 / CTR pads / CBC-MAC plus the paper's
//!   latency model;
//! * [`nvm`] — PCM device model, NVM byte store, and the Write Pending Queue;
//! * [`secmem`] — split counters, counter cache, Bonsai Merkle Tree, Tree of
//!   Counters, Anubis shadow table, Osiris counter recovery;
//! * [`core`] — the paper's contribution: Mi-SU / Ma-SU split secure memory
//!   controller, crash + recovery machinery, attack detection;
//! * [`whisper`] — WHISPER-style persistent workloads and the trace engine;
//! * [`trace`] — event-trace analysis: latency histograms, per-persist
//!   critical-path attribution, Chrome `trace_event` export.
//!
//! # Quickstart
//!
//! ```
//! use dolos::core::{ControllerConfig, ControllerKind, MiSuKind, SecureMemorySystem};
//! use dolos::sim::Cycle;
//!
//! // Build a Dolos controller with the Partial-WPQ Mi-SU design.
//! let config = ControllerConfig::dolos(MiSuKind::Partial);
//! let mut system = SecureMemorySystem::new(config);
//!
//! // Persist one cacheline; the returned time is when the persist completes.
//! let line = [0xABu8; 64];
//! let done = system.persist_write(Cycle::ZERO, 0x1000, &line);
//! assert!(done.as_u64() > 0);
//!
//! // Read it back through the controller (hits the WPQ tag array).
//! let (_, data) = system.read(done, 0x1000);
//! assert_eq!(data, line);
//! ```

#![forbid(unsafe_code)]

pub use dolos_core as core;
pub use dolos_crypto as crypto;
pub use dolos_nvm as nvm;
pub use dolos_secmem as secmem;
pub use dolos_sim as sim;
pub use dolos_trace as trace;
pub use dolos_whisper as whisper;
