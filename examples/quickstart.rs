//! Quickstart: persist a few cachelines through a Dolos controller, watch
//! the critical-path difference against the baseline, then crash and
//! recover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dolos::core::{ControllerConfig, MiSuKind, SecureMemorySystem};
use dolos::sim::Cycle;

fn main() {
    // A Dolos controller with the Partial-WPQ Mi-SU (one MAC on the
    // critical path, 13 of 16 WPQ entries usable).
    let mut dolos = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
    // The state-of-the-art baseline: the whole security pipeline runs
    // before a write may enter the persistence domain.
    let mut baseline = SecureMemorySystem::new(ControllerConfig::baseline());

    let line = *b"dolos makes persists fast!......................................";

    let dolos_done = dolos.persist_write(Cycle::ZERO, 0x1000, &line);
    let baseline_done = baseline.persist_write(Cycle::ZERO, 0x1000, &line);
    println!("persist completion:");
    println!("  dolos(partial): {:>6} cycles", dolos_done.as_u64());
    println!("  baseline      : {:>6} cycles", baseline_done.as_u64());

    // Reads hit the WPQ tag array until the Ma-SU drains the entry.
    let (t, data) = dolos.read(dolos_done, 0x1000);
    assert_eq!(data, line);
    println!(
        "read-back through WPQ tag array at +{} cycle(s)",
        t - dolos_done
    );

    // Power failure: ADR dumps the Mi-SU-protected WPQ to NVM.
    let mut t = dolos_done;
    for i in 0..8u64 {
        t = dolos.persist_write(t, 0x2000 + i * 64, &[i as u8; 64]);
    }
    dolos.crash(t);
    let report = dolos.recover().expect("integrity verified");
    println!(
        "crash + recovery: {} WPQ entries replayed, estimated Mi-SU recovery {} cycles (~{:.3} ms)",
        report.wpq_entries_replayed,
        report.estimated_misu_cycles,
        report.estimated_misu_cycles as f64 / 4.0e6
    );
    for i in 0..8u64 {
        let (_, data) = dolos.read(Cycle::ZERO, 0x2000 + i * 64);
        assert_eq!(data, [i as u8; 64]);
    }
    println!("all persisted data verified after recovery ✓");
}
