//! Demonstrates the threat model of §4.1: spoofing, relocation, and replay
//! attacks against NVM contents — including the ADR-dumped WPQ — are all
//! detected.
//!
//! ```text
//! cargo run --release --example attack_detection
//! ```

use dolos::core::{ControllerConfig, MiSuKind, SecureMemorySystem};
use dolos::nvm::LineAddr;
use dolos::sim::Cycle;

fn fresh_system_with_data() -> (SecureMemorySystem, Cycle) {
    let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
    let mut t = Cycle::ZERO;
    for i in 0..4u64 {
        t = sys.persist_write(t, i * 64, &[0x10 + i as u8; 64]);
    }
    let quiet = sys.quiesce(t);
    (sys, quiet)
}

fn main() {
    // 1. Spoofing: overwrite a ciphertext line with arbitrary bytes.
    let (mut sys, t) = fresh_system_with_data();
    sys.nvm_mut()
        .tamper(LineAddr::new(0).unwrap(), |line| line[17] ^= 0x80);
    let err = sys.try_read(t, 0).expect_err("spoofing must be detected");
    println!("spoofing attack    -> detected: {err}");

    // 2. Relocation: swap two ciphertext lines (and their MAC slots).
    let (mut sys, t) = fresh_system_with_data();
    let a = LineAddr::new(0).unwrap();
    let b = LineAddr::new(64).unwrap();
    let la = sys.nvm().peek(a);
    let lb = sys.nvm().peek(b);
    sys.nvm_mut().poke(a, &lb);
    sys.nvm_mut().poke(b, &la);
    let err = sys.try_read(t, 0).expect_err("relocation must be detected");
    println!("relocation attack  -> detected: {err}");

    // 3. Replay: roll a line back to an older (validly encrypted) version.
    let (mut sys, t) = fresh_system_with_data();
    let stale = sys.nvm().snapshot_line(LineAddr::new(0).unwrap());
    let t2 = sys.persist_write(t, 0, &[0xEE; 64]);
    let quiet = sys.quiesce(t2);
    sys.nvm_mut()
        .replay_snapshot(LineAddr::new(0).unwrap(), &stale);
    let err = sys.try_read(quiet, 0).expect_err("replay must be detected");
    println!("replay attack      -> detected: {err}");

    // 4. Tampering with the ADR-dumped WPQ across a crash.
    let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
    let t = sys.persist_write(Cycle::ZERO, 0x100, &[0x42; 64]);
    sys.crash(t);
    let dump0 = sys.layout().wpq_dump_addr(0);
    sys.nvm_mut().tamper(dump0, |line| line[0] ^= 1);
    let err = sys.recover().expect_err("dump tampering must be detected");
    println!("WPQ dump tampering -> detected: {err}");

    // 5. Control: an untampered system reads back cleanly.
    let (mut sys, t) = fresh_system_with_data();
    let (_, data) = sys.read(t, 0);
    assert_eq!(data, [0x10; 64]);
    println!("control (no attack) -> verified read ✓");
}
