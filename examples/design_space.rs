//! Explores the Mi-SU design space of §4.3 on a live workload: critical-path
//! latency vs usable WPQ entries vs retry behaviour, next to the baseline
//! and the non-secure ideal.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use dolos::core::{ControllerConfig, MiSuKind};
use dolos::whisper::runner::{run_workload, RunConfig};
use dolos::whisper::workloads::WorkloadKind;

fn main() {
    let rc = RunConfig {
        transactions: 300,
        txn_bytes: 1024,
        warmup: 32,
        ..RunConfig::default()
    };
    let workload = WorkloadKind::Hashmap;

    println!(
        "workload: {} | {} transactions of {} B\n",
        workload, rc.transactions, rc.txn_bytes
    );
    println!(
        "{:<16} {:>6} {:>8} {:>12} {:>12} {:>10}",
        "controller", "WPQ", "latency", "cycles", "retries/KWR", "speedup"
    );

    let baseline = run_workload(workload, ControllerConfig::baseline(), &rc);
    let configs: Vec<(String, ControllerConfig)> = vec![
        ("ideal".into(), ControllerConfig::ideal()),
        ("pre-wpq-secure".into(), ControllerConfig::baseline()),
        ("dolos-full".into(), ControllerConfig::dolos(MiSuKind::Full)),
        (
            "dolos-partial".into(),
            ControllerConfig::dolos(MiSuKind::Partial),
        ),
        ("dolos-post".into(), ControllerConfig::dolos(MiSuKind::Post)),
    ];
    for (name, config) in configs {
        let wpq = config.usable_wpq_entries();
        let latency = config.misu_critical_cycles();
        let result = run_workload(workload, config, &rc);
        println!(
            "{:<16} {:>6} {:>8} {:>12} {:>12.1} {:>9.3}x",
            name,
            wpq,
            latency,
            result.cycles,
            result.retries_per_kwr(),
            result.speedup_vs(&baseline),
        );
    }

    println!("\nreading the table:");
    println!("  - the baseline pays the full security pipeline on every persist;");
    println!("  - Full/Partial trade one extra MAC (320 vs 160 cycles) against 3 extra");
    println!("    usable WPQ entries (16 vs 13) — they land close together;");
    println!("  - Post has zero critical-path latency but only 10 usable entries, so");
    println!("    it retries more and finishes slightly behind (Figure 12's shape).");
}
