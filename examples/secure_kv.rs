//! A crash-consistent key-value store on Dolos-secured persistent memory.
//!
//! Uses the persistent-memory environment and undo-log transactions the
//! WHISPER workloads are built on: every `put` is atomic and every
//! committed `put` survives an arbitrary power failure — with all data
//! encrypted and integrity-protected in NVM.
//!
//! ```text
//! cargo run --release --example secure_kv
//! ```

use dolos::core::{ControllerConfig, MiSuKind};
use dolos::whisper::{PmEnv, UndoLog};

/// A tiny persistent KV store: fixed-slot directory + out-of-place values.
struct SecureKv {
    directory: u64,
    slots: u64,
    log: UndoLog,
}

impl SecureKv {
    fn create(env: &mut PmEnv, slots: u64) -> Self {
        let directory = env.alloc(slots * 16);
        for i in 0..slots {
            env.write_u64(directory + i * 16, 0);
        }
        env.persist(directory, slots * 16);
        let log = UndoLog::new(env, 64 * 1024);
        Self {
            directory,
            slots,
            log,
        }
    }

    fn slot(&self, key: u64) -> u64 {
        self.directory + (key % self.slots) * 16
    }

    fn put(&mut self, env: &mut PmEnv, key: u64, value: &[u8]) {
        self.log.begin(env);
        let slot = self.slot(key);
        let vptr = env.alloc(8 + value.len() as u64);
        env.write_u64(vptr, value.len() as u64);
        env.write_bytes(vptr + 8, value);
        env.persist(vptr, 8 + value.len() as u64);
        self.log.set_u64(env, slot, key + 1);
        self.log.set_u64(env, slot + 8, vptr);
        self.log.commit(env);
    }

    fn get(&self, env: &mut PmEnv, key: u64) -> Option<Vec<u8>> {
        let slot = self.slot(key);
        if env.read_u64(slot) != key + 1 {
            return None;
        }
        let vptr = env.read_u64(slot + 8);
        let len = env.read_u64(vptr) as usize;
        Some(env.read_bytes(vptr + 8, len))
    }
}

fn main() {
    let mut env = PmEnv::new(ControllerConfig::dolos(MiSuKind::Partial));
    let mut kv = SecureKv::create(&mut env, 128);

    println!("populating 32 keys inside undo-log transactions...");
    for key in 0..32u64 {
        let value = format!("value-for-key-{key}");
        kv.put(&mut env, key, value.as_bytes());
    }

    // Begin a transaction and crash before it commits: it must roll back.
    kv.log.begin(&mut env);
    let slot = kv.slot(7);
    kv.log.set_u64(&mut env, slot, 9999); // torn update
    println!("power failure mid-transaction on key 7...");
    env.crash();
    env.recover().expect("memory integrity verified");
    let undone = kv.log.recover(&mut env);
    println!("undo log rolled back {undone} record(s)");

    for key in 0..32u64 {
        let expected = format!("value-for-key-{key}");
        let got = kv.get(&mut env, key).expect("key present");
        assert_eq!(got, expected.as_bytes(), "key {key}");
    }
    println!("all 32 committed values intact; torn update rolled back ✓");

    let stats = env.system().stats();
    println!(
        "persists: {}, WPQ coalesces: {}, counter-cache hit rate: {:.1}%",
        stats.get_or_zero("ctrl.persists"),
        stats.get_or_zero("wpq.coalesces"),
        100.0 * stats.get_or_zero("ctr_cache.hits")
            / (stats.get_or_zero("ctr_cache.hits") + stats.get_or_zero("ctr_cache.misses"))
                .max(1.0),
    );
}
