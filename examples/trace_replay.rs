//! Capture a workload's persist trace once, then replay it against every
//! controller architecture — gem5-style trace-driven evaluation.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use dolos::core::{ControllerConfig, MiSuKind};
use dolos::sim::rng::XorShift;
use dolos::whisper::workloads::WorkloadKind;
use dolos::whisper::PmEnv;

fn main() {
    // 1. Record: run the B+-tree workload once with tracing on.
    let mut env = PmEnv::new(ControllerConfig::dolos(MiSuKind::Partial));
    env.start_recording();
    let mut workload = WorkloadKind::Btree.build();
    workload.setup(&mut env);
    let mut rng = XorShift::new(42);
    for _ in 0..100 {
        workload.transaction(&mut env, 1024, &mut rng);
    }
    let recorded_cycles = env.now().as_u64();
    let trace = env.take_trace().expect("recording was on");
    println!(
        "captured {} ops, {} persisted lines, {} cycles live",
        trace.len(),
        trace.persist_lines(),
        recorded_cycles
    );

    // 2. Serialize + parse round trip (the on-disk format).
    let text = trace.serialize();
    let trace = dolos::whisper::Trace::parse(&text).expect("well-formed");
    println!("serialized to {} bytes of text", text.len());

    // 3. Replay against every architecture.
    println!(
        "\n{:<16} {:>12} {:>10} {:>8}",
        "controller", "cycles", "retries", "vs live"
    );
    for config in [
        ControllerConfig::ideal(),
        ControllerConfig::deferred(),
        ControllerConfig::baseline(),
        ControllerConfig::dolos(MiSuKind::Full),
        ControllerConfig::dolos(MiSuKind::Partial),
        ControllerConfig::dolos(MiSuKind::Post),
    ] {
        let name = config.kind.name();
        let result = trace.replay(config);
        println!(
            "{:<16} {:>12} {:>10} {:>7.3}x",
            name,
            result.cycles,
            result.retries,
            recorded_cycles as f64 / result.cycles as f64
        );
    }
    println!("\n(dolos-partial replays at exactly 1.000x: the replay is cycle-exact)");
}
