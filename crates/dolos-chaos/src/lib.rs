//! dolos-chaos: deterministic crash-consistency and adversarial
//! fault-injection harness for the Dolos secure-memory simulator.
//!
//! The crate turns the functional simulator into a falsifier. Where the
//! bench crates ask "how fast is each design?", chaos asks "does each
//! design actually keep its crash-consistency and integrity promises?" —
//! and it asks adversarially:
//!
//! * [`schedule`] — seed-reproducible scenarios: bursts of persist writes,
//!   power failures injected at specific pipeline points (mid-WPQ-insert,
//!   mid-Mi-SU MAC, mid-Ma-SU drain, during recovery itself), torn ADR
//!   dumps and NVM bit flips applied while the machine is dark;
//! * [`driver`] — executes one schedule against one controller design and
//!   checks every obligation with a golden in-order oracle
//!   ([`dolos_whisper::oracle::GoldenOracle`]): committed writes must
//!   survive exactly, the one in-flight write may be old-or-new, and
//!   tampering must be *detected* (a [`dolos_core::SecurityError`]) or
//!   provably harmless — never silent corruption;
//! * [`mod@shrink`] — greedily minimizes failing scenarios to the smallest
//!   reproducer, property-testing style; generic over [`Shrinkable`], so
//!   other falsifiers (`dolos-verify`) reuse the same engine;
//! * [`campaign`] — sweeps schedules and WHISPER workloads across all six
//!   controller designs and emits a pass/fail matrix plus a JSON report.
//!
//! Everything is deterministic: one seed replays the entire campaign.
//! The `chaos` binary is the CLI entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod driver;
pub mod schedule;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, DesignSummary, FailureCase};
pub use driver::{apply_tamper, run_schedule, RoundOutcome, RoundResult, RunReport};
pub use schedule::{Round, Schedule, ScheduleConfig, TamperSpec};
pub use shrink::{shrink, shrink_with, Shrinkable};
