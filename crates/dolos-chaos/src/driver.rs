//! Executes one [`Schedule`] against one controller configuration and
//! checks every crash-consistency obligation along the way.
//!
//! The contract per round:
//!
//! * a clean (untampered) crash must recover: `recover()` succeeds —
//!   restarting once if the schedule injects a nested crash — `audit()` is
//!   clean, and the [`GoldenOracle`] differential check passes (committed
//!   writes exact, the one in-flight write old-or-new);
//! * a tampered crash must not corrupt silently: either recovery/audit
//!   detects it (a [`SecurityError`] — the run ends there, **pass**), or
//!   the corruption was harmless and the oracle still verifies. A secure
//!   design that recovers "cleanly" into diverged data **fails**;
//! * the non-secure ideal design carries no detection obligation: observed
//!   corruption under tampering is recorded but does not fail the run.

use dolos_core::inject::{FaultPlan, InjectionPoint};
use dolos_core::{ControllerConfig, ControllerKind, SecureMemorySystem, SecurityError};
use dolos_nvm::{Line, NvmDevice};
use dolos_secmem::layout::{MetaRegion, MetadataLayout};
use dolos_sim::rng::XorShift;
use dolos_sim::Cycle;
use dolos_whisper::oracle::GoldenOracle;

use crate::schedule::{Schedule, TamperSpec};

/// What happened in one executed round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundOutcome {
    /// The round crashed (injected or plain), recovered and verified clean.
    Clean {
        /// The injection point that fired, if the armed plan fired.
        fired: Option<InjectionPoint>,
        /// WPQ entries replayed by recovery.
        replayed: usize,
        /// Whether the scheduled nested crash fired during recovery.
        nested_fired: bool,
    },
    /// Corruption was applied and recovery or audit detected it. Terminal.
    TamperDetected {
        /// The detection error, rendered.
        error: String,
    },
    /// Corruption was applied, nothing detected it, and the differential
    /// check still passed: the corruption hit dead state. Terminal.
    TamperHarmless,
    /// Corruption was applied, nothing detected it, and the data diverged.
    /// Terminal; a failure for secure designs, recorded for the ideal one.
    SilentCorruption {
        /// The divergence, rendered.
        mismatch: String,
    },
    /// The scheduled tamper could not be applied (its target region had no
    /// resident lines); the round was verified as a clean crash instead.
    TamperSkipped {
        /// The injection point that fired, if any.
        fired: Option<InjectionPoint>,
    },
}

/// Result of one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundResult {
    /// Index of the round within the schedule.
    pub index: usize,
    /// What happened.
    pub outcome: RoundOutcome,
}

/// Result of one full schedule run against one design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Design name (stable, from [`ControllerKind::name`]).
    pub design: &'static str,
    /// Whether every obligation held.
    pub pass: bool,
    /// First violated obligation, rendered, when `pass` is false.
    pub failure: Option<String>,
    /// Per-round outcomes, in execution order (stops at a terminal round
    /// or the first failure).
    pub rounds: Vec<RoundResult>,
    /// Persist operations whose completion the core observed.
    pub commits: usize,
    /// Total lines differentially verified across all rounds.
    pub lines_verified: usize,
}

fn fill_line(rng: &mut XorShift) -> Line {
    let mut data = [0u8; 64];
    for chunk in data.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    data
}

/// Applies a tamper while the system is crashed. Returns `false` if the
/// spec's target had no resident lines to corrupt.
///
/// `per_bank_slots` is the usable WPQ depth of one bank
/// ([`ControllerConfig::usable_wpq_entries`]): global dump slot `s` belongs
/// to bank `s / per_bank_slots`, which is how [`TamperSpec::TornBank`]
/// selects its victim shard.
///
/// Public so other falsifiers (`dolos-verify`) inject the same corruption
/// classes without re-deriving the torn-dump snapshot plumbing.
pub fn apply_tamper(
    nvm: &mut NvmDevice,
    layout: &MetadataLayout,
    spec: TamperSpec,
    dump_snapshot: &[(dolos_nvm::LineAddr, Line)],
    per_bank_slots: usize,
) -> bool {
    match spec {
        TamperSpec::FlipBit { region, pick, bit } => {
            let (start, end) = layout.region_range(region);
            let resident = nvm.resident_lines_in(start, end);
            if resident.is_empty() {
                return false;
            }
            let addr = resident[(pick % resident.len() as u64) as usize];
            nvm.flip_bit(addr, bit);
            true
        }
        TamperSpec::TornDump { drop } => {
            if dump_snapshot.is_empty() || drop == 0 {
                return false;
            }
            let n = drop.min(dump_snapshot.len());
            // The last `n` lines of the dump burst never left the buffer:
            // they still hold the previous epoch's contents.
            // audit:allow(persistence-domain) -- torn-dump fault injection models exactly the ADR loss the WPQ cannot see, so it must bypass it
            nvm.restore_lines(&dump_snapshot[dump_snapshot.len() - n..]);
            true
        }
        TamperSpec::TornBank { bank, drop } => {
            if drop == 0 || per_bank_slots == 0 {
                return false;
            }
            // Only the victim bank's payload lines revert; table lines and
            // other shards' slots persisted on their own reserve bursts.
            let (start, _) = layout.region_range(MetaRegion::WpqDump);
            let shard: Vec<(dolos_nvm::LineAddr, Line)> = dump_snapshot
                .iter()
                .copied()
                .filter(|(addr, _)| {
                    let slot = (addr.as_u64() - start) / 64;
                    slot / per_bank_slots as u64 == bank as u64
                })
                .collect();
            if shard.is_empty() {
                return false;
            }
            let n = drop.min(shard.len());
            // audit:allow(persistence-domain) -- per-bank torn-dump injection models one bank's ADR burst dying, so it must bypass the WPQ
            nvm.restore_lines(&shard[shard.len() - n..]);
            true
        }
    }
}

/// Runs `schedule` against a fresh system built from `config`.
pub fn run_schedule(config: &ControllerConfig, schedule: &Schedule) -> RunReport {
    let design = config.kind.name();
    let secure = !matches!(config.kind, ControllerKind::IdealNonSecure);
    let mut sys = SecureMemorySystem::new(config.clone());
    let layout = *sys.layout();
    let mut rng = XorShift::new(schedule.seed);
    let mut oracle = GoldenOracle::new();
    let mut report = RunReport {
        design,
        pass: true,
        failure: None,
        rounds: Vec::new(),
        commits: 0,
        lines_verified: 0,
    };
    let fail = |report: &mut RunReport, index: usize, message: String| {
        report.pass = false;
        report.failure = Some(format!("round {index}: {message}"));
    };

    for (index, round) in schedule.rounds.iter().enumerate() {
        // Stale-epoch snapshot for a scheduled torn dump, taken before this
        // round's crash overwrites the region.
        let dump_snapshot = if matches!(
            round.tamper,
            Some(TamperSpec::TornDump { .. } | TamperSpec::TornBank { .. })
        ) {
            let (start, end) = layout.region_range(MetaRegion::WpqDump);
            sys.nvm().snapshot_range(start, end)
        } else {
            Vec::new()
        };

        // --- write burst, possibly cut short by the armed fault ---
        if let Some((point, nth)) = round.fault {
            sys.arm_fault(FaultPlan::new(point, nth));
        }
        let mut t = Cycle::ZERO;
        let mut fired = None;
        for _ in 0..round.writes {
            let addr = rng.next_below(schedule.keyspace) * 64;
            let data = fill_line(&mut rng);
            oracle.stage(addr, data);
            match sys.try_persist_write(t, addr, &data) {
                Ok(done) => {
                    t = done;
                    oracle.commit();
                    report.commits += 1;
                }
                Err(SecurityError::PowerInterrupted { point }) => {
                    // The insert-point fault fires after the WPQ accepted
                    // the line: that persist completed.
                    if point == InjectionPoint::WpqInsert {
                        oracle.commit();
                        report.commits += 1;
                    }
                    fired = Some(point);
                    break;
                }
                Err(e) => {
                    fail(&mut report, index, format!("persist failed: {e}"));
                    return report;
                }
            }
        }
        sys.disarm_fault();
        if round.quiesce && !sys.is_crashed() {
            // Drain the queue completely so the crash dumps nothing and
            // every write below sits in fully settled NVM state.
            t = sys.quiesce(t);
        }
        if !sys.is_crashed() {
            // Plan never fired (or none armed): plain power failure with
            // the WPQ still loaded.
            sys.crash(t);
        }

        // --- adversarial window: the attacker holds the device ---
        let tampered = match round.tamper {
            Some(spec) => apply_tamper(
                sys.nvm_mut(),
                &layout,
                spec,
                &dump_snapshot,
                config.usable_wpq_entries(),
            ),
            None => false,
        };

        // --- boot: recover (restarting once on a nested crash) ---
        if let Some(nth) = round.nested {
            sys.arm_fault(FaultPlan::new(InjectionPoint::RecoveryReplay, nth));
        }
        let mut nested_fired = false;
        let mut recovery = sys.recover();
        if matches!(
            recovery,
            Err(SecurityError::PowerInterrupted {
                point: InjectionPoint::RecoveryReplay,
            })
        ) {
            nested_fired = true;
            recovery = sys.recover();
        }
        sys.disarm_fault();

        // --- verify the round's obligations ---
        let (detected, replayed) = match recovery {
            Ok(r) => match sys.audit() {
                Ok(_) => (None, r.wpq_entries_replayed),
                Err(e) => (Some(e), r.wpq_entries_replayed),
            },
            Err(e) => (Some(e), 0),
        };
        match detected {
            Some(error) => {
                if tampered {
                    // Attack detected: the security property held. Terminal —
                    // the machine refuses to come up.
                    report.rounds.push(RoundResult {
                        index,
                        outcome: RoundOutcome::TamperDetected {
                            error: error.to_string(),
                        },
                    });
                    return report;
                }
                fail(&mut report, index, format!("spurious detection: {error}"));
                return report;
            }
            None => {
                match oracle.verify(&mut sys) {
                    Ok(n) => {
                        report.lines_verified += n;
                        let outcome = if tampered {
                            RoundOutcome::TamperHarmless
                        } else if round.tamper.is_some() {
                            RoundOutcome::TamperSkipped { fired }
                        } else {
                            RoundOutcome::Clean {
                                fired,
                                replayed,
                                nested_fired,
                            }
                        };
                        let terminal = tampered;
                        report.rounds.push(RoundResult { index, outcome });
                        if terminal {
                            return report;
                        }
                    }
                    Err(mismatch) => {
                        if tampered && !secure {
                            // The non-secure design has no detection
                            // obligation; record the corruption.
                            report.rounds.push(RoundResult {
                                index,
                                outcome: RoundOutcome::SilentCorruption {
                                    mismatch: mismatch.to_string(),
                                },
                            });
                            return report;
                        }
                        let what = if tampered {
                            "silent corruption"
                        } else {
                            "divergence after clean recovery"
                        };
                        fail(&mut report, index, format!("{what}: {mismatch}"));
                        return report;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleConfig;
    use dolos_core::MiSuKind;

    #[test]
    fn clean_schedules_pass_on_every_design() {
        let config = ScheduleConfig {
            rounds: 3,
            writes_per_round: 16,
            keyspace: 32,
            tamper: false,
        };
        let schedule = Schedule::generate(11, &config);
        for design in [
            ControllerConfig::ideal(),
            ControllerConfig::baseline(),
            ControllerConfig::deferred(),
            ControllerConfig::dolos(MiSuKind::Full),
            ControllerConfig::dolos(MiSuKind::Partial),
            ControllerConfig::dolos(MiSuKind::Post),
        ] {
            let report = run_schedule(&design, &schedule);
            assert!(report.pass, "{}: {:?}", report.design, report.failure);
            assert_eq!(report.rounds.len(), 3, "{}", report.design);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let schedule = Schedule::generate(77, &ScheduleConfig::default());
        let config = ControllerConfig::dolos(MiSuKind::Partial);
        let a = run_schedule(&config, &schedule);
        let b = run_schedule(&config, &schedule);
        assert_eq!(a, b);
    }

    #[test]
    fn dump_tamper_is_detected_on_dolos() {
        let schedule = Schedule {
            seed: 3,
            keyspace: 16,
            rounds: vec![crate::schedule::Round {
                writes: 8,
                fault: None,
                quiesce: false,
                nested: None,
                tamper: Some(TamperSpec::FlipBit {
                    region: MetaRegion::WpqDump,
                    pick: 0,
                    bit: 9,
                }),
            }],
        };
        let report = run_schedule(&ControllerConfig::dolos(MiSuKind::Partial), &schedule);
        assert!(report.pass, "{:?}", report.failure);
        assert!(
            matches!(
                report.rounds.last().map(|r| &r.outcome),
                Some(RoundOutcome::TamperDetected { .. })
            ),
            "outcome: {:?}",
            report.rounds
        );
    }
}
