//! Chaos campaigns: sweeping schedules and workloads across every
//! controller design and producing a pass/fail matrix.
//!
//! A campaign is the subsystem's top-level entry point (the `chaos` binary
//! is a thin CLI over [`run_campaign`]). For each design it runs
//!
//! 1. `schedules` generated injection schedules (seeds derived from the
//!    campaign seed, so the whole campaign replays from one number), and
//! 2. a crash/recover/verify pass over a set of WHISPER workloads —
//!    structured applications (B-tree, crit-bit tree, hashmap, and the
//!    N-Store YCSB transaction mix) rather than raw line writes.
//!
//! The first failing schedule per design is shrunk ([`mod@crate::shrink`])
//! before it is reported, so the matrix carries a minimal reproducer, not a
//! 100-write haystack.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dolos_core::{ControllerConfig, MiSuKind};
use dolos_sim::rng::XorShift;
use dolos_sim::table::Table;
use dolos_whisper::workloads::WorkloadKind;
use dolos_whisper::PmEnv;

use crate::driver::run_schedule;
use crate::schedule::{Schedule, ScheduleConfig};
use crate::shrink::shrink;

/// Campaign geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed; every schedule and workload seed derives from it.
    pub seed: u64,
    /// Injection schedules per design.
    pub schedules: usize,
    /// Crash rounds per schedule.
    pub rounds: usize,
    /// Persist operations attempted per round.
    pub writes_per_round: usize,
    /// Distinct line addresses written by schedule rounds.
    pub keyspace: u64,
    /// Whether schedules may tamper with NVM while crashed.
    pub tamper: bool,
    /// Transactions per workload before the crash (0 skips workloads).
    pub workload_txns: usize,
    /// Worker threads for the sweep (0 = auto-detect). Any value produces
    /// the identical report, byte for byte: results are index-addressed
    /// regardless of which worker claims a cell, and merged in canonical
    /// order.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            schedules: 6,
            rounds: 3,
            writes_per_round: 20,
            keyspace: 48,
            tamper: true,
            workload_txns: 6,
            jobs: 1,
        }
    }
}

/// The controller designs a campaign sweeps, in report order.
pub fn campaign_designs() -> [ControllerConfig; 6] {
    [
        ControllerConfig::ideal(),
        ControllerConfig::deferred(),
        ControllerConfig::baseline(),
        ControllerConfig::dolos(MiSuKind::Full),
        ControllerConfig::dolos(MiSuKind::Partial),
        ControllerConfig::dolos(MiSuKind::Post),
    ]
}

/// The WHISPER workloads a campaign crash-tests.
pub const CAMPAIGN_WORKLOADS: [WorkloadKind; 4] = [
    WorkloadKind::Btree,
    WorkloadKind::Ctree,
    WorkloadKind::Hashmap,
    WorkloadKind::NstoreYcsb,
];

/// A minimal reproducer for a failed obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureCase {
    /// The shrunk failing schedule, rendered (or the workload scenario).
    pub scenario: String,
    /// The violated obligation.
    pub message: String,
}

/// One design's results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSummary {
    /// Design name.
    pub design: &'static str,
    /// Injection schedules that passed.
    pub schedules_passed: usize,
    /// Injection schedules that failed.
    pub schedules_failed: usize,
    /// Workload crash/recover passes.
    pub workloads_passed: usize,
    /// Workload crash/recover failures.
    pub workloads_failed: usize,
    /// Tamper rounds ending in detection (the security property firing).
    pub tampers_detected: usize,
    /// Persist completions observed across all schedules.
    pub commits: usize,
    /// Lines differentially verified against the golden oracle.
    pub lines_verified: usize,
    /// The first failure, shrunk to a minimal reproducer.
    pub first_failure: Option<FailureCase>,
}

impl DesignSummary {
    /// Whether the design met every obligation.
    pub fn pass(&self) -> bool {
        self.schedules_failed == 0 && self.workloads_failed == 0
    }
}

/// Full campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The master seed (reports with equal seeds and configs are equal).
    pub seed: u64,
    /// Per-design summaries, in [`campaign_designs`] order.
    pub summaries: Vec<DesignSummary>,
}

impl CampaignReport {
    /// Whether every design met every obligation.
    pub fn all_pass(&self) -> bool {
        self.summaries.iter().all(|s| s.pass())
    }

    /// Renders the pass/fail matrix.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            &format!("chaos campaign (seed {})", self.seed),
            &[
                "design",
                "schedules",
                "workloads",
                "detected",
                "commits",
                "verified",
                "verdict",
            ],
        );
        for s in &self.summaries {
            table.row(vec![
                s.design.to_string(),
                format!(
                    "{}/{}",
                    s.schedules_passed,
                    s.schedules_passed + s.schedules_failed
                ),
                format!(
                    "{}/{}",
                    s.workloads_passed,
                    s.workloads_passed + s.workloads_failed
                ),
                s.tampers_detected.to_string(),
                s.commits.to_string(),
                s.lines_verified.to_string(),
                if s.pass() { "PASS" } else { "FAIL" }.to_string(),
            ]);
        }
        table
    }

    /// Serializes the report as JSON (hand-rolled: the workspace is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut json = String::new();
        json.push_str(&format!(
            "{{\n  \"seed\": {},\n  \"all_pass\": {},\n  \"designs\": [\n",
            self.seed,
            self.all_pass()
        ));
        for (i, s) in self.summaries.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"design\": \"{}\", \"pass\": {}, \"schedules_passed\": {}, \
                 \"schedules_failed\": {}, \"workloads_passed\": {}, \"workloads_failed\": {}, \
                 \"tampers_detected\": {}, \"commits\": {}, \"lines_verified\": {}",
                escape(s.design),
                s.pass(),
                s.schedules_passed,
                s.schedules_failed,
                s.workloads_passed,
                s.workloads_failed,
                s.tampers_detected,
                s.commits,
                s.lines_verified,
            ));
            if let Some(f) = &s.first_failure {
                json.push_str(&format!(
                    ", \"failure\": {{\"scenario\": \"{}\", \"message\": \"{}\"}}",
                    escape(&f.scenario),
                    escape(&f.message)
                ));
            }
            json.push('}');
            if i + 1 < self.summaries.len() {
                json.push(',');
            }
            json.push('\n');
        }
        json.push_str("  ]\n}\n");
        json
    }
}

/// Runs one workload through setup → transactions → crash → recover →
/// verify, converting verification panics into recorded failures.
fn run_workload_case(
    config: &ControllerConfig,
    kind: WorkloadKind,
    txns: usize,
    seed: u64,
) -> Result<(), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut env = PmEnv::new(config.clone());
        let mut workload = kind.build();
        workload.setup(&mut env);
        let mut rng = XorShift::new(seed);
        for _ in 0..txns {
            workload.transaction(&mut env, 256, &mut rng);
        }
        env.crash();
        env.recover().map_err(|e| e.to_string())?;
        workload.verify(&mut env);
        Ok(())
    }));
    match outcome {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "workload verification panicked".to_string());
            Err(msg)
        }
    }
}

/// One independent simulation cell of the campaign sweep: a (design,
/// schedule) or (design, workload) pair. Cells are enumerated in canonical
/// report order so the parallel sweep merges back deterministically.
#[derive(Debug, Clone)]
enum Cell {
    Schedule {
        design: ControllerConfig,
        seed: u64,
    },
    Workload {
        design: ControllerConfig,
        kind: WorkloadKind,
        seed: u64,
        txns: usize,
    },
}

/// The outcome of one cell, carrying everything the merge needs.
enum CellOutcome {
    Schedule {
        commits: usize,
        lines_verified: usize,
        tampers_detected: usize,
        pass: bool,
        /// Already-shrunk reproducer when the schedule failed. Shrinking in
        /// the worker keeps the expensive part parallel; the merge just
        /// picks the first one in canonical order.
        failure: Option<FailureCase>,
    },
    Workload {
        result: Result<(), FailureCase>,
    },
}

fn run_cell(schedule_config: &ScheduleConfig, cell: &Cell) -> CellOutcome {
    match cell {
        Cell::Schedule { design, seed } => {
            let schedule = Schedule::generate(*seed, schedule_config);
            let report = run_schedule(design, &schedule);
            let tampers_detected = report
                .rounds
                .iter()
                .filter(|r| {
                    matches!(
                        r.outcome,
                        crate::driver::RoundOutcome::TamperDetected { .. }
                    )
                })
                .count();
            let failure = if report.pass {
                None
            } else {
                let minimal = shrink(design, &schedule);
                Some(FailureCase {
                    scenario: minimal.to_string(),
                    message: report.failure.unwrap_or_default(),
                })
            };
            CellOutcome::Schedule {
                commits: report.commits,
                lines_verified: report.lines_verified,
                tampers_detected,
                pass: report.pass,
                failure,
            }
        }
        Cell::Workload {
            design,
            kind,
            seed,
            txns,
        } => CellOutcome::Workload {
            result: run_workload_case(design, *kind, *txns, *seed).map_err(|message| FailureCase {
                scenario: format!("workload {kind} x{txns} txns, seed {seed:#x}"),
                message,
            }),
        },
    }
}

/// Runs the full campaign. Deterministic: the same config always produces
/// the same report, byte for byte, at any `jobs` value — cells are
/// independent (seeds are pre-derived), claimed from a shared index queue
/// heaviest-first (workload cells scale with their transaction count,
/// schedule cells with rounds × writes), and every outcome lands in an
/// index-addressed slot, so the merge below walks canonical design order
/// no matter which worker ran which cell.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let schedule_config = ScheduleConfig {
        rounds: config.rounds,
        writes_per_round: config.writes_per_round,
        keyspace: config.keyspace,
        tamper: config.tamper,
    };
    // Derive schedule and workload seeds once, shared by every design, so
    // the matrix compares designs on identical scenarios — and so every
    // cell is self-contained before the sweep starts.
    let mut seeder = XorShift::new(config.seed ^ 0x0DD5_CA05);
    let schedule_seeds: Vec<u64> = (0..config.schedules).map(|_| seeder.next_u64()).collect();
    let workload_seeds: Vec<u64> = CAMPAIGN_WORKLOADS
        .iter()
        .map(|_| seeder.next_u64())
        .collect();

    // Canonical cell order: per design, all schedules then all workloads —
    // exactly the order the old serial loop visited them.
    let designs = campaign_designs();
    let mut cells: Vec<Cell> = Vec::new();
    for design in &designs {
        for &seed in &schedule_seeds {
            cells.push(Cell::Schedule {
                design: design.clone(),
                seed,
            });
        }
        if config.workload_txns > 0 {
            for (kind, &seed) in CAMPAIGN_WORKLOADS.iter().zip(&workload_seeds) {
                cells.push(Cell::Workload {
                    design: design.clone(),
                    kind: *kind,
                    seed,
                    txns: config.workload_txns,
                });
            }
        }
    }

    // Cost hints are pure functions of the cell parameters (never of a
    // measurement), so the longest-first schedule is itself deterministic.
    let schedule_cost = (config.rounds as u64 * config.writes_per_round as u64).max(1);
    let outcomes = dolos_sim::pool::run_indexed_weighted(
        config.jobs,
        &cells,
        |_, cell| match cell {
            Cell::Schedule { .. } => schedule_cost,
            Cell::Workload { txns, .. } => (*txns as u64 * 4).max(1),
        },
        |_, cell| run_cell(&schedule_config, cell),
    );

    // Merge in canonical order: per design, fold its cells' outcomes into a
    // summary exactly as the serial loop did.
    let cells_per_design = cells.len() / designs.len();
    let summaries = designs
        .iter()
        .enumerate()
        .map(|(d, design)| {
            let mut summary = DesignSummary {
                design: design.kind.name(),
                schedules_passed: 0,
                schedules_failed: 0,
                workloads_passed: 0,
                workloads_failed: 0,
                tampers_detected: 0,
                commits: 0,
                lines_verified: 0,
                first_failure: None,
            };
            let slice = &outcomes[d * cells_per_design..(d + 1) * cells_per_design];
            for outcome in slice {
                match outcome {
                    CellOutcome::Schedule {
                        commits,
                        lines_verified,
                        tampers_detected,
                        pass,
                        failure,
                    } => {
                        summary.commits += commits;
                        summary.lines_verified += lines_verified;
                        summary.tampers_detected += tampers_detected;
                        if *pass {
                            summary.schedules_passed += 1;
                        } else {
                            summary.schedules_failed += 1;
                            if summary.first_failure.is_none() {
                                summary.first_failure = failure.clone();
                            }
                        }
                    }
                    CellOutcome::Workload { result } => match result {
                        Ok(()) => summary.workloads_passed += 1,
                        Err(case) => {
                            summary.workloads_failed += 1;
                            if summary.first_failure.is_none() {
                                summary.first_failure = Some(case.clone());
                            }
                        }
                    },
                }
            }
            summary
        })
        .collect();

    CampaignReport {
        seed: config.seed,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            seed: 42,
            schedules: 2,
            rounds: 2,
            writes_per_round: 10,
            keyspace: 24,
            tamper: true,
            workload_txns: 2,
            jobs: 1,
        }
    }

    #[test]
    fn small_campaign_passes_everywhere() {
        let report = run_campaign(&small());
        for s in &report.summaries {
            assert!(s.pass(), "{}: {:?}", s.design, s.first_failure);
        }
        assert!(report.all_pass());
        assert_eq!(report.summaries.len(), 6);
    }

    #[test]
    fn campaigns_are_byte_for_byte_reproducible() {
        let a = run_campaign(&small());
        let b = run_campaign(&small());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let serial = run_campaign(&small());
        let serial_json = serial.to_json();
        for jobs in [0usize, 2, 3, 16] {
            let parallel = run_campaign(&CampaignConfig { jobs, ..small() });
            assert_eq!(serial, parallel, "jobs={jobs} changed the report");
            assert_eq!(
                serial_json,
                parallel.to_json(),
                "jobs={jobs} changed the JSON bytes"
            );
        }
    }

    /// Minimal JSON well-formedness scanner: tracks strings, escapes, and
    /// bracket balance. Catches exactly the bug class the escaper guards
    /// against (raw control characters, unescaped quotes/backslashes).
    fn assert_json_parses(json: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut chars = json.chars();
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    '\\' => {
                        let e = chars.next().expect("dangling escape");
                        match e {
                            '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' => {}
                            'u' => {
                                for _ in 0..4 {
                                    let h = chars.next().expect("truncated \\u escape");
                                    assert!(h.is_ascii_hexdigit(), "bad \\u digit {h:?}");
                                }
                            }
                            other => panic!("invalid escape \\{other}"),
                        }
                    }
                    '"' => in_string = false,
                    c if (c as u32) < 0x20 => {
                        panic!("raw control character {:#04x} inside string", c as u32)
                    }
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced brackets");
                    }
                    _ => {}
                }
            }
        }
        assert!(!in_string, "unterminated string");
        assert_eq!(depth, 0, "unbalanced brackets");
    }

    #[test]
    fn json_escapes_hostile_failure_text() {
        // A failure whose scenario/message exercise every dangerous class:
        // quotes, backslashes, newlines, carriage returns, tabs, and a raw
        // control character.
        let report = CampaignReport {
            seed: 7,
            summaries: vec![DesignSummary {
                design: "dolos-post",
                schedules_passed: 0,
                schedules_failed: 1,
                workloads_passed: 0,
                workloads_failed: 1,
                tampers_detected: 0,
                commits: 3,
                lines_verified: 9,
                first_failure: Some(FailureCase {
                    scenario: "write \"a\\b\"\nline2\rline3\ttab\u{1}end".to_string(),
                    message: "oracle mismatch: got \"x\" want \\ \n".to_string(),
                }),
            }],
        };
        let json = report.to_json();
        assert_json_parses(&json);
        assert!(json.contains("\\\"a\\\\b\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\r"));
        assert!(json.contains("\\t"));
        assert!(json.contains("\\u0001"));
        // No raw newline may survive inside a string value.
        for line in json.lines() {
            assert!(!line.contains('\u{1}'));
        }
    }

    #[test]
    fn campaign_json_with_failures_parses() {
        // An end-to-end failing campaign (tamper detection disabled designs
        // still pass; force a failure via a workload on a tampered run is
        // hard to stage deterministically, so validate the passing matrix
        // too — structure is identical either way).
        let json = run_campaign(&CampaignConfig {
            schedules: 1,
            ..small()
        })
        .to_json();
        assert_json_parses(&json);
    }

    #[test]
    fn json_is_well_formed_enough_to_spot_check() {
        let report = run_campaign(&CampaignConfig {
            schedules: 1,
            workload_txns: 0,
            ..small()
        });
        let json = report.to_json();
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"design\": \"dolos-partial\""));
        assert!(json.ends_with("}\n"));
    }
}
