//! Chaos campaigns: sweeping schedules and workloads across every
//! controller design and producing a pass/fail matrix.
//!
//! A campaign is the subsystem's top-level entry point (the `chaos` binary
//! is a thin CLI over [`run_campaign`]). For each design it runs
//!
//! 1. `schedules` generated injection schedules (seeds derived from the
//!    campaign seed, so the whole campaign replays from one number), and
//! 2. a crash/recover/verify pass over a set of WHISPER workloads —
//!    structured applications (B-tree, crit-bit tree, hashmap, and the
//!    N-Store YCSB transaction mix) rather than raw line writes.
//!
//! The first failing schedule per design is shrunk ([`crate::shrink`])
//! before it is reported, so the matrix carries a minimal reproducer, not a
//! 100-write haystack.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dolos_bench::report::Table;
use dolos_core::{ControllerConfig, MiSuKind};
use dolos_sim::rng::XorShift;
use dolos_whisper::workloads::WorkloadKind;
use dolos_whisper::PmEnv;

use crate::driver::run_schedule;
use crate::schedule::{Schedule, ScheduleConfig};
use crate::shrink::shrink;

/// Campaign geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed; every schedule and workload seed derives from it.
    pub seed: u64,
    /// Injection schedules per design.
    pub schedules: usize,
    /// Crash rounds per schedule.
    pub rounds: usize,
    /// Persist operations attempted per round.
    pub writes_per_round: usize,
    /// Distinct line addresses written by schedule rounds.
    pub keyspace: u64,
    /// Whether schedules may tamper with NVM while crashed.
    pub tamper: bool,
    /// Transactions per workload before the crash (0 skips workloads).
    pub workload_txns: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            schedules: 6,
            rounds: 3,
            writes_per_round: 20,
            keyspace: 48,
            tamper: true,
            workload_txns: 6,
        }
    }
}

/// The controller designs a campaign sweeps, in report order.
pub fn campaign_designs() -> [ControllerConfig; 6] {
    [
        ControllerConfig::ideal(),
        ControllerConfig::deferred(),
        ControllerConfig::baseline(),
        ControllerConfig::dolos(MiSuKind::Full),
        ControllerConfig::dolos(MiSuKind::Partial),
        ControllerConfig::dolos(MiSuKind::Post),
    ]
}

/// The WHISPER workloads a campaign crash-tests.
pub const CAMPAIGN_WORKLOADS: [WorkloadKind; 4] = [
    WorkloadKind::Btree,
    WorkloadKind::Ctree,
    WorkloadKind::Hashmap,
    WorkloadKind::NstoreYcsb,
];

/// A minimal reproducer for a failed obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureCase {
    /// The shrunk failing schedule, rendered (or the workload scenario).
    pub scenario: String,
    /// The violated obligation.
    pub message: String,
}

/// One design's results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSummary {
    /// Design name.
    pub design: &'static str,
    /// Injection schedules that passed.
    pub schedules_passed: usize,
    /// Injection schedules that failed.
    pub schedules_failed: usize,
    /// Workload crash/recover passes.
    pub workloads_passed: usize,
    /// Workload crash/recover failures.
    pub workloads_failed: usize,
    /// Tamper rounds ending in detection (the security property firing).
    pub tampers_detected: usize,
    /// Persist completions observed across all schedules.
    pub commits: usize,
    /// Lines differentially verified against the golden oracle.
    pub lines_verified: usize,
    /// The first failure, shrunk to a minimal reproducer.
    pub first_failure: Option<FailureCase>,
}

impl DesignSummary {
    /// Whether the design met every obligation.
    pub fn pass(&self) -> bool {
        self.schedules_failed == 0 && self.workloads_failed == 0
    }
}

/// Full campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The master seed (reports with equal seeds and configs are equal).
    pub seed: u64,
    /// Per-design summaries, in [`campaign_designs`] order.
    pub summaries: Vec<DesignSummary>,
}

impl CampaignReport {
    /// Whether every design met every obligation.
    pub fn all_pass(&self) -> bool {
        self.summaries.iter().all(|s| s.pass())
    }

    /// Renders the pass/fail matrix.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            &format!("chaos campaign (seed {})", self.seed),
            &[
                "design",
                "schedules",
                "workloads",
                "detected",
                "commits",
                "verified",
                "verdict",
            ],
        );
        for s in &self.summaries {
            table.row(vec![
                s.design.to_string(),
                format!(
                    "{}/{}",
                    s.schedules_passed,
                    s.schedules_passed + s.schedules_failed
                ),
                format!(
                    "{}/{}",
                    s.workloads_passed,
                    s.workloads_passed + s.workloads_failed
                ),
                s.tampers_detected.to_string(),
                s.commits.to_string(),
                s.lines_verified.to_string(),
                if s.pass() { "PASS" } else { "FAIL" }.to_string(),
            ]);
        }
        table
    }

    /// Serializes the report as JSON (hand-rolled: the workspace is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut json = String::new();
        json.push_str(&format!(
            "{{\n  \"seed\": {},\n  \"all_pass\": {},\n  \"designs\": [\n",
            self.seed,
            self.all_pass()
        ));
        for (i, s) in self.summaries.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"design\": \"{}\", \"pass\": {}, \"schedules_passed\": {}, \
                 \"schedules_failed\": {}, \"workloads_passed\": {}, \"workloads_failed\": {}, \
                 \"tampers_detected\": {}, \"commits\": {}, \"lines_verified\": {}",
                escape(s.design),
                s.pass(),
                s.schedules_passed,
                s.schedules_failed,
                s.workloads_passed,
                s.workloads_failed,
                s.tampers_detected,
                s.commits,
                s.lines_verified,
            ));
            if let Some(f) = &s.first_failure {
                json.push_str(&format!(
                    ", \"failure\": {{\"scenario\": \"{}\", \"message\": \"{}\"}}",
                    escape(&f.scenario),
                    escape(&f.message)
                ));
            }
            json.push('}');
            if i + 1 < self.summaries.len() {
                json.push(',');
            }
            json.push('\n');
        }
        json.push_str("  ]\n}\n");
        json
    }
}

/// Runs one workload through setup → transactions → crash → recover →
/// verify, converting verification panics into recorded failures.
fn run_workload_case(
    config: &ControllerConfig,
    kind: WorkloadKind,
    txns: usize,
    seed: u64,
) -> Result<(), String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut env = PmEnv::new(config.clone());
        let mut workload = kind.build();
        workload.setup(&mut env);
        let mut rng = XorShift::new(seed);
        for _ in 0..txns {
            workload.transaction(&mut env, 256, &mut rng);
        }
        env.crash();
        env.recover().map_err(|e| e.to_string())?;
        workload.verify(&mut env);
        Ok(())
    }));
    match outcome {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "workload verification panicked".to_string());
            Err(msg)
        }
    }
}

/// Runs the full campaign. Deterministic: the same config always produces
/// the same report, byte for byte.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let schedule_config = ScheduleConfig {
        rounds: config.rounds,
        writes_per_round: config.writes_per_round,
        keyspace: config.keyspace,
        tamper: config.tamper,
    };
    // Derive schedule and workload seeds once, shared by every design, so
    // the matrix compares designs on identical scenarios.
    let mut seeder = XorShift::new(config.seed ^ 0x0DD5_CA05);
    let schedule_seeds: Vec<u64> = (0..config.schedules).map(|_| seeder.next_u64()).collect();
    let workload_seeds: Vec<u64> = CAMPAIGN_WORKLOADS
        .iter()
        .map(|_| seeder.next_u64())
        .collect();

    let summaries = campaign_designs()
        .iter()
        .map(|design| {
            let mut summary = DesignSummary {
                design: design.kind.name(),
                schedules_passed: 0,
                schedules_failed: 0,
                workloads_passed: 0,
                workloads_failed: 0,
                tampers_detected: 0,
                commits: 0,
                lines_verified: 0,
                first_failure: None,
            };
            for &seed in &schedule_seeds {
                let schedule = Schedule::generate(seed, &schedule_config);
                let report = run_schedule(design, &schedule);
                summary.commits += report.commits;
                summary.lines_verified += report.lines_verified;
                summary.tampers_detected += report
                    .rounds
                    .iter()
                    .filter(|r| {
                        matches!(
                            r.outcome,
                            crate::driver::RoundOutcome::TamperDetected { .. }
                        )
                    })
                    .count();
                if report.pass {
                    summary.schedules_passed += 1;
                } else {
                    summary.schedules_failed += 1;
                    if summary.first_failure.is_none() {
                        let minimal = shrink(design, &schedule);
                        summary.first_failure = Some(FailureCase {
                            scenario: minimal.to_string(),
                            message: report.failure.unwrap_or_default(),
                        });
                    }
                }
            }
            if config.workload_txns > 0 {
                for (kind, &seed) in CAMPAIGN_WORKLOADS.iter().zip(&workload_seeds) {
                    match run_workload_case(design, *kind, config.workload_txns, seed) {
                        Ok(()) => summary.workloads_passed += 1,
                        Err(message) => {
                            summary.workloads_failed += 1;
                            if summary.first_failure.is_none() {
                                summary.first_failure = Some(FailureCase {
                                    scenario: format!(
                                        "workload {kind} x{} txns, seed {seed:#x}",
                                        config.workload_txns
                                    ),
                                    message,
                                });
                            }
                        }
                    }
                }
            }
            summary
        })
        .collect();

    CampaignReport {
        seed: config.seed,
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            seed: 42,
            schedules: 2,
            rounds: 2,
            writes_per_round: 10,
            keyspace: 24,
            tamper: true,
            workload_txns: 2,
        }
    }

    #[test]
    fn small_campaign_passes_everywhere() {
        let report = run_campaign(&small());
        for s in &report.summaries {
            assert!(s.pass(), "{}: {:?}", s.design, s.first_failure);
        }
        assert!(report.all_pass());
        assert_eq!(report.summaries.len(), 6);
    }

    #[test]
    fn campaigns_are_byte_for_byte_reproducible() {
        let a = run_campaign(&small());
        let b = run_campaign(&small());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_is_well_formed_enough_to_spot_check() {
        let report = run_campaign(&CampaignConfig {
            schedules: 1,
            workload_txns: 0,
            ..small()
        });
        let json = report.to_json();
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"design\": \"dolos-partial\""));
        assert!(json.ends_with("}\n"));
    }
}
