//! Injection schedules: deterministic, seed-reproducible descriptions of one
//! chaos scenario.
//!
//! A [`Schedule`] is pure data — which writes to issue, where to cut power,
//! what to corrupt while the machine is dark — so the same schedule against
//! the same controller configuration replays bit-for-bit. That is what makes
//! failing scenarios shrinkable ([`mod@crate::shrink`]) and campaign reports
//! reproducible.

use core::fmt;

use dolos_core::inject::InjectionPoint;
use dolos_secmem::layout::MetaRegion;
use dolos_sim::rng::XorShift;

/// Adversarial NVM corruption applied while the system is crashed (between
/// the ADR dump and the next boot — the window in which the threat model
/// gives the attacker the device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperSpec {
    /// Flip one bit of a resident line in a metadata region. `pick` selects
    /// among the region's resident lines (modulo their count at apply
    /// time); `bit` wraps within the 512-bit line.
    FlipBit {
        /// The region to corrupt.
        region: MetaRegion,
        /// Resident-line selector.
        pick: u64,
        /// Bit index within the chosen line.
        bit: u32,
    },
    /// Tear the ADR dump: restore the trailing `drop` lines of the WPQ dump
    /// region from the *previous* epoch's snapshot, modeling a reserve-power
    /// burst that did not finish.
    TornDump {
        /// Number of trailing dump lines that revert to the old epoch.
        drop: usize,
    },
    /// Tear the ADR dump of a single NVM bank: restore the trailing `drop`
    /// payload lines of that bank's WPQ shard (global slots
    /// `bank × per_bank .. (bank+1) × per_bank`) from the previous epoch's
    /// snapshot. Models one bank's reserve-power burst dying while the
    /// others complete — the failure mode banked drains introduce.
    TornBank {
        /// The bank whose dump burst is torn.
        bank: usize,
        /// Number of that bank's trailing dump lines reverting to the old
        /// epoch.
        drop: usize,
    },
}

impl fmt::Display for TamperSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperSpec::FlipBit { region, pick, bit } => {
                write!(f, "flip({region},{pick},b{bit})")
            }
            TamperSpec::TornDump { drop } => write!(f, "torn({drop})"),
            TamperSpec::TornBank { bank, drop } => write!(f, "tornb({bank},{drop})"),
        }
    }
}

/// One crash round: a burst of persist writes, a power failure (injected at
/// a pipeline point or plain at end-of-burst), optional corruption while
/// dark, optional nested crash during recovery, then boot and verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// Persist operations to attempt this round (a firing fault cuts the
    /// burst short).
    pub writes: usize,
    /// Armed power-failure plan `(point, occurrence)`; `None` crashes at
    /// the end of the burst with the WPQ still loaded.
    pub fault: Option<(InjectionPoint, u64)>,
    /// Drain the WPQ completely before the crash (ignored when the fault
    /// fires first). A quiesced crash dumps an empty queue, so tampering
    /// lands on fully settled state that recovery will not rewrite.
    pub quiesce: bool,
    /// Also cut power during recovery, before the nth replayed entry.
    pub nested: Option<u64>,
    /// Corruption to apply while crashed.
    pub tamper: Option<TamperSpec>,
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.writes)?;
        if self.quiesce {
            f.write_str("+q")?;
        }
        if let Some((point, nth)) = self.fault {
            write!(f, "@{point}#{nth}")?;
        }
        if let Some(nth) = self.nested {
            write!(f, "+nested#{nth}")?;
        }
        if let Some(t) = self.tamper {
            write!(f, "+{t}")?;
        }
        Ok(())
    }
}

/// Geometry of generated schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Crash rounds per schedule.
    pub rounds: usize,
    /// Persist operations attempted per round.
    pub writes_per_round: usize,
    /// Distinct line addresses written (addresses are `0..keyspace` lines).
    pub keyspace: u64,
    /// Whether the final round may corrupt NVM while crashed.
    pub tamper: bool,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self {
            rounds: 4,
            writes_per_round: 24,
            keyspace: 64,
            tamper: true,
        }
    }
}

/// A complete, replayable chaos scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Seed driving the write sequence (addresses and payloads).
    pub seed: u64,
    /// Distinct line addresses written.
    pub keyspace: u64,
    /// The crash rounds, in order.
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// Generates a schedule from a seed. The same `(seed, config)` pair
    /// always yields the same schedule.
    ///
    /// Tampering, when enabled, lands only on the final round: a detected
    /// tamper ends the run, so earlier tampers would shadow later rounds.
    /// The `Shadow` region is excluded — corrupting stale shadow entries is
    /// indistinguishable from benign garbage and carries no detection
    /// obligation.
    pub fn generate(seed: u64, config: &ScheduleConfig) -> Self {
        let mut rng = XorShift::new(seed ^ 0xC4A0_5EED);
        let points = [
            InjectionPoint::PersistStart,
            InjectionPoint::MisuProtect,
            InjectionPoint::WpqInsert,
            InjectionPoint::MasuDrain,
        ];
        let regions = [
            MetaRegion::Data,
            MetaRegion::Counters,
            MetaRegion::Macs,
            MetaRegion::WpqDump,
        ];
        let rounds = (0..config.rounds.max(1))
            .map(|i| {
                let writes = 1 + rng.next_below(config.writes_per_round.max(1) as u64) as usize;
                let fault = rng.chance(0.75).then(|| {
                    let point = points[rng.next_below(points.len() as u64) as usize];
                    (point, rng.next_below(writes as u64 * 2))
                });
                let nested = rng.chance(0.25).then(|| rng.next_below(8));
                let last = i + 1 == config.rounds.max(1);
                // Tamper rounds sometimes quiesce first, so campaigns cover
                // both fresh-dump and settled-state corruption.
                let quiesce = config.tamper && last && rng.chance(0.5);
                let tamper = (config.tamper && last).then(|| {
                    if rng.chance(0.3) {
                        TamperSpec::TornDump {
                            drop: 1 + rng.next_below(8) as usize,
                        }
                    } else {
                        TamperSpec::FlipBit {
                            region: regions[rng.next_below(regions.len() as u64) as usize],
                            pick: rng.next_u64(),
                            bit: rng.next_below(512) as u32,
                        }
                    }
                });
                Round {
                    writes,
                    fault,
                    quiesce,
                    nested,
                    tamper,
                }
            })
            .collect();
        Self {
            seed,
            keyspace: config.keyspace.max(1),
            rounds,
        }
    }

    /// Total persist operations the schedule attempts.
    pub fn total_writes(&self) -> usize {
        self.rounds.iter().map(|r| r.writes).sum()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={};keys={};[", self.seed, self.keyspace)?;
        for (i, round) in self.rounds.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{round}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = ScheduleConfig::default();
        let a = Schedule::generate(42, &config);
        let b = Schedule::generate(42, &config);
        assert_eq!(a, b);
        assert_ne!(a, Schedule::generate(43, &config));
    }

    #[test]
    fn tamper_lands_only_on_the_final_round() {
        let config = ScheduleConfig {
            rounds: 5,
            ..ScheduleConfig::default()
        };
        for seed in 0..50 {
            let s = Schedule::generate(seed, &config);
            for round in &s.rounds[..s.rounds.len() - 1] {
                assert!(round.tamper.is_none(), "seed {seed}: early tamper");
            }
        }
    }

    #[test]
    fn display_is_compact_and_round_trips_the_shape() {
        let s = Schedule {
            seed: 7,
            keyspace: 32,
            rounds: vec![Round {
                writes: 9,
                fault: Some((InjectionPoint::WpqInsert, 3)),
                quiesce: true,
                nested: Some(1),
                tamper: Some(TamperSpec::TornDump { drop: 2 }),
            }],
        };
        assert_eq!(
            s.to_string(),
            "seed=7;keys=32;[w9+q@wpq-insert#3+nested#1+torn(2)]"
        );
    }
}
