//! Schedule shrinking: minimizes a failing injection schedule.
//!
//! Because schedules are pure data and runs are deterministic, a failing
//! schedule can be shrunk the way property-testing frameworks shrink
//! counterexamples: propose a structurally smaller schedule, re-run it, and
//! keep it if it still fails. The result is the smallest scenario this
//! greedy pass can find — usually one round with a handful of writes — which
//! is what a human wants to look at when a design breaks.

use dolos_core::ControllerConfig;

use crate::driver::run_schedule;
use crate::schedule::Schedule;

/// One shrinking step: every structurally smaller candidate derived from
/// `schedule`, most aggressive first.
fn candidates(schedule: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    // Drop whole rounds (keep at least one).
    if schedule.rounds.len() > 1 {
        for i in 0..schedule.rounds.len() {
            let mut s = schedule.clone();
            s.rounds.remove(i);
            out.push(s);
        }
    }
    // Simplify individual rounds.
    for i in 0..schedule.rounds.len() {
        let round = &schedule.rounds[i];
        if round.writes > 1 {
            let mut s = schedule.clone();
            s.rounds[i].writes = round.writes / 2;
            out.push(s);
        }
        if round.nested.is_some() {
            let mut s = schedule.clone();
            s.rounds[i].nested = None;
            out.push(s);
        }
        if round.quiesce {
            let mut s = schedule.clone();
            s.rounds[i].quiesce = false;
            out.push(s);
        }
        if round.tamper.is_some() {
            let mut s = schedule.clone();
            s.rounds[i].tamper = None;
            out.push(s);
        }
        if round.fault.is_some() {
            let mut s = schedule.clone();
            s.rounds[i].fault = None;
            out.push(s);
        }
    }
    out
}

/// Greedily shrinks `schedule` while it keeps failing against `config`.
///
/// If the input does not fail in the first place it is returned unchanged —
/// shrinking is only meaningful for reproducible failures.
pub fn shrink(config: &ControllerConfig, schedule: &Schedule) -> Schedule {
    let fails = |s: &Schedule| !run_schedule(config, s).pass;
    if !fails(schedule) {
        return schedule.clone();
    }
    let mut current = schedule.clone();
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Round, ScheduleConfig, TamperSpec};
    use dolos_secmem::layout::MetaRegion;

    #[test]
    fn passing_schedules_are_returned_unchanged() {
        let schedule = Schedule::generate(
            5,
            &ScheduleConfig {
                rounds: 2,
                writes_per_round: 8,
                keyspace: 16,
                tamper: false,
            },
        );
        let config = ControllerConfig::dolos(dolos_core::MiSuKind::Full);
        assert_eq!(shrink(&config, &schedule), schedule);
    }

    #[test]
    fn tampered_runs_on_the_ideal_design_shrink_to_the_essence() {
        // The ideal non-secure design silently absorbs a data-region bit
        // flip; that is recorded, not failed, so this run *passes* and must
        // come back unchanged. The shrinker only minimizes obligations that
        // broke.
        let schedule = Schedule {
            seed: 9,
            keyspace: 8,
            rounds: vec![
                Round {
                    writes: 12,
                    fault: None,
                    quiesce: false,
                    nested: None,
                    tamper: None,
                },
                Round {
                    writes: 12,
                    fault: None,
                    quiesce: false,
                    nested: None,
                    tamper: Some(TamperSpec::FlipBit {
                        region: MetaRegion::Data,
                        pick: 0,
                        bit: 0,
                    }),
                },
            ],
        };
        let config = ControllerConfig::ideal();
        let report = run_schedule(&config, &schedule);
        assert!(report.pass, "{:?}", report.failure);
        assert_eq!(shrink(&config, &schedule), schedule);
    }
}
