//! Counterexample shrinking: minimizes a failing scenario.
//!
//! Because scenarios are pure data and runs are deterministic, a failing
//! scenario can be shrunk the way property-testing frameworks shrink
//! counterexamples: propose a structurally smaller candidate, re-run it, and
//! keep it if it still fails. The result is the smallest scenario this
//! greedy pass can find — usually one round with a handful of writes — which
//! is what a human wants to look at when a design breaks.
//!
//! The machinery is generic: anything implementing [`Shrinkable`] can be
//! minimized with [`shrink_with`] against an arbitrary failure predicate.
//! This crate implements it for [`Schedule`] (with [`shrink`] as the
//! schedule-specific convenience wrapper); `dolos-verify` reuses the same
//! engine for its differential-conformance scenarios.

use dolos_core::ControllerConfig;

use crate::driver::run_schedule;
use crate::schedule::Schedule;

/// A scenario type the greedy shrinker can minimize.
///
/// Implementors enumerate the structurally smaller variants of `self`; the
/// shrinker re-runs each candidate and keeps the first that still fails.
/// `candidates` must be **deterministic** (same input, same candidate list,
/// same order) and **well-founded**: every candidate must be strictly
/// smaller under some measure, or shrinking may not terminate.
pub trait Shrinkable: Sized + Clone {
    /// One shrinking step: every structurally smaller candidate derived
    /// from `self`, most aggressive first.
    fn candidates(&self) -> Vec<Self>;
}

/// Greedily shrinks `subject` while `fails` keeps returning `true`.
///
/// If the input does not fail in the first place it is returned unchanged —
/// shrinking is only meaningful for reproducible failures. Deterministic:
/// the same subject and predicate always produce the same minimum.
pub fn shrink_with<S: Shrinkable>(subject: &S, mut fails: impl FnMut(&S) -> bool) -> S {
    if !fails(subject) {
        return subject.clone();
    }
    let mut current = subject.clone();
    loop {
        let mut improved = false;
        for candidate in current.candidates() {
            if fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

impl Shrinkable for Schedule {
    fn candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Drop whole rounds (keep at least one).
        if self.rounds.len() > 1 {
            for i in 0..self.rounds.len() {
                let mut s = self.clone();
                s.rounds.remove(i);
                out.push(s);
            }
        }
        // Simplify individual rounds.
        for i in 0..self.rounds.len() {
            let round = &self.rounds[i];
            if round.writes > 1 {
                let mut s = self.clone();
                s.rounds[i].writes = round.writes / 2;
                out.push(s);
            }
            if round.nested.is_some() {
                let mut s = self.clone();
                s.rounds[i].nested = None;
                out.push(s);
            }
            if round.quiesce {
                let mut s = self.clone();
                s.rounds[i].quiesce = false;
                out.push(s);
            }
            if round.tamper.is_some() {
                let mut s = self.clone();
                s.rounds[i].tamper = None;
                out.push(s);
            }
            // A per-bank tear simplifies toward the whole-dump tear (one
            // fewer coordinate), then toward bank 0 and a single dropped
            // line — all strictly smaller, so shrinking stays well-founded.
            if let Some(crate::schedule::TamperSpec::TornBank { bank, drop }) = round.tamper {
                let mut s = self.clone();
                s.rounds[i].tamper = Some(crate::schedule::TamperSpec::TornDump { drop });
                out.push(s);
                if bank > 0 {
                    let mut s = self.clone();
                    s.rounds[i].tamper =
                        Some(crate::schedule::TamperSpec::TornBank { bank: 0, drop });
                    out.push(s);
                }
                if drop > 1 {
                    let mut s = self.clone();
                    s.rounds[i].tamper = Some(crate::schedule::TamperSpec::TornBank {
                        bank,
                        drop: drop / 2,
                    });
                    out.push(s);
                }
            }
            if round.fault.is_some() {
                let mut s = self.clone();
                s.rounds[i].fault = None;
                out.push(s);
            }
        }
        out
    }
}

/// Greedily shrinks `schedule` while it keeps failing against `config`.
///
/// A thin wrapper over [`shrink_with`] with the schedule driver as the
/// failure predicate.
pub fn shrink(config: &ControllerConfig, schedule: &Schedule) -> Schedule {
    shrink_with(schedule, |s| !run_schedule(config, s).pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Round, ScheduleConfig, TamperSpec};
    use dolos_secmem::layout::MetaRegion;

    #[test]
    fn passing_schedules_are_returned_unchanged() {
        let schedule = Schedule::generate(
            5,
            &ScheduleConfig {
                rounds: 2,
                writes_per_round: 8,
                keyspace: 16,
                tamper: false,
            },
        );
        let config = ControllerConfig::dolos(dolos_core::MiSuKind::Full);
        assert_eq!(shrink(&config, &schedule), schedule);
    }

    #[test]
    fn tampered_runs_on_the_ideal_design_shrink_to_the_essence() {
        // The ideal non-secure design silently absorbs a data-region bit
        // flip; that is recorded, not failed, so this run *passes* and must
        // come back unchanged. The shrinker only minimizes obligations that
        // broke.
        let schedule = Schedule {
            seed: 9,
            keyspace: 8,
            rounds: vec![
                Round {
                    writes: 12,
                    fault: None,
                    quiesce: false,
                    nested: None,
                    tamper: None,
                },
                Round {
                    writes: 12,
                    fault: None,
                    quiesce: false,
                    nested: None,
                    tamper: Some(TamperSpec::FlipBit {
                        region: MetaRegion::Data,
                        pick: 0,
                        bit: 0,
                    }),
                },
            ],
        };
        let config = ControllerConfig::ideal();
        let report = run_schedule(&config, &schedule);
        assert!(report.pass, "{:?}", report.failure);
        assert_eq!(shrink(&config, &schedule), schedule);
    }

    #[test]
    fn generic_shrink_is_deterministic_for_a_fixed_seed() {
        // A synthetic failure predicate over generated schedules: "fails"
        // whenever the schedule still attempts at least 4 writes in some
        // round. The shrinker must converge to the same minimum every time,
        // and that minimum is pinned: greedy halving stops at the first
        // round shape where no candidate keeps the predicate true.
        let config = ScheduleConfig {
            rounds: 3,
            writes_per_round: 24,
            keyspace: 16,
            tamper: true,
        };
        let schedule = Schedule::generate(0xD015_5EED, &config);
        let fails = |s: &Schedule| s.rounds.iter().any(|r| r.writes >= 4);
        let a = shrink_with(&schedule, fails);
        let b = shrink_with(&schedule, fails);
        assert_eq!(a, b, "same seed must shrink to the same minimum");
        // Minimal under the predicate: one round, and halving its writes
        // once more would drop below the threshold.
        assert_eq!(a.rounds.len(), 1);
        assert!(a.rounds[0].writes >= 4 && a.rounds[0].writes / 2 < 4);
        assert!(a.rounds[0].fault.is_none());
        assert!(a.rounds[0].tamper.is_none());
        assert!(a.rounds[0].nested.is_none());
        assert!(!a.rounds[0].quiesce);
        // Fully pinned output for this seed (guards candidate-order drift:
        // reordering `candidates` would land on a different minimum).
        assert_eq!(a.to_string(), "seed=3491061485;keys=16;[w7]");
    }

    #[test]
    fn passing_subjects_come_back_unchanged_under_any_predicate() {
        let schedule = Schedule::generate(3, &ScheduleConfig::default());
        let shrunk = shrink_with(&schedule, |_| false);
        assert_eq!(shrunk, schedule);
    }
}
