//! `chaos` — run a crash-consistency / fault-injection campaign across all
//! controller designs and print the pass/fail matrix.
//!
//! ```text
//! chaos [--seed N] [--schedules N] [--rounds N] [--writes N] [--keyspace N]
//!       [--no-tamper] [--workload-txns N] [--jobs N] [--json PATH] [--quiet]
//!
//! `--jobs N` runs the sweep on N worker threads (0 = auto). The report —
//! including the JSON — is byte-for-byte identical at any job count.
//! ```
//!
//! Exit status is 0 when every design met every obligation, 1 otherwise.

use std::process::ExitCode;

use dolos_chaos::{run_campaign, CampaignConfig};

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed N] [--schedules N] [--rounds N] [--writes N] \
         [--keyspace N] [--no-tamper] [--workload-txns N] [--jobs N] [--json PATH] [--quiet]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = CampaignConfig::default();
    let mut json_path: Option<String> = None;
    let mut quiet = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => config.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--schedules" => config.schedules = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rounds" => config.rounds = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--writes" => {
                config.writes_per_round = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--keyspace" => config.keyspace = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--no-tamper" => config.tamper = false,
            "--workload-txns" => {
                config.workload_txns = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--jobs" => config.jobs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(value(&mut i)),
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let report = run_campaign(&config);

    if !quiet {
        println!("{}", report.table().render());
        for summary in &report.summaries {
            if let Some(failure) = &summary.first_failure {
                println!(
                    "FAIL {}: {}\n  minimal reproducer: {}",
                    summary.design, failure.message, failure.scenario
                );
            }
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("chaos: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if !quiet {
            println!("report written to {path}");
        }
    }

    if report.all_pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
