//! Machine-readable benchmark emission for `experiments bench`.
//!
//! Runs experiments through the normal harness, but instead of (only)
//! rendering tables, records per-experiment wall-clock time, sweep-cell
//! counts, and total simulated cycles, and serializes them as
//! `BENCH_<YYYY-MM-DD>.json`. The JSON is hand-rolled like the rest of the
//! workspace (no external crates); every field is numeric or a
//! machine-generated name, so no string escaping is required beyond what
//! [`ExperimentId::name`] already guarantees (lowercase ASCII).
//!
//! [`ExperimentId::name`]: crate::ExperimentId::name

/// Timing and work tallies for one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Experiment CLI name ("fig12", "table2", ...).
    pub name: String,
    /// Wall-clock milliseconds spent in this experiment.
    pub wall_ms: f64,
    /// Sweep cells (independent workload × controller simulations) run.
    pub cells: u64,
    /// Total simulated cycles across those cells.
    pub sim_cycles: u64,
    /// Wall milliseconds per sweep cell, in cell order. Empty for direct
    /// experiments whose work never enters the job pool (their row reports
    /// `skew` 0).
    pub cell_wall_ms: Vec<f64>,
}

impl BenchEntry {
    /// Simulation cells completed per wall-clock second (0 when no cells or
    /// no measurable time elapsed).
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.cells as f64 * 1000.0 / self.wall_ms
        }
    }

    /// Scheduling skew across this experiment's cells: the longest cell's
    /// wall time over the mean (1.0 = perfectly uniform). This is the
    /// number the longest-cell-first flat sweep exists to absorb — a high
    /// skew experiment wastes pool tails under naive chunking. 0 when no
    /// per-cell samples exist.
    pub fn skew(&self) -> f64 {
        let n = self.cell_wall_ms.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.cell_wall_ms.iter().sum::<f64>() / n as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let max = self.cell_wall_ms.iter().copied().fold(0.0f64, f64::max);
        max / mean
    }
}

/// One traced (scheme, workload) cell from a `bench --trace` run: the
/// persist-latency histogram columns of `dolos-trace`'s profile engine.
/// All fields are simulated quantities, so rows are byte-stable across
/// machines and `--jobs` values.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Scheme report name ("ideal", "dolos-post", ...).
    pub scheme: String,
    /// Workload display name ("Hashmap", "NStore:YCSB", ...).
    pub workload: String,
    /// Persists acknowledged in the measured window.
    pub persists: u64,
    /// Median persist critical-path latency, cycles.
    pub p50: u64,
    /// 95th-percentile persist latency, cycles.
    pub p95: u64,
    /// 99th-percentile persist latency, cycles.
    pub p99: u64,
    /// Largest persist latency, cycles.
    pub max: u64,
}

/// A full `experiments bench` run: configuration echo plus one entry per
/// experiment, in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// UTC date the run started, `YYYY-MM-DD`.
    pub date: String,
    /// Transactions per run (configuration echo).
    pub transactions: usize,
    /// Warm-up transactions per run.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads used for sweep cells.
    pub jobs: usize,
    /// Per-experiment tallies, in run order.
    pub entries: Vec<BenchEntry>,
    /// Traced mini-bench histogram rows (`bench --trace`); empty when
    /// tracing was not requested.
    pub trace: Vec<TraceRow>,
}

impl BenchReport {
    /// The canonical output file name, `BENCH_<date>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// Serializes the report. Stable key order, two-space indent, totals
    /// computed from the entries.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"date\": \"{}\",\n", self.date));
        out.push_str(&format!("  \"transactions\": {},\n", self.transactions));
        out.push_str(&format!("  \"warmup\": {},\n", self.warmup));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let cell_walls = e
                .cell_wall_ms
                .iter()
                .map(|w| format!("{w:.3}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"cells\": {}, \
                 \"sim_cycles\": {}, \"cells_per_sec\": {:.3}, \"skew\": {:.3}, \
                 \"cell_wall_ms\": [{}]}}{}\n",
                e.name,
                e.wall_ms,
                e.cells,
                e.sim_cycles,
                e.cells_per_sec(),
                e.skew(),
                cell_walls,
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"trace\": [\n");
        for (i, t) in self.trace.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"workload\": \"{}\", \"persists\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}{}\n",
                t.scheme,
                t.workload,
                t.persists,
                t.p50,
                t.p95,
                t.p99,
                t.max,
                if i + 1 == self.trace.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        let wall_ms: f64 = self.entries.iter().map(|e| e.wall_ms).sum();
        let cells: u64 = self.entries.iter().map(|e| e.cells).sum();
        let sim_cycles: u64 = self.entries.iter().map(|e| e.sim_cycles).sum();
        let throughput = if wall_ms <= 0.0 {
            0.0
        } else {
            cells as f64 * 1000.0 / wall_ms
        };
        out.push_str(&format!(
            "  \"total\": {{\"wall_ms\": {wall_ms:.3}, \"cells\": {cells}, \
             \"sim_cycles\": {sim_cycles}, \"cells_per_sec\": {throughput:.3}}}\n"
        ));
        out.push('}');
        out
    }

    /// Serializes only the simulated (machine-independent) fields: the
    /// workload configuration and each experiment's cell count and
    /// `sim_cycles`. Wall-clock fields, dates, trace rows and job counts
    /// are all excluded, so two runs of the same experiments at the same
    /// scale produce byte-identical golden text on any machine at any
    /// `--jobs`. CI `cmp`s this against a committed golden to catch
    /// wall-clock optimizations that accidentally perturb simulated timing.
    pub fn to_golden(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"transactions\": {},\n", self.transactions));
        out.push_str(&format!("  \"warmup\": {},\n", self.warmup));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cells\": {}, \"sim_cycles\": {}}}{}\n",
                e.name,
                e.cells,
                e.sim_cycles,
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        let cells: u64 = self.entries.iter().map(|e| e.cells).sum();
        let sim_cycles: u64 = self.entries.iter().map(|e| e.sim_cycles).sum();
        out.push_str(&format!(
            "  \"total\": {{\"cells\": {cells}, \"sim_cycles\": {sim_cycles}}}\n"
        ));
        out.push_str("}\n");
        out
    }
}

/// Converts seconds since the Unix epoch to a `YYYY-MM-DD` UTC date string.
///
/// Standard days-to-civil conversion (proleptic Gregorian, era = 400-year
/// blocks) so the binary needs no clock crate.
pub fn civil_date_utc(secs_since_epoch: u64) -> String {
    let days = (secs_since_epoch / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_date_utc(0), "1970-01-01");
        // 2000-02-29 00:00:00 UTC (leap day of a century leap year).
        assert_eq!(civil_date_utc(951_782_400), "2000-02-29");
        // 2026-08-06 00:00:00 UTC.
        assert_eq!(civil_date_utc(1_785_974_400), "2026-08-06");
        // End-of-year boundary: 2023-12-31 23:59:59.
        assert_eq!(civil_date_utc(1_704_067_199), "2023-12-31");
        assert_eq!(civil_date_utc(1_704_067_200), "2024-01-01");
    }

    #[test]
    fn report_json_has_totals_and_stable_shape() {
        let report = BenchReport {
            date: "2026-08-06".into(),
            transactions: 400,
            warmup: 48,
            seed: 0x5EED,
            jobs: 2,
            entries: vec![
                BenchEntry {
                    name: "fig12".into(),
                    wall_ms: 2000.0,
                    cells: 20,
                    sim_cycles: 1_000_000,
                    cell_wall_ms: vec![1500.0, 500.0],
                },
                BenchEntry {
                    name: "table2".into(),
                    wall_ms: 500.0,
                    cells: 15,
                    sim_cycles: 600_000,
                    cell_wall_ms: vec![],
                },
            ],
            trace: vec![TraceRow {
                scheme: "dolos-partial".into(),
                workload: "Hashmap".into(),
                persists: 93,
                p50: 160,
                p95: 480,
                p99: 640,
                max: 640,
            }],
        };
        assert_eq!(report.file_name(), "BENCH_2026-08-06.json");
        let json = report.to_json();
        assert!(json.contains("\"cells\": 20"));
        assert!(json.contains("\"wall_ms\": 2500.000"));
        assert!(json.contains("\"sim_cycles\": 1600000"));
        assert!(json.contains("\"cells_per_sec\": 10.000"));
        assert!(json.contains("\"cells_per_sec\": 14.000"));
        // Per-cell walls and the max/mean skew (1500 / 1000 = 1.5); a row
        // with no per-cell samples pins skew 0 and an empty array.
        assert!(json.contains("\"skew\": 1.500, \"cell_wall_ms\": [1500.000, 500.000]"));
        assert!(json.contains("\"skew\": 0.000, \"cell_wall_ms\": []"));
        assert!(json.contains("\"scheme\": \"dolos-partial\""));
        assert!(json.contains("\"p99\": 640"));
        // Balanced braces/brackets and no trailing comma before a closer.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn golden_excludes_wall_clock_fields() {
        let report = BenchReport {
            date: "2026-08-08".into(),
            transactions: 10,
            warmup: 4,
            seed: 24301,
            jobs: 2,
            entries: vec![
                BenchEntry {
                    name: "fig6".into(),
                    wall_ms: 123.456,
                    cells: 12,
                    sim_cycles: 5_704_848,
                    cell_wall_ms: vec![10.0, 20.0],
                },
                BenchEntry {
                    name: "table3".into(),
                    wall_ms: 0.043,
                    cells: 0,
                    sim_cycles: 0,
                    cell_wall_ms: vec![],
                },
            ],
            trace: vec![],
        };
        let golden = report.to_golden();
        assert!(golden.contains("\"sim_cycles\": 5704848"));
        assert!(golden.contains("\"total\": {\"cells\": 12, \"sim_cycles\": 5704848}"));
        // Nothing machine- or time-dependent may appear.
        assert!(!golden.contains("wall"));
        assert!(!golden.contains("date"));
        assert!(!golden.contains("jobs"));
        assert!(!golden.contains("cells_per_sec"));
        // Wall-clock changes — totals, per-cell samples, jobs, date — must
        // not move the golden bytes.
        let mut faster = report.clone();
        faster.entries[0].wall_ms = 1.0;
        faster.entries[0].cell_wall_ms = vec![0.5, 0.5];
        faster.jobs = 7;
        faster.date = "2031-01-01".into();
        assert_eq!(faster.to_golden(), golden);
    }

    #[test]
    fn experiment_row_schema_is_pinned() {
        // The exact serialized row shape, pinned so downstream BENCH_* JSON
        // consumers (and the CI golden cmp) never see a silent key change.
        // `recovery`-style rows carry real cell counts — never zero — so
        // `cells_per_sec` is a meaningful throughput.
        let report = BenchReport {
            date: "2026-08-08".into(),
            transactions: 400,
            warmup: 48,
            seed: 24301,
            jobs: 2,
            entries: vec![BenchEntry {
                name: "recovery".into(),
                wall_ms: 12.5,
                cells: 3,
                sim_cycles: 444_000,
                cell_wall_ms: vec![2.0, 4.0],
            }],
            trace: vec![],
        };
        assert!(report.to_json().contains(
            "{\"name\": \"recovery\", \"wall_ms\": 12.500, \"cells\": 3, \
             \"sim_cycles\": 444000, \"cells_per_sec\": 240.000, \"skew\": 1.333, \
             \"cell_wall_ms\": [2.000, 4.000]}"
        ));
        assert!(report
            .to_golden()
            .contains("{\"name\": \"recovery\", \"cells\": 3, \"sim_cycles\": 444000}"));
    }

    #[test]
    fn zero_time_throughput_is_zero_not_nan() {
        let e = BenchEntry {
            name: "fig6".into(),
            wall_ms: 0.0,
            cells: 10,
            sim_cycles: 5,
            cell_wall_ms: vec![],
        };
        assert_eq!(e.cells_per_sec(), 0.0);
        assert_eq!(e.skew(), 0.0);
    }

    #[test]
    fn skew_is_max_over_mean_and_degenerate_cases_are_zero() {
        let mut e = BenchEntry {
            name: "fig12".into(),
            wall_ms: 60.0,
            cells: 3,
            sim_cycles: 9,
            cell_wall_ms: vec![10.0, 20.0, 30.0],
        };
        // max 30 over mean 20.
        assert!((e.skew() - 1.5).abs() < 1e-12);
        // Uniform cells: skew exactly 1.
        e.cell_wall_ms = vec![7.0; 4];
        assert!((e.skew() - 1.0).abs() < 1e-12);
        // All-zero samples (clock too coarse): 0, never NaN.
        e.cell_wall_ms = vec![0.0; 4];
        assert_eq!(e.skew(), 0.0);
    }
}
