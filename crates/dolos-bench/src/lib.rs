//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5).
//!
//! Each `fig*` / `table*` function runs the relevant workload × controller
//! sweep and returns structured rows; [`report`] renders them next to the
//! paper's published values so the shape comparison is immediate. The
//! `experiments` binary drives them from the command line:
//!
//! ```text
//! cargo run --release -p dolos-bench --bin experiments -- all
//! cargo run --release -p dolos-bench --bin experiments -- fig12 --transactions 1000
//! ```
//!
//! Absolute numbers will not match gem5 (different substrate); the claims
//! under test are the *shapes*: who wins, by what factor, and where the
//! crossovers sit. `EXPERIMENTS.md` records one full run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod experiments;
pub mod microbench;
pub mod paper;
pub mod report;

pub use experiments::{ExperimentConfig, ExperimentId};
