//! The paper's published numbers, embedded for side-by-side reporting.
//!
//! Sources: Figure 12, Figure 16, Table 2, Table 3, §5.2–§5.5 of
//! Han, Tuck, Awad — "Dolos", MICRO 2021.

/// Workload order used throughout (matches the figures).
pub const WORKLOADS: [&str; 6] = [
    "Hashmap",
    "Ctree",
    "Btree",
    "RBtree",
    "NStore:YCSB",
    "Redis",
];

/// Table 2 — WPQ insertion retry events per kilo write requests at
/// transaction size 1024 B, eager update. Rows follow [`WORKLOADS`];
/// columns are (Full, Partial, Post).
pub const TABLE2_RETRIES_PER_KWR: [(f64, f64, f64); 6] = [
    (182.32, 293.00, 359.30),
    (88.19, 207.22, 285.24),
    (106.55, 214.17, 280.80),
    (120.00, 209.89, 261.22),
    (1.09, 68.55, 181.95),
    (106.93, 215.10, 274.43),
];

/// §5.2.1 — average speedups over the Pre-WPQ-Secure baseline with eager
/// updates, (Full, Partial, Post).
pub const FIG12_AVG_SPEEDUP: (f64, f64, f64) = (1.66, 1.66, 1.59);

/// §5.2.1 — NStore highlights: Partial 1.98x, Full 1.90x.
pub const FIG12_NSTORE: (f64, f64) = (1.90, 1.98);

/// §3 — mean slowdown of performing security before the WPQ relative to
/// deferring it (Figure 6): 2.1x.
pub const FIG6_MEAN_SLOWDOWN: f64 = 2.1;

/// §5.3 — Partial-WPQ speedup at WPQ sizes 13/28/57/113 (physical
/// 16/32/64/128).
pub const FIG15_SPEEDUPS: [(usize, f64); 4] = [(13, 1.66), (28, 1.85), (57, 1.87), (113, 1.88)];

/// §5.3 — mean retries per KWR at those sizes.
pub const FIG15_RETRIES: [(usize, f64); 4] = [(13, 201.32), (28, 29.03), (57, 13.55), (113, 11.08)];

/// §5.4 — average speedups with the lazy (ToC/Phoenix) scheme,
/// (Full, Partial, Post).
pub const FIG16_AVG_SPEEDUP: (f64, f64, f64) = (1.044, 1.079, 1.071);

/// Table 3 — Mi-SU storage overhead: (counter bytes, MAC bytes,
/// pad bytes-per-entry, entries) per design.
pub const TABLE3_STORAGE: [(&str, usize, usize, usize, usize); 3] = [
    ("Full-WPQ-MiSU", 8, 192, 72, 16),
    ("Partial-WPQ-MiSU", 8, 128, 80, 13),
    ("Post-WPQ-MiSU", 8, 128, 80, 10),
];

/// §5.5 — estimated Full-WPQ Mi-SU recovery time in cycles.
pub const RECOVERY_FULL_CYCLES: u64 = 44_480;

/// §5.1 — transaction sizes swept in Figures 13/14.
pub const TXN_SIZES: [usize; 5] = [128, 256, 512, 1024, 2048];

/// §5.1 — mean WPQ request inter-arrival time the paper reports.
pub const MEAN_ARRIVAL_CYCLES: f64 = 473.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent_with_workload_count() {
        assert_eq!(TABLE2_RETRIES_PER_KWR.len(), WORKLOADS.len());
    }

    #[test]
    fn table3_matches_the_wpq_sizing() {
        assert_eq!(TABLE3_STORAGE[0].4, 16);
        assert_eq!(TABLE3_STORAGE[1].4, 13);
        assert_eq!(TABLE3_STORAGE[2].4, 10);
    }
}
