//! Minimal wall-clock micro-benchmark harness (criterion replacement).
//!
//! The workspace builds offline with no external crates, so the `[[bench]]`
//! targets use this self-contained harness instead of criterion. It keeps the
//! two behaviours that matter:
//!
//! * under `cargo bench` (cargo passes `--bench`) each benchmark is warmed up
//!   and timed over enough iterations to report a stable ns/iter figure;
//! * under `cargo test` (no `--bench` flag) each benchmark runs a single
//!   iteration as a smoke test, so bench targets stay compiled and correct
//!   without slowing the test suite down.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so bench files only import from this module.
pub use std::hint::black_box as bb;

/// How a [`Bench`] run executes: full timing or a single smoke iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Warm up, then time a calibrated batch (under `cargo bench`).
    Measure,
    /// One iteration per benchmark (under `cargo test`).
    Smoke,
}

/// A named collection of micro-benchmarks.
#[derive(Debug)]
pub struct Bench {
    suite: &'static str,
    mode: Mode,
    target_time: Duration,
}

impl Bench {
    /// Creates a harness for `suite`, inspecting the process arguments to
    /// decide between measure mode (`--bench` present, as `cargo bench`
    /// passes) and smoke mode (`cargo test`).
    pub fn from_args(suite: &'static str) -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Self {
            suite,
            mode: if measure { Mode::Measure } else { Mode::Smoke },
            target_time: Duration::from_millis(200),
        }
    }

    /// Runs one benchmark: `f` is invoked repeatedly and its result is
    /// black-boxed so the work cannot be optimized away.
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
                println!("{}/{name}: ok (smoke)", self.suite);
            }
            Mode::Measure => {
                // Warm-up and calibration: find an iteration count that
                // fills the target time.
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= self.target_time || iters >= 1 << 30 {
                        let ns = elapsed.as_nanos() as f64 / iters as f64;
                        println!("{}/{name}: {ns:.1} ns/iter ({iters} iters)", self.suite);
                        break;
                    }
                    let grow = if elapsed.is_zero() {
                        16
                    } else {
                        (self.target_time.as_nanos() / elapsed.as_nanos().max(1)) as u64 + 1
                    };
                    iters = iters.saturating_mul(grow.clamp(2, 16));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bench {
            suite: "t",
            mode: Mode::Smoke,
            target_time: Duration::from_millis(1),
        };
        let mut calls = 0u32;
        b.run("probe", || calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_runs_many() {
        let mut b = Bench {
            suite: "t",
            mode: Mode::Measure,
            target_time: Duration::from_micros(50),
        };
        let mut calls = 0u64;
        b.run("probe", || calls += 1);
        assert!(calls > 1);
    }
}
