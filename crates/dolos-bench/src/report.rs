//! Plain-text table rendering (re-export).
//!
//! The implementation moved to [`dolos_sim::table`] so that report-producing
//! crates (chaos campaigns, the verify conformance matrix) can render tables
//! without pulling in the wall-clock-exempt bench harness. This module keeps
//! the original `dolos_bench::report` paths working.

pub use dolos_sim::table::{f1, f2, f3, Table};
