//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments all
//! experiments fig12 fig15 --transactions 1000 --seed 7
//! experiments all --jobs 4
//! experiments bench --jobs 0
//! ```
//!
//! `bench` runs the selected experiments (default: all), suppresses the
//! tables, and writes machine-readable throughput numbers to
//! `BENCH_<YYYY-MM-DD>.json` in the working directory. Bench mode flattens
//! every selected experiment's sweep cells into ONE global list and runs it
//! longest-cell-first through the work-stealing pool, so slow figures'
//! stragglers overlap other figures' short cells; per-cell wall times and
//! the max/mean skew land in each JSON row. Tables and the bench JSON are
//! identical at any `--jobs` value apart from wall-clock fields: sweep
//! results are merged in cell order, never completion order.
//!
//! `bench --trace` additionally runs the `dolos-trace` mini-bench — every
//! report scheme × WHISPER workload with event recording on — and appends
//! per-cell persist-latency histogram columns (p50/p95/p99/max) to the
//! JSON. Those rows contain only simulated quantities, so they too are
//! byte-identical at any `--jobs` value.
//!
//! `bench --golden PATH` also writes a wall-free snapshot (per-experiment
//! `cells`/`sim_cycles` only) to PATH; CI `cmp`s it against the committed
//! `ci/bench_sim_cycles.golden.json` so simulated timing cannot drift
//! unnoticed under wall-clock optimizations.

use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use dolos_bench::emit::{civil_date_utc, BenchEntry, BenchReport, TraceRow};
use dolos_bench::{ExperimentConfig, ExperimentId};
use dolos_trace::ProfileConfig;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <all|bench|{}> [--transactions N] [--warmup N] [--seed N] \
         [--jobs N] [--csv DIR] [--trace] [--golden PATH]",
        ExperimentId::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join("|")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExperimentConfig::default();
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut golden_path: Option<String> = None;
    let mut bench = false;
    let mut trace = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "all" => selected.extend(ExperimentId::ALL),
            "bench" => bench = true,
            "--trace" => trace = true,
            "--transactions" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.transactions = n,
                None => return usage(),
            },
            "--warmup" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.warmup = n,
                None => return usage(),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.seed = n,
                None => return usage(),
            },
            "--jobs" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.jobs = n,
                None => return usage(),
            },
            "--csv" => match iter.next() {
                Some(dir) => csv_dir = Some(dir.clone()),
                None => return usage(),
            },
            "--golden" => match iter.next() {
                Some(path) => golden_path = Some(path.clone()),
                None => return usage(),
            },
            name => match ExperimentId::parse(name) {
                Some(id) => selected.push(id),
                None => return usage(),
            },
        }
    }
    if bench && selected.is_empty() {
        selected.extend(ExperimentId::ALL);
    }
    if selected.is_empty() {
        return usage();
    }
    println!(
        "# Dolos experiment harness ({} transactions per run, warmup {}, seed {:#x}, jobs {})\n",
        config.transactions,
        config.warmup,
        config.seed,
        if config.jobs == 0 {
            "auto".to_owned()
        } else {
            config.jobs.to_string()
        }
    );
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut entries = Vec::new();
    if bench {
        // Flattened sweep: every selected experiment's cells run as one
        // global longest-hint-first list through the work-stealing pool, so
        // one figure's stragglers overlap another's short cells. Tables and
        // all simulated quantities are byte-identical to the sequential
        // path below; only wall-clock fields differ.
        for outcome in config.bench_flat(&selected) {
            if let Some(dir) = &csv_dir {
                for (i, table) in outcome.tables.iter().enumerate() {
                    let path = format!("{dir}/{}_{i}.csv", outcome.id.name());
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            eprintln!("[{} done in {:.1}ms]", outcome.id.name(), outcome.wall_ms);
            entries.push(BenchEntry {
                name: outcome.id.name().to_owned(),
                wall_ms: outcome.wall_ms,
                cells: outcome.cells,
                sim_cycles: outcome.sim_cycles,
                cell_wall_ms: outcome.cell_wall_ms,
            });
        }
    } else {
        for id in selected {
            let start = Instant::now();
            for (i, table) in config.run(id).into_iter().enumerate() {
                println!("{}", table.render());
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{}_{i}.csv", id.name());
                    if let Err(e) = std::fs::write(&path, table.to_csv()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            eprintln!(
                "[{} done in {:.1}ms]",
                id.name(),
                start.elapsed().as_secs_f64() * 1000.0
            );
        }
    }
    if bench {
        let trace_rows = if trace {
            let profile = dolos_trace::run_profile(&ProfileConfig {
                transactions: config.transactions,
                warmup: config.warmup,
                seed: config.seed,
                jobs: config.jobs,
                ..ProfileConfig::default()
            });
            let rows: Vec<TraceRow> = profile
                .schemes
                .iter()
                .flat_map(|scheme| {
                    scheme.cells.iter().map(|cell| TraceRow {
                        scheme: cell.scheme.to_owned(),
                        workload: cell.workload.to_owned(),
                        persists: cell.persists,
                        p50: cell.latency.percentile(0.50),
                        p95: cell.latency.percentile(0.95),
                        p99: cell.latency.percentile(0.99),
                        max: cell.latency.max().unwrap_or(0),
                    })
                })
                .collect();
            eprintln!("[trace mini-bench: {} cells]", rows.len());
            rows
        } else {
            Vec::new()
        };
        let secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let report = BenchReport {
            date: civil_date_utc(secs),
            transactions: config.transactions,
            warmup: config.warmup,
            seed: config.seed,
            jobs: config.jobs,
            entries,
            trace: trace_rows,
        };
        let path = report.file_name();
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        // Wall-free sim-cycle snapshot for CI's golden cmp: any functional
        // change that moves simulated timing shows up as a byte diff here,
        // while wall-clock-only optimizations leave it untouched.
        if let Some(path) = &golden_path {
            if let Err(e) = std::fs::write(path, report.to_golden()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
    }
    ExitCode::SUCCESS
}
