//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments all
//! experiments fig12 fig15 --transactions 1000 --seed 7
//! ```

use std::process::ExitCode;

use dolos_bench::{ExperimentConfig, ExperimentId};

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <all|{}> [--transactions N] [--warmup N] [--seed N] [--csv DIR]",
        ExperimentId::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join("|")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExperimentConfig::default();
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "all" => selected.extend(ExperimentId::ALL),
            "--transactions" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.transactions = n,
                None => return usage(),
            },
            "--warmup" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.warmup = n,
                None => return usage(),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.seed = n,
                None => return usage(),
            },
            "--csv" => match iter.next() {
                Some(dir) => csv_dir = Some(dir.clone()),
                None => return usage(),
            },
            name => match ExperimentId::parse(name) {
                Some(id) => selected.push(id),
                None => return usage(),
            },
        }
    }
    if selected.is_empty() {
        return usage();
    }
    println!(
        "# Dolos experiment harness ({} transactions per run, warmup {}, seed {:#x})\n",
        config.transactions, config.warmup, config.seed
    );
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    for id in selected {
        let start = std::time::Instant::now();
        for (i, table) in config.run(id).into_iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}_{i}.csv", id.name());
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        eprintln!("[{} done in {:.1?}]", id.name(), start.elapsed());
    }
    ExitCode::SUCCESS
}
