//! Record and replay persist traces from the command line.
//!
//! ```text
//! trace_tool record hashmap --transactions 200 --txn-bytes 1024 --out /tmp/h.trace
//! trace_tool replay /tmp/h.trace --controller dolos-partial
//! trace_tool replay /tmp/h.trace            # all controllers
//! ```

use std::process::ExitCode;

use dolos_core::{ControllerConfig, MiSuKind};
use dolos_sim::rng::XorShift;
use dolos_whisper::workloads::WorkloadKind;
use dolos_whisper::{PmEnv, Trace};

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!(
        "  trace_tool record <workload> [--transactions N] [--txn-bytes N] [--seed N] [--out FILE]"
    );
    eprintln!("  trace_tool replay <FILE> [--controller NAME]");
    eprintln!("workloads: hashmap ctree btree rbtree nstore redis memcached vacation");
    eprintln!("controllers: ideal deferred pre-wpq-secure dolos-full dolos-partial dolos-post");
    ExitCode::FAILURE
}

fn parse_workload(name: &str) -> Option<WorkloadKind> {
    Some(match name {
        "hashmap" => WorkloadKind::Hashmap,
        "ctree" => WorkloadKind::Ctree,
        "btree" => WorkloadKind::Btree,
        "rbtree" => WorkloadKind::Rbtree,
        "nstore" => WorkloadKind::NstoreYcsb,
        "redis" => WorkloadKind::Redis,
        "memcached" => WorkloadKind::Memcached,
        "vacation" => WorkloadKind::Vacation,
        _ => return None,
    })
}

fn parse_controller(name: &str) -> Option<ControllerConfig> {
    Some(match name {
        "ideal" => ControllerConfig::ideal(),
        "deferred" => ControllerConfig::deferred(),
        "pre-wpq-secure" => ControllerConfig::baseline(),
        "dolos-full" => ControllerConfig::dolos(MiSuKind::Full),
        "dolos-partial" => ControllerConfig::dolos(MiSuKind::Partial),
        "dolos-post" => ControllerConfig::dolos(MiSuKind::Post),
        _ => return None,
    })
}

fn all_controllers() -> Vec<ControllerConfig> {
    [
        "ideal",
        "deferred",
        "pre-wpq-secure",
        "dolos-full",
        "dolos-partial",
        "dolos-post",
    ]
    .iter()
    .map(|n| parse_controller(n).expect("known name"))
    .collect()
}

fn record(args: &[String]) -> ExitCode {
    let Some(kind) = args.first().and_then(|w| parse_workload(w)) else {
        return usage();
    };
    let mut transactions = 200usize;
    let mut txn_bytes = 1024usize;
    let mut seed = 0x5EEDu64;
    let mut out: Option<String> = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--transactions" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => transactions = n,
                None => return usage(),
            },
            "--txn-bytes" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => txn_bytes = n,
                None => return usage(),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--out" => match iter.next() {
                Some(f) => out = Some(f.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let mut config = ControllerConfig::dolos(MiSuKind::Partial);
    config.region_bytes = 64 << 20;
    let mut env = PmEnv::new(config);
    env.start_recording();
    let mut workload = kind.build();
    workload.setup(&mut env);
    let mut rng = XorShift::new(seed);
    for _ in 0..transactions {
        workload.transaction(&mut env, txn_bytes, &mut rng);
    }
    let trace = env.take_trace().expect("recording was on");
    eprintln!(
        "recorded {}: {} ops, {} persisted lines",
        kind.name(),
        trace.len(),
        trace.persist_lines()
    );
    let text = trace.serialize();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let configs = match args.get(1).map(String::as_str) {
        Some("--controller") => match args.get(2).and_then(|n| parse_controller(n)) {
            Some(c) => vec![c],
            None => return usage(),
        },
        Some(_) => return usage(),
        None => all_controllers(),
    };
    println!(
        "{:<16} {:>14} {:>10} {:>10}",
        "controller", "cycles", "persists", "retries"
    );
    for config in configs {
        let name = config.kind.name();
        let result = trace.replay(config);
        println!(
            "{:<16} {:>14} {:>10} {:>10}",
            name, result.cycles, result.persists, result.retries
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}
