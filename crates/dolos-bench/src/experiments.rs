//! The experiment implementations, one per table/figure.
//!
//! Every workload × controller sweep is expressed as an ordered list of
//! `Cell`s and executed through the deterministic work-stealing pool
//! ([`dolos_sim::pool::run_indexed`]), so the rendered tables are identical
//! at any `jobs` value: workers claim index blocks from a shared queue but
//! results land in an index-addressed slab and are merged in cell order,
//! never completion order.
//!
//! Each sweep is split into a *cell builder* and a *renderer* so the two
//! execution shapes share one implementation:
//!
//! * `experiments <id>` runs one experiment's cells through the pool and
//!   renders immediately ([`ExperimentConfig::run`]);
//! * `experiments bench` concatenates every selected experiment's cells
//!   into one global list and runs it through
//!   [`dolos_sim::pool::run_indexed_weighted`] (longest-cell-first by a
//!   static cost hint), so one figure's stragglers overlap another's short
//!   cells instead of serializing behind a per-figure barrier
//!   ([`ExperimentConfig::bench_flat`]). Results are sliced back per
//!   experiment by index, so every table and JSON byte matches the
//!   per-experiment path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dolos_core::{ControllerConfig, MiSuKind, UpdateScheme};
use dolos_whisper::runner::{run_workload, RunConfig, RunResult};
use dolos_whisper::workloads::WorkloadKind;

use crate::paper;
use crate::report::{f1, f2, f3, Table};

/// Which experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Figure 6 — CPI: security before vs after the WPQ.
    Fig6,
    /// Figure 12 — speedups of the three Mi-SU designs (eager).
    Fig12,
    /// Table 2 — WPQ insertion retries per KWR.
    Table2,
    /// Figure 13 — Partial retries across transaction sizes.
    Fig13,
    /// Figure 14 — Partial speedups across transaction sizes.
    Fig14,
    /// Figure 15 — speedup and retries vs WPQ size.
    Fig15,
    /// Figure 16 — speedups with the lazy (ToC) scheme.
    Fig16,
    /// Table 3 — Mi-SU storage overhead.
    Table3,
    /// §5.5 — Mi-SU recovery-time estimate and measured recovery.
    Recovery,
    /// Ablations beyond the paper: MAC latency, coalescing, counter cache,
    /// Osiris phase.
    Ablations,
    /// Extension workloads (Memcached, Vacation) under Figure-12 conditions,
    /// plus the eADR comparison the introduction alludes to.
    Extended,
    /// Conformance — the dolos-verify differential matrix and metamorphic
    /// invariants over a seeded campaign (DESIGN.md §12).
    Conformance,
    /// Banked-WPQ sweep (beyond the paper) — Figure 16's lazy-ToC condition
    /// made genuinely drain-bound, across bank counts (DESIGN.md §16).
    Banks,
}

impl ExperimentId {
    /// All experiments, in paper order (extensions last).
    pub const ALL: [ExperimentId; 13] = [
        ExperimentId::Fig6,
        ExperimentId::Fig12,
        ExperimentId::Table2,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
        ExperimentId::Fig16,
        ExperimentId::Table3,
        ExperimentId::Recovery,
        ExperimentId::Ablations,
        ExperimentId::Extended,
        ExperimentId::Conformance,
        ExperimentId::Banks,
    ];

    /// CLI name ("fig6", "table2", ...).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Table2 => "table2",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Fig16 => "fig16",
            ExperimentId::Table3 => "table3",
            ExperimentId::Recovery => "recovery",
            ExperimentId::Ablations => "ablations",
            ExperimentId::Extended => "extended",
            ExperimentId::Conformance => "conformance",
            ExperimentId::Banks => "banks",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|e| e.name() == name)
    }
}

/// One simulation cell of a sweep: workload × controller × transaction size.
///
/// Cells are fully independent — each builds its own simulated system from
/// the carried design — which is what makes the index-addressed pool sound
/// here.
struct Cell {
    kind: WorkloadKind,
    design: ControllerConfig,
    txn_bytes: usize,
    /// Client think-ops override. `None` keeps the runner's derived think
    /// model (every paper sweep); the banked sweep pins it to zero to make
    /// the stream drain-bound.
    think_ops: Option<u64>,
}

impl Cell {
    fn new(kind: WorkloadKind, design: ControllerConfig, txn_bytes: usize) -> Self {
        Self {
            kind,
            design,
            txn_bytes,
            think_ops: None,
        }
    }

    /// Static host-cost hint for longest-cell-first scheduling in the flat
    /// bench sweep. A pure function of the cell's parameters — never of a
    /// measurement — so the schedule is reproducible; and because results
    /// are index-addressed, even a *bad* hint can only cost wall time,
    /// never change a byte of output.
    fn cost_hint(&self) -> u64 {
        // Bigger transactions write more lines per transaction; drain-bound
        // cells (think time pinned to zero) stress the WPQ far harder per
        // byte and historically run several times longer.
        let think = if self.think_ops == Some(0) { 4 } else { 1 };
        self.txn_bytes as u64 * think
    }
}

/// One experiment's outcome under the flattened bench sweep: the rendered
/// tables plus the work and wall tallies the JSON report needs.
pub struct BenchOutcome {
    /// Which experiment.
    pub id: ExperimentId,
    /// Rendered tables (bench mode writes these to `--csv`, not stdout).
    pub tables: Vec<Table>,
    /// Cells run (sweep cells, or a direct experiment's own tally).
    pub cells: u64,
    /// Simulated cycles across those cells.
    pub sim_cycles: u64,
    /// Host wall milliseconds per sweep cell, in cell order. Empty for
    /// direct (non-sweep) experiments, whose work never enters the pool.
    pub cell_wall_ms: Vec<f64>,
    /// Total wall milliseconds attributed to this experiment: the sum of
    /// its cell walls for sweeps (cells overlap other experiments' cells in
    /// the flat schedule, so the *sum of per-cell work* is the meaningful
    /// per-experiment number), or the measured elapsed time for direct
    /// experiments.
    pub wall_ms: f64,
}

/// Shared sweep parameters.
#[derive(Debug)]
pub struct ExperimentConfig {
    /// Measured transactions per run.
    pub transactions: usize,
    /// Warm-up transactions per run.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for sweep cells (0 = auto-detect, 1 = serial).
    ///
    /// Any value produces identical tables: results are merged in cell
    /// order, never in completion order.
    pub jobs: usize,
    // Work tallies for `experiments bench`, accumulated across every sweep
    // this config runs. Atomics so a `&self` sweep can tally while staying
    // `Sync` for the job pool; contention is nil (one add per sweep).
    cells_run: AtomicU64,
    sim_cycles: AtomicU64,
}

impl Clone for ExperimentConfig {
    fn clone(&self) -> Self {
        Self {
            transactions: self.transactions,
            warmup: self.warmup,
            seed: self.seed,
            jobs: self.jobs,
            cells_run: AtomicU64::new(self.cells_run.load(Ordering::Relaxed)),
            sim_cycles: AtomicU64::new(self.sim_cycles.load(Ordering::Relaxed)),
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            transactions: 400,
            warmup: 48,
            seed: 0x5EED,
            jobs: 1,
            cells_run: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
        }
    }
}

impl ExperimentConfig {
    fn run_config(&self, txn_bytes: usize) -> RunConfig {
        RunConfig {
            transactions: self.transactions,
            txn_bytes,
            warmup: self.warmup,
            seed: self.seed,
            ..RunConfig::default()
        }
    }

    /// Runs one sweep cell. Cells are self-contained; this is the worker
    /// body for both the per-experiment and the flattened pool.
    fn run_cell(&self, cell: &Cell) -> RunResult {
        run_workload(
            cell.kind,
            cell.design.clone(),
            &RunConfig {
                think_ops_per_txn: cell.think_ops,
                ..self.run_config(cell.txn_bytes)
            },
        )
    }

    /// Runs a sweep's cells through the deterministic job pool.
    ///
    /// `out[i]` is always the result of `cells[i]` regardless of `jobs`, so
    /// callers index the result vector by the same arithmetic they used to
    /// build the cell list.
    fn run_cells(&self, cells: Vec<Cell>) -> Vec<RunResult> {
        let results =
            dolos_sim::pool::run_indexed(self.jobs, &cells, |_, cell| self.run_cell(cell));
        self.tally(cells.len() as u64, results.iter().map(|r| r.cycles).sum());
        results
    }

    /// Adds to the work tallies directly. Experiments that simulate outside
    /// the sweep-cell pool (the measured recovery) or do bounded analytic
    /// work (Table 3) report through here so their bench rows carry real
    /// cell counts instead of zeros.
    fn tally(&self, cells: u64, sim_cycles: u64) {
        self.cells_run.fetch_add(cells, Ordering::Relaxed);
        self.sim_cycles.fetch_add(sim_cycles, Ordering::Relaxed);
    }

    /// Total `(cells, simulated cycles)` this config has run through sweep
    /// cells so far. Table 3 (analytic) and the measured-recovery
    /// experiment do not use sweep cells and are not counted.
    pub fn metrics(&self) -> (u64, u64) {
        (
            self.cells_run.load(Ordering::Relaxed),
            self.sim_cycles.load(Ordering::Relaxed),
        )
    }

    /// The sweep-cell list for `id`, when the experiment is a pool sweep.
    /// Direct experiments — the analytic Table 3, the measured recovery,
    /// the conformance campaign — return `None` and run outside the flat
    /// pool.
    fn sweep_cells(id: ExperimentId) -> Option<Vec<Cell>> {
        match id {
            ExperimentId::Fig6 => Some(Self::fig6_cells()),
            ExperimentId::Fig12 => Some(Self::speedup_cells(UpdateScheme::EagerMerkle)),
            ExperimentId::Table2 => Some(Self::table2_cells()),
            ExperimentId::Fig13 => Some(Self::fig13_cells()),
            ExperimentId::Fig14 => Some(Self::fig14_cells()),
            ExperimentId::Fig15 => Some(Self::fig15_cells()),
            ExperimentId::Fig16 => Some(Self::speedup_cells(UpdateScheme::LazyToc)),
            ExperimentId::Ablations => Some(Self::ablations_cells()),
            ExperimentId::Extended => Some(Self::extended_cells()),
            ExperimentId::Banks => Some(Self::banks_cells()),
            ExperimentId::Table3 | ExperimentId::Recovery | ExperimentId::Conformance => None,
        }
    }

    /// Renders a sweep experiment from its cell results (in cell order).
    /// Direct experiments have no sweep results and render nothing here.
    fn render_sweep(id: ExperimentId, results: &[RunResult]) -> Vec<Table> {
        match id {
            ExperimentId::Fig6 => Self::fig6_render(results),
            ExperimentId::Fig12 => Self::speedup_render(
                results,
                "Figure 12 — Dolos speedup vs Pre-WPQ-Secure (eager MT, txn 1024 B)",
                paper::FIG12_AVG_SPEEDUP,
            ),
            ExperimentId::Table2 => Self::table2_render(results),
            ExperimentId::Fig13 => Self::fig13_render(results),
            ExperimentId::Fig14 => Self::fig14_render(results),
            ExperimentId::Fig15 => Self::fig15_render(results),
            ExperimentId::Fig16 => Self::speedup_render(
                results,
                "Figure 16 — Dolos speedup vs Pre-WPQ-Secure (lazy ToC, txn 1024 B)",
                paper::FIG16_AVG_SPEEDUP,
            ),
            ExperimentId::Ablations => Self::ablations_render(results),
            ExperimentId::Extended => Self::extended_render(results),
            ExperimentId::Banks => Self::banks_render(results),
            ExperimentId::Table3 | ExperimentId::Recovery | ExperimentId::Conformance => Vec::new(),
        }
    }

    /// Dispatches one experiment, returning its rendered tables.
    pub fn run(&self, id: ExperimentId) -> Vec<Table> {
        match Self::sweep_cells(id) {
            Some(cells) => {
                let results = self.run_cells(cells);
                Self::render_sweep(id, &results)
            }
            None => match id {
                ExperimentId::Table3 => self.table3(),
                ExperimentId::Recovery => self.recovery(),
                // Every other id has sweep cells and took the arm above.
                _ => self.conformance(),
            },
        }
    }

    /// `experiments bench`: runs every selected experiment's sweep cells as
    /// ONE flat list through the work-stealing pool, longest-hint-first, so
    /// slow cells (fig16's lazy-ToC, the drain-bound banks sweep) overlap
    /// other figures' short cells instead of serializing behind a barrier
    /// per figure. Direct experiments run sequentially afterwards.
    ///
    /// Outcomes are returned in `ids` order, each rendered from its own
    /// slice of the flat result slab — so tables, cell counts, and
    /// `sim_cycles` are byte-identical to running the experiments one by
    /// one, at any `jobs` value. Only the wall-clock fields change.
    pub fn bench_flat(&self, ids: &[ExperimentId]) -> Vec<BenchOutcome> {
        let mut spans: Vec<Option<std::ops::Range<usize>>> = Vec::with_capacity(ids.len());
        let mut flat: Vec<Cell> = Vec::new();
        for &id in ids {
            spans.push(Self::sweep_cells(id).map(|cells| {
                let start = flat.len();
                flat.extend(cells);
                start..flat.len()
            }));
        }
        // Per-cell wall time is measured inside the worker: it is the only
        // wall-clock quantity the schedule can influence, and recording it
        // per cell is what makes scheduling skew observable in the JSON.
        let timed = dolos_sim::pool::run_indexed_weighted(
            self.jobs,
            &flat,
            |_, cell| cell.cost_hint(),
            |_, cell| {
                let start = Instant::now();
                let result = self.run_cell(cell);
                (result, start.elapsed().as_secs_f64() * 1000.0)
            },
        );
        let (results, walls): (Vec<RunResult>, Vec<f64>) = timed.into_iter().unzip();
        self.tally(results.len() as u64, results.iter().map(|r| r.cycles).sum());
        ids.iter()
            .zip(spans)
            .map(|(&id, span)| match span {
                Some(span) => {
                    let slice = &results[span.clone()];
                    BenchOutcome {
                        id,
                        tables: Self::render_sweep(id, slice),
                        cells: slice.len() as u64,
                        sim_cycles: slice.iter().map(|r| r.cycles).sum(),
                        wall_ms: walls[span.clone()].iter().sum(),
                        cell_wall_ms: walls[span].to_vec(),
                    }
                }
                None => {
                    let (cells_before, cycles_before) = self.metrics();
                    let start = Instant::now();
                    let tables = self.run(id);
                    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
                    let (cells_after, cycles_after) = self.metrics();
                    BenchOutcome {
                        id,
                        tables,
                        cells: cells_after - cells_before,
                        sim_cycles: cycles_after - cycles_before,
                        cell_wall_ms: Vec::new(),
                        wall_ms,
                    }
                }
            })
            .collect()
    }

    fn fig6_cells() -> Vec<Cell> {
        let mut cells = Vec::new();
        for kind in WorkloadKind::ALL {
            cells.push(Cell::new(kind, ControllerConfig::baseline(), 1024));
            cells.push(Cell::new(kind, ControllerConfig::deferred(), 1024));
        }
        cells
    }

    fn fig6_render(results: &[RunResult]) -> Vec<Table> {
        let mut t = Table::new(
            "Figure 6 — CPI: security before vs after WPQ (txn 1024 B, eager)",
            &[
                "workload",
                "pre-WPQ CPI",
                "deferred CPI",
                "slowdown",
                "paper-mean",
            ],
        );
        let mut slowdowns = Vec::new();
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let pre = &results[2 * i];
            let post = &results[2 * i + 1];
            let slowdown = pre.cycles as f64 / post.cycles as f64;
            slowdowns.push(slowdown);
            t.row(vec![
                kind.name().into(),
                f3(pre.cpi()),
                f3(post.cpi()),
                f2(slowdown),
                f2(paper::FIG6_MEAN_SLOWDOWN),
            ]);
        }
        let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        t.row(vec![
            "MEAN".into(),
            String::new(),
            String::new(),
            f2(mean),
            f2(paper::FIG6_MEAN_SLOWDOWN),
        ]);
        vec![t]
    }

    /// Figure 6: CPI of Pre-WPQ-Secure vs deferred security (Fig 5-b vs 5-c).
    pub fn fig6(&self) -> Vec<Table> {
        let results = self.run_cells(Self::fig6_cells());
        Self::fig6_render(&results)
    }

    /// Row-major cells: baseline then the three Mi-SU designs per workload.
    fn speedup_cells(scheme: UpdateScheme) -> Vec<Cell> {
        let mut cells = Vec::new();
        for kind in WorkloadKind::ALL {
            cells.push(Cell::new(
                kind,
                ControllerConfig::baseline().with_scheme(scheme),
                1024,
            ));
            for &m in MiSuKind::ALL.iter() {
                cells.push(Cell::new(
                    kind,
                    ControllerConfig::dolos(m).with_scheme(scheme),
                    1024,
                ));
            }
        }
        cells
    }

    fn speedup_render(
        results: &[RunResult],
        title: &str,
        paper_avg: (f64, f64, f64),
    ) -> Vec<Table> {
        let mut t = Table::new(
            title,
            &["workload", "full", "partial", "post", "paper(avg)"],
        );
        let stride = 1 + MiSuKind::ALL.len();
        let mut sums = [0.0f64; 3];
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let base = &results[stride * i];
            let speedups: Vec<f64> = (0..MiSuKind::ALL.len())
                .map(|m| results[stride * i + 1 + m].speedup_vs(base))
                .collect();
            for (s, sum) in speedups.iter().zip(sums.iter_mut()) {
                *sum += s;
            }
            t.row(vec![
                kind.name().into(),
                f3(speedups[0]),
                f3(speedups[1]),
                f3(speedups[2]),
                String::new(),
            ]);
        }
        let n = WorkloadKind::ALL.len() as f64;
        t.row(vec![
            "AVG".into(),
            f3(sums[0] / n),
            f3(sums[1] / n),
            f3(sums[2] / n),
            format!("{}/{}/{}", paper_avg.0, paper_avg.1, paper_avg.2),
        ]);
        vec![t]
    }

    /// Figure 12: speedups of the three Mi-SU designs, eager updates.
    pub fn fig12(&self) -> Vec<Table> {
        let results = self.run_cells(Self::speedup_cells(UpdateScheme::EagerMerkle));
        Self::render_sweep(ExperimentId::Fig12, &results)
    }

    /// Figure 16: speedups with the lazy (ToC/Phoenix) scheme.
    pub fn fig16(&self) -> Vec<Table> {
        let results = self.run_cells(Self::speedup_cells(UpdateScheme::LazyToc));
        Self::render_sweep(ExperimentId::Fig16, &results)
    }

    fn table2_cells() -> Vec<Cell> {
        let mut cells = Vec::new();
        for kind in WorkloadKind::ALL {
            for &m in MiSuKind::ALL.iter() {
                cells.push(Cell::new(kind, ControllerConfig::dolos(m), 1024));
            }
        }
        cells
    }

    fn table2_render(results: &[RunResult]) -> Vec<Table> {
        let mut t = Table::new(
            "Table 2 — WPQ insertion retries per KWR (txn 1024 B, eager)",
            &[
                "workload",
                "full",
                "partial",
                "post",
                "paper-full",
                "paper-partial",
                "paper-post",
            ],
        );
        let stride = MiSuKind::ALL.len();
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let measured: Vec<f64> = results[stride * i..stride * (i + 1)]
                .iter()
                .map(|r| r.retries_per_kwr())
                .collect();
            let (pf, pp, ppo) = paper::TABLE2_RETRIES_PER_KWR[i];
            t.row(vec![
                kind.name().into(),
                f1(measured[0]),
                f1(measured[1]),
                f1(measured[2]),
                f1(pf),
                f1(pp),
                f1(ppo),
            ]);
        }
        vec![t]
    }

    /// Table 2: WPQ insertion retry events per kilo write requests.
    pub fn table2(&self) -> Vec<Table> {
        let results = self.run_cells(Self::table2_cells());
        Self::table2_render(&results)
    }

    fn fig13_cells() -> Vec<Cell> {
        let mut cells = Vec::new();
        for kind in WorkloadKind::ALL {
            for &size in &paper::TXN_SIZES {
                cells.push(Cell::new(
                    kind,
                    ControllerConfig::dolos(MiSuKind::Partial),
                    size,
                ));
            }
        }
        cells
    }

    fn fig13_render(results: &[RunResult]) -> Vec<Table> {
        let mut t = Table::new(
            "Figure 13 — Partial-WPQ retries per KWR vs transaction size",
            &["workload", "128B", "256B", "512B", "1024B", "2048B"],
        );
        let stride = paper::TXN_SIZES.len();
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let mut row = vec![kind.name().to_owned()];
            for r in &results[stride * i..stride * (i + 1)] {
                row.push(f1(r.retries_per_kwr()));
            }
            t.row(row);
        }
        vec![t]
    }

    /// Figure 13: Partial-WPQ retries across transaction sizes.
    pub fn fig13(&self) -> Vec<Table> {
        let results = self.run_cells(Self::fig13_cells());
        Self::fig13_render(&results)
    }

    /// Two cells per (workload, size): baseline then Dolos-Partial.
    fn fig14_cells() -> Vec<Cell> {
        let mut cells = Vec::new();
        for kind in WorkloadKind::ALL {
            for &size in &paper::TXN_SIZES {
                cells.push(Cell::new(kind, ControllerConfig::baseline(), size));
                cells.push(Cell::new(
                    kind,
                    ControllerConfig::dolos(MiSuKind::Partial),
                    size,
                ));
            }
        }
        cells
    }

    fn fig14_render(results: &[RunResult]) -> Vec<Table> {
        let mut t = Table::new(
            "Figure 14 — Partial-WPQ speedup vs transaction size",
            &["workload", "128B", "256B", "512B", "1024B", "2048B"],
        );
        let stride = 2 * paper::TXN_SIZES.len();
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let mut row = vec![kind.name().to_owned()];
            for j in 0..paper::TXN_SIZES.len() {
                let base = &results[stride * i + 2 * j];
                let dolos = &results[stride * i + 2 * j + 1];
                row.push(f3(dolos.speedup_vs(base)));
            }
            t.row(row);
        }
        vec![t]
    }

    /// Figure 14: Partial-WPQ speedups across transaction sizes.
    pub fn fig14(&self) -> Vec<Table> {
        let results = self.run_cells(Self::fig14_cells());
        Self::fig14_render(&results)
    }

    const FIG15_SIZES: [usize; 4] = [16, 32, 64, 128];

    fn fig15_cells() -> Vec<Cell> {
        let mut cells = Vec::new();
        for &physical in &Self::FIG15_SIZES {
            for kind in WorkloadKind::ALL {
                cells.push(Cell::new(
                    kind,
                    ControllerConfig::baseline().with_wpq_entries(physical),
                    1024,
                ));
                cells.push(Cell::new(
                    kind,
                    ControllerConfig::dolos(MiSuKind::Partial).with_wpq_entries(physical),
                    1024,
                ));
            }
        }
        cells
    }

    fn fig15_render(results: &[RunResult]) -> Vec<Table> {
        let mut t = Table::new(
            "Figure 15 — Partial-WPQ speedup vs WPQ size (txn 1024 B)",
            &[
                "physical",
                "usable",
                "speedup",
                "retries/KWR",
                "paper-speedup",
                "paper-retries",
            ],
        );
        let stride = 2 * WorkloadKind::ALL.len();
        for (i, physical) in Self::FIG15_SIZES.into_iter().enumerate() {
            let mut speedups = 0.0;
            let mut retries = 0.0;
            for j in 0..WorkloadKind::ALL.len() {
                let base = &results[stride * i + 2 * j];
                let dolos = &results[stride * i + 2 * j + 1];
                speedups += dolos.speedup_vs(base);
                retries += dolos.retries_per_kwr();
            }
            let n = WorkloadKind::ALL.len() as f64;
            let usable = MiSuKind::Partial.usable_wpq_entries(physical);
            t.row(vec![
                physical.to_string(),
                usable.to_string(),
                f3(speedups / n),
                f1(retries / n),
                f2(paper::FIG15_SPEEDUPS[i].1),
                f1(paper::FIG15_RETRIES[i].1),
            ]);
        }
        vec![t]
    }

    /// Figure 15: speedup and retries vs WPQ size (Partial, txn 1024 B).
    pub fn fig15(&self) -> Vec<Table> {
        let results = self.run_cells(Self::fig15_cells());
        Self::fig15_render(&results)
    }

    /// Table 3: Mi-SU storage overhead (analytic, from the implementation).
    pub fn table3(&self) -> Vec<Table> {
        let mut t = Table::new(
            "Table 3 — Mi-SU storage overhead",
            &[
                "design",
                "counter",
                "MACs",
                "pads",
                "tag array",
                "paper(ctr/mac/pad)",
            ],
        );
        for (i, kind) in MiSuKind::ALL.into_iter().enumerate() {
            let misu = dolos_core::MinorSecurityUnit::new(kind, 16, 0);
            let s = misu.storage_overhead();
            let (_, pc, pm, ppad, pent) = paper::TABLE3_STORAGE[i];
            t.row(vec![
                format!("{}-WPQ-MiSU", kind),
                format!("{}B", s.persistent_counter_bytes),
                format!("{}B", s.mac_bytes),
                format!("{}B", s.pad_bytes),
                format!("{}B", s.tag_array_bytes),
                format!("{pc}B/{pm}B/{ppad}B*{pent}"),
            ]);
        }
        // Analytic, but real bounded work: one storage-overhead evaluation
        // per design is one cell (at zero simulated cycles), so the bench
        // row's `cells_per_sec` reflects throughput instead of pinning 0.
        self.tally(MiSuKind::ALL.len() as u64, 0);
        vec![t]
    }

    /// §5.5: Mi-SU recovery estimates plus a measured functional recovery.
    pub fn recovery(&self) -> Vec<Table> {
        let mut t = Table::new(
            "§5.5 — Mi-SU recovery",
            &[
                "design",
                "estimated cycles",
                "~ms @4GHz",
                "paper (Full)",
                "replayed",
                "masu cycles",
            ],
        );
        for kind in MiSuKind::ALL {
            let misu = dolos_core::MinorSecurityUnit::new(kind, 16, 0);
            let est = misu.estimated_recovery_cycles();
            // Measured functional recovery: run a short workload, crash with
            // a full WPQ, recover, count replayed entries.
            let mut env = dolos_whisper::PmEnv::new(ControllerConfig::dolos(kind));
            let mut w = WorkloadKind::Hashmap.build();
            w.setup(&mut env);
            let mut rng = dolos_sim::rng::XorShift::new(self.seed);
            for _ in 0..24 {
                w.transaction(&mut env, 1024, &mut rng);
            }
            env.crash();
            let report = env.recover().expect("clean recovery");
            // One crash-and-recover simulation is one cell of real work; its
            // cycles are simulated time like any sweep cell's, just run
            // outside the pool (the crash/recover API is not a workload run).
            self.tally(1, env.now().as_u64());
            t.row(vec![
                format!("{}-WPQ-MiSU", kind),
                est.to_string(),
                format!("{:.4}", est as f64 / 4.0e6),
                paper::RECOVERY_FULL_CYCLES.to_string(),
                report.wpq_entries_replayed.to_string(),
                report.measured_masu_cycles.to_string(),
            ]);
        }
        vec![t]
    }

    /// Conformance: the cross-scheme differential matrix and metamorphic
    /// invariant probes from `dolos-verify` (DESIGN.md §12), sized to a
    /// quick sweep. Byte-identical output at any `jobs` value, like every
    /// other experiment.
    pub fn conformance(&self) -> Vec<Table> {
        let config = dolos_verify::VerifyConfig {
            seed: self.seed,
            traces: 64,
            jobs: self.jobs,
            ..dolos_verify::VerifyConfig::default()
        };
        let report = dolos_verify::run_verify(&config);
        vec![report.table(), report.metamorphic_table()]
    }

    const BANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

    fn banks_cells() -> Vec<Cell> {
        Self::BANK_COUNTS
            .iter()
            .map(|&banks| Cell {
                kind: WorkloadKind::Hashmap,
                design: ControllerConfig::dolos(MiSuKind::Full)
                    .with_scheme(UpdateScheme::LazyToc)
                    .with_banks(banks),
                txn_bytes: 2048,
                think_ops: Some(0),
            })
            .collect()
    }

    fn banks_render(results: &[RunResult]) -> Vec<Table> {
        let mut t = Table::new(
            "Banked WPQ — drain-bound lazy-ToC sweep (Hashmap, Full, txn 2048 B, no think)",
            &["banks", "cycles", "speedup", "retries/KWR"],
        );
        for (i, &banks) in Self::BANK_COUNTS.iter().enumerate() {
            t.row(vec![
                banks.to_string(),
                results[i].cycles.to_string(),
                f3(results[0].cycles as f64 / results[i].cycles as f64),
                f1(results[i].retries_per_kwr()),
            ]);
        }
        vec![t]
    }

    /// Banked-WPQ sweep (DESIGN.md §16, beyond the paper): Figure 16's
    /// lazy-ToC Full design on a genuinely drain-bound stream — no client
    /// think time and double-width transactions, so persists outrun a single
    /// bank's retire rate and the WPQ backs up. The `banks = 1` row is the
    /// old global single-queue model bit for bit; the speedup column is the
    /// simulated-cycle win memory-level parallelism buys as drains overlap
    /// across banks.
    pub fn banks(&self) -> Vec<Table> {
        let results = self.run_cells(Self::banks_cells());
        Self::banks_render(&results)
    }
}

impl ExperimentConfig {
    const ABLATION_MACS: [u64; 4] = [40, 80, 160, 320];
    const ABLATION_B_KINDS: [WorkloadKind; 2] = [WorkloadKind::Hashmap, WorkloadKind::NstoreYcsb];
    const ABLATION_KIBS: [usize; 4] = [8, 32, 128, 512];
    const ABLATION_PHASES: [u64; 4] = [1, 2, 4, 16];

    /// The four ablation groups' cells, concatenated in group order
    /// (A: 8 cells, B: 4, C: 4, D: 4); `ablations_render` slices by the
    /// same offsets.
    fn ablations_cells() -> Vec<Cell> {
        let workload = WorkloadKind::Hashmap;
        let mut cells = Vec::new();
        // (a) MAC latency sweep.
        for &mac in &Self::ABLATION_MACS {
            cells.push(Cell::new(
                workload,
                ControllerConfig::baseline().with_mac_latency(mac),
                1024,
            ));
            cells.push(Cell::new(
                workload,
                ControllerConfig::dolos(MiSuKind::Partial).with_mac_latency(mac),
                1024,
            ));
        }
        // (b) Write coalescing (the §4.5 tag array) on/off.
        for &kind in &Self::ABLATION_B_KINDS {
            for on in [true, false] {
                let mut config = ControllerConfig::dolos(MiSuKind::Partial);
                if !on {
                    config = config.without_coalescing();
                }
                cells.push(Cell::new(kind, config, 1024));
            }
        }
        // (c) Counter-cache size sweep.
        for &kib in &Self::ABLATION_KIBS {
            cells.push(Cell::new(
                workload,
                ControllerConfig::dolos(MiSuKind::Partial).with_counter_cache_bytes(kib * 1024),
                1024,
            ));
        }
        // (d) Osiris stop-loss phase.
        for &phase in &Self::ABLATION_PHASES {
            cells.push(Cell::new(
                workload,
                ControllerConfig::dolos(MiSuKind::Partial).with_osiris_phase(phase),
                1024,
            ));
        }
        cells
    }

    fn ablations_render(results: &[RunResult]) -> Vec<Table> {
        let mut out = Vec::new();

        // (a) MAC latency sweep: the Mi-SU advantage shrinks as MACs get
        // cheaper (the baseline's eager update scales with the same knob).
        let mut t = Table::new(
            "Ablation A — MAC latency sweep (Hashmap, Partial vs baseline)",
            &["mac cycles", "baseline cycles", "dolos cycles", "speedup"],
        );
        for (i, mac) in Self::ABLATION_MACS.into_iter().enumerate() {
            let base = &results[2 * i];
            let dolos = &results[2 * i + 1];
            t.row(vec![
                mac.to_string(),
                base.cycles.to_string(),
                dolos.cycles.to_string(),
                f3(dolos.speedup_vs(base)),
            ]);
        }
        out.push(t);

        // (b) Write coalescing (the §4.5 tag array) on/off.
        let mut t = Table::new(
            "Ablation B — WPQ tag array (coalescing) on/off (Partial)",
            &[
                "workload",
                "coalescing",
                "cycles",
                "retries/KWR",
                "coalesces",
            ],
        );
        let b_base = 2 * Self::ABLATION_MACS.len();
        for (i, kind) in Self::ABLATION_B_KINDS.into_iter().enumerate() {
            for (j, on) in [true, false].into_iter().enumerate() {
                let r = &results[b_base + 2 * i + j];
                t.row(vec![
                    kind.name().into(),
                    if on { "on" } else { "off" }.into(),
                    r.cycles.to_string(),
                    f1(r.retries_per_kwr()),
                    r.stats.get_or_zero("wpq.coalesces").to_string(),
                ]);
            }
        }
        out.push(t);

        // (c) Counter-cache size sweep (misses add 600-cycle fetches to the
        // Ma-SU path).
        let mut t = Table::new(
            "Ablation C — counter cache size (Partial, Hashmap)",
            &["cache", "cycles", "hit rate %"],
        );
        let c_base = b_base + 2 * Self::ABLATION_B_KINDS.len();
        for (i, kib) in Self::ABLATION_KIBS.into_iter().enumerate() {
            let r = &results[c_base + i];
            let hits = r.stats.get_or_zero("ctr_cache.hits");
            let misses = r.stats.get_or_zero("ctr_cache.misses");
            t.row(vec![
                format!("{kib}KiB"),
                r.cycles.to_string(),
                f1(100.0 * hits / (hits + misses).max(1.0)),
            ]);
        }
        out.push(t);

        // (d) Osiris stop-loss phase: larger phase = fewer counter
        // write-backs at run time, more probing at recovery.
        let mut t = Table::new(
            "Ablation D — Osiris stop-loss phase (Partial, Hashmap)",
            &["phase", "cycles", "nvm writes"],
        );
        let d_base = c_base + Self::ABLATION_KIBS.len();
        for (i, phase) in Self::ABLATION_PHASES.into_iter().enumerate() {
            let r = &results[d_base + i];
            t.row(vec![
                phase.to_string(),
                r.cycles.to_string(),
                r.stats.get_or_zero("nvm.writes").to_string(),
            ]);
        }
        out.push(t);
        out
    }

    /// Ablation studies for the design choices DESIGN.md calls out.
    pub fn ablations(&self) -> Vec<Table> {
        let results = self.run_cells(Self::ablations_cells());
        Self::ablations_render(&results)
    }
}

impl ExperimentConfig {
    const EXTENDED_KINDS: [WorkloadKind; 3] = [
        WorkloadKind::Memcached,
        WorkloadKind::Vacation,
        WorkloadKind::Hashmap,
    ];

    fn extended_cells() -> Vec<Cell> {
        let mut cells = Vec::new();
        for &kind in &Self::EXTENDED_KINDS {
            cells.push(Cell::new(kind, ControllerConfig::baseline(), 1024));
            cells.push(Cell::new(
                kind,
                ControllerConfig::dolos(MiSuKind::Partial),
                1024,
            ));
            cells.push(Cell::new(kind, ControllerConfig::deferred(), 1024));
        }
        cells
    }

    fn extended_render(results: &[RunResult]) -> Vec<Table> {
        let mut t = Table::new(
            "Extension — Memcached & Vacation, plus the eADR (deferred) bound",
            &["workload", "dolos-partial", "eadr-bound", "gap %"],
        );
        for (i, kind) in Self::EXTENDED_KINDS.into_iter().enumerate() {
            let base = &results[3 * i];
            let dolos = &results[3 * i + 1];
            let eadr = &results[3 * i + 2];
            let s_dolos = dolos.speedup_vs(base);
            let s_eadr = eadr.speedup_vs(base);
            t.row(vec![
                kind.name().into(),
                f3(s_dolos),
                f3(s_eadr),
                f1(100.0 * (s_eadr - s_dolos) / s_eadr),
            ]);
        }
        vec![t]
    }

    /// Extension workloads and the eADR comparison.
    ///
    /// eADR extends the persistence domain to the whole cache hierarchy, so
    /// security can always run behind the persistence point — the
    /// `DeferredSecure` model. The paper argues Dolos approaches that bound
    /// under the *standard* ADR budget; this table quantifies the remaining
    /// gap.
    pub fn extended(&self) -> Vec<Table> {
        let results = self.run_cells(Self::extended_cells());
        Self::extended_render(&results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        // Debug test runs shrink the simulated scale so `cargo test -q`
        // stays fast; the simulator is deterministic, so `--release` CI
        // checks the identical properties at the larger scale.
        #[cfg(debug_assertions)]
        let (transactions, warmup) = (2, 1);
        #[cfg(not(debug_assertions))]
        let (transactions, warmup) = (8, 2);
        ExperimentConfig {
            transactions,
            warmup,
            seed: 1,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn experiment_ids_round_trip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("bogus"), None);
    }

    #[test]
    fn table3_counts_cells_but_simulates_nothing() {
        let config = tiny();
        let tables = config.table3();
        assert_eq!(tables[0].len(), 3);
        // One cell per design row so the bench throughput is meaningful,
        // zero simulated cycles because the table is analytic.
        assert_eq!(config.metrics(), (3, 0));
    }

    #[test]
    fn recovery_experiment_replays_entries_and_tallies_its_cells() {
        let config = tiny();
        let tables = config.recovery();
        assert_eq!(tables[0].len(), 3);
        let text = tables[0].render();
        assert!(text.contains("44480"));
        // The measured Ma-SU recovery did real simulated work: one cell per
        // design, with the crash-and-recover cycles tallied.
        let (cells, cycles) = config.metrics();
        assert_eq!(cells, 3);
        assert!(cycles > 0, "recovery simulations must tally cycles");
    }

    #[test]
    fn banks_sweep_overlaps_drains_and_tallies_one_cell_per_count() {
        // Use a scale large enough for the drain-bound stream to back up
        // the single-bank WPQ even in debug runs.
        #[cfg(debug_assertions)]
        let (transactions, warmup) = (24, 4);
        #[cfg(not(debug_assertions))]
        let (transactions, warmup) = (120, 16);
        let config = ExperimentConfig {
            transactions,
            warmup,
            seed: 1,
            ..ExperimentConfig::default()
        };
        let tables = config.banks();
        assert_eq!(tables[0].len(), 4, "one row per bank count");
        assert_eq!(config.metrics().0, 4, "one cell per bank count");
        // Row order is the sweep order 1/2/4/8; the banks=4 row's speedup
        // column must clear the tentpole's acceptance floor.
        let text = tables[0].to_csv();
        let row4 = text
            .lines()
            .find(|l| l.starts_with("4,"))
            .expect("banks=4 row");
        let speedup: f64 = row4
            .split(',')
            .nth(2)
            .expect("speedup column")
            .parse()
            .unwrap();
        assert!(speedup >= 1.2, "banks=4 speedup {speedup} below 1.2x");
    }

    #[test]
    fn fig6_produces_mean_row_and_tallies_work() {
        let config = tiny();
        let tables = config.fig6();
        let text = tables[0].render();
        assert!(text.contains("MEAN"));
        let (cells, cycles) = config.metrics();
        assert_eq!(cells, 2 * WorkloadKind::ALL.len() as u64);
        assert!(cycles > 0, "sweep cells must tally simulated cycles");
    }

    #[test]
    fn every_experiment_runs_end_to_end() {
        #[cfg(debug_assertions)]
        let (transactions, warmup) = (1, 0);
        #[cfg(not(debug_assertions))]
        let (transactions, warmup) = (3, 1);
        let config = ExperimentConfig {
            transactions,
            warmup,
            seed: 2,
            ..ExperimentConfig::default()
        };
        for id in ExperimentId::ALL {
            let tables = config.run(id);
            assert!(!tables.is_empty(), "{} produced no tables", id.name());
            for table in tables {
                assert!(!table.is_empty(), "{} produced an empty table", id.name());
                assert!(!table.to_csv().is_empty());
            }
        }
    }

    /// The tentpole determinism criterion on the bench side: every sweep
    /// renders the identical table at any worker count, because results are
    /// merged in cell order, never completion order.
    #[test]
    fn sweeps_render_identically_at_any_job_count() {
        #[cfg(debug_assertions)]
        const JOB_COUNTS: &[usize] = &[3];
        #[cfg(not(debug_assertions))]
        const JOB_COUNTS: &[usize] = &[0, 2, 5];
        let serial = tiny();
        let reference = serial.fig12();
        for &jobs in JOB_COUNTS {
            let parallel = ExperimentConfig { jobs, ..tiny() };
            let tables = parallel.fig12();
            assert_eq!(reference[0].render(), tables[0].render(), "jobs={jobs}");
            assert_eq!(reference[0].to_csv(), tables[0].to_csv(), "jobs={jobs}");
        }
        // A second, structurally different sweep (paired pre/post cells).
        let parallel = ExperimentConfig { jobs: 2, ..tiny() };
        assert_eq!(serial.fig6()[0].render(), parallel.fig6()[0].render());
    }

    /// The flattened bench sweep renders the same tables and tallies the
    /// same cells/sim_cycles as the per-experiment path, at any job count,
    /// with sweeps and direct experiments interleaved in the selected order.
    #[test]
    fn bench_flat_matches_per_experiment_path() {
        let ids = [
            ExperimentId::Fig6,
            ExperimentId::Table3,
            ExperimentId::Table2,
            ExperimentId::Recovery,
        ];
        #[cfg(debug_assertions)]
        const JOB_COUNTS: &[usize] = &[3];
        #[cfg(not(debug_assertions))]
        const JOB_COUNTS: &[usize] = &[1, 2, 5];
        for &jobs in JOB_COUNTS {
            let flat = ExperimentConfig { jobs, ..tiny() };
            let outcomes = flat.bench_flat(&ids);
            assert_eq!(outcomes.len(), ids.len());
            let mut flat_cells = 0;
            let mut flat_cycles = 0;
            for (outcome, &id) in outcomes.iter().zip(&ids) {
                assert_eq!(outcome.id, id);
                // Tables byte-identical to the per-experiment path.
                let reference = tiny().run(id);
                assert_eq!(reference.len(), outcome.tables.len(), "{}", id.name());
                for (a, b) in reference.iter().zip(&outcome.tables) {
                    assert_eq!(a.render(), b.render(), "{} jobs={jobs}", id.name());
                }
                // Sweep outcomes carry one wall sample per cell; direct
                // outcomes none.
                match id {
                    ExperimentId::Table3 | ExperimentId::Recovery => {
                        assert!(outcome.cell_wall_ms.is_empty(), "{}", id.name());
                        assert_eq!(outcome.cells, 3, "{}", id.name());
                    }
                    _ => {
                        assert_eq!(
                            outcome.cell_wall_ms.len() as u64,
                            outcome.cells,
                            "{}",
                            id.name()
                        );
                        assert!(outcome.cells > 0, "{}", id.name());
                        assert!(outcome.sim_cycles > 0, "{}", id.name());
                    }
                }
                flat_cells += outcome.cells;
                flat_cycles += outcome.sim_cycles;
            }
            // The config's global tallies agree with the per-outcome sums.
            assert_eq!(flat.metrics(), (flat_cells, flat_cycles), "jobs={jobs}");
        }
    }

    #[test]
    fn cost_hints_order_drain_bound_cells_first() {
        // The hint must rank the historically slow cells (drain-bound 2048 B
        // banks cells) above ordinary 1024 B sweep cells, and must be a pure
        // function of the cell (same cell, same hint).
        let banks = ExperimentConfig::banks_cells();
        let fig6 = ExperimentConfig::fig6_cells();
        assert!(banks[0].cost_hint() > fig6[0].cost_hint());
        assert_eq!(
            banks[0].cost_hint(),
            ExperimentConfig::banks_cells()[0].cost_hint()
        );
    }

    #[test]
    fn fig12_shape_holds_even_at_small_scale() {
        // The credible band below was verified to hold from 4 transactions
        // up; debug runs use the small end to keep the suite fast.
        #[cfg(debug_assertions)]
        let (transactions, warmup) = (6, 2);
        #[cfg(not(debug_assertions))]
        let (transactions, warmup) = (60, 8);
        let config = ExperimentConfig {
            transactions,
            warmup,
            seed: 3,
            ..ExperimentConfig::default()
        };
        let tables = config.fig12();
        let text = tables[0].render();
        // The AVG row's full-design speedup must be in the credible band.
        let avg_line = text.lines().find(|l| l.contains("AVG")).expect("AVG row");
        let full: f64 = avg_line
            .split_whitespace()
            .nth(1)
            .expect("full column")
            .parse()
            .expect("numeric");
        assert!((1.2..2.2).contains(&full), "full avg speedup {full}");
    }
}
