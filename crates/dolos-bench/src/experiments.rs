//! The experiment implementations, one per table/figure.

use dolos_core::{ControllerConfig, MiSuKind, UpdateScheme};
use dolos_whisper::runner::{run_workload, RunConfig, RunResult};
use dolos_whisper::workloads::WorkloadKind;

use crate::paper;
use crate::report::{f1, f2, f3, Table};

/// Which experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Figure 6 — CPI: security before vs after the WPQ.
    Fig6,
    /// Figure 12 — speedups of the three Mi-SU designs (eager).
    Fig12,
    /// Table 2 — WPQ insertion retries per KWR.
    Table2,
    /// Figure 13 — Partial retries across transaction sizes.
    Fig13,
    /// Figure 14 — Partial speedups across transaction sizes.
    Fig14,
    /// Figure 15 — speedup and retries vs WPQ size.
    Fig15,
    /// Figure 16 — speedups with the lazy (ToC) scheme.
    Fig16,
    /// Table 3 — Mi-SU storage overhead.
    Table3,
    /// §5.5 — Mi-SU recovery-time estimate and measured recovery.
    Recovery,
    /// Ablations beyond the paper: MAC latency, coalescing, counter cache,
    /// Osiris phase.
    Ablations,
    /// Extension workloads (Memcached, Vacation) under Figure-12 conditions,
    /// plus the eADR comparison the introduction alludes to.
    Extended,
}

impl ExperimentId {
    /// All experiments, in paper order.
    pub const ALL: [ExperimentId; 11] = [
        ExperimentId::Fig6,
        ExperimentId::Fig12,
        ExperimentId::Table2,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
        ExperimentId::Fig16,
        ExperimentId::Table3,
        ExperimentId::Recovery,
        ExperimentId::Ablations,
        ExperimentId::Extended,
    ];

    /// CLI name ("fig6", "table2", ...).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Table2 => "table2",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Fig16 => "fig16",
            ExperimentId::Table3 => "table3",
            ExperimentId::Recovery => "recovery",
            ExperimentId::Ablations => "ablations",
            ExperimentId::Extended => "extended",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|e| e.name() == name)
    }
}

/// Shared sweep parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Measured transactions per run.
    pub transactions: usize,
    /// Warm-up transactions per run.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            transactions: 400,
            warmup: 48,
            seed: 0x5EED,
        }
    }
}

impl ExperimentConfig {
    fn run_config(&self, txn_bytes: usize) -> RunConfig {
        RunConfig {
            transactions: self.transactions,
            txn_bytes,
            warmup: self.warmup,
            seed: self.seed,
            ..RunConfig::default()
        }
    }

    /// Dispatches one experiment, returning its rendered tables.
    pub fn run(&self, id: ExperimentId) -> Vec<Table> {
        match id {
            ExperimentId::Fig6 => self.fig6(),
            ExperimentId::Fig12 => self.fig12(),
            ExperimentId::Table2 => self.table2(),
            ExperimentId::Fig13 => self.fig13(),
            ExperimentId::Fig14 => self.fig14(),
            ExperimentId::Fig15 => self.fig15(),
            ExperimentId::Fig16 => self.fig16(),
            ExperimentId::Table3 => self.table3(),
            ExperimentId::Recovery => self.recovery(),
            ExperimentId::Ablations => self.ablations(),
            ExperimentId::Extended => self.extended(),
        }
    }

    /// Figure 6: CPI of Pre-WPQ-Secure vs deferred security (Fig 5-b vs 5-c).
    pub fn fig6(&self) -> Vec<Table> {
        let rc = self.run_config(1024);
        let mut t = Table::new(
            "Figure 6 — CPI: security before vs after WPQ (txn 1024 B, eager)",
            &[
                "workload",
                "pre-WPQ CPI",
                "deferred CPI",
                "slowdown",
                "paper-mean",
            ],
        );
        let mut slowdowns = Vec::new();
        for kind in WorkloadKind::ALL {
            let pre = run_workload(kind, ControllerConfig::baseline(), &rc);
            let post = run_workload(kind, ControllerConfig::deferred(), &rc);
            let slowdown = pre.cycles as f64 / post.cycles as f64;
            slowdowns.push(slowdown);
            t.row(vec![
                kind.name().into(),
                f3(pre.cpi()),
                f3(post.cpi()),
                f2(slowdown),
                f2(paper::FIG6_MEAN_SLOWDOWN),
            ]);
        }
        let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        t.row(vec![
            "MEAN".into(),
            String::new(),
            String::new(),
            f2(mean),
            f2(paper::FIG6_MEAN_SLOWDOWN),
        ]);
        vec![t]
    }

    fn speedup_sweep(
        &self,
        scheme: UpdateScheme,
        title: &str,
        paper_avg: (f64, f64, f64),
    ) -> Vec<Table> {
        let rc = self.run_config(1024);
        let mut t = Table::new(
            title,
            &["workload", "full", "partial", "post", "paper(avg)"],
        );
        let mut sums = [0.0f64; 3];
        for kind in WorkloadKind::ALL {
            let base = run_workload(kind, ControllerConfig::baseline().with_scheme(scheme), &rc);
            let results: Vec<RunResult> = MiSuKind::ALL
                .iter()
                .map(|&m| run_workload(kind, ControllerConfig::dolos(m).with_scheme(scheme), &rc))
                .collect();
            let speedups: Vec<f64> = results.iter().map(|r| r.speedup_vs(&base)).collect();
            for (s, sum) in speedups.iter().zip(sums.iter_mut()) {
                *sum += s;
            }
            t.row(vec![
                kind.name().into(),
                f3(speedups[0]),
                f3(speedups[1]),
                f3(speedups[2]),
                String::new(),
            ]);
        }
        let n = WorkloadKind::ALL.len() as f64;
        t.row(vec![
            "AVG".into(),
            f3(sums[0] / n),
            f3(sums[1] / n),
            f3(sums[2] / n),
            format!("{}/{}/{}", paper_avg.0, paper_avg.1, paper_avg.2),
        ]);
        vec![t]
    }

    /// Figure 12: speedups of the three Mi-SU designs, eager updates.
    pub fn fig12(&self) -> Vec<Table> {
        self.speedup_sweep(
            UpdateScheme::EagerMerkle,
            "Figure 12 — Dolos speedup vs Pre-WPQ-Secure (eager MT, txn 1024 B)",
            paper::FIG12_AVG_SPEEDUP,
        )
    }

    /// Figure 16: speedups with the lazy (ToC/Phoenix) scheme.
    pub fn fig16(&self) -> Vec<Table> {
        self.speedup_sweep(
            UpdateScheme::LazyToc,
            "Figure 16 — Dolos speedup vs Pre-WPQ-Secure (lazy ToC, txn 1024 B)",
            paper::FIG16_AVG_SPEEDUP,
        )
    }

    /// Table 2: WPQ insertion retry events per kilo write requests.
    pub fn table2(&self) -> Vec<Table> {
        let rc = self.run_config(1024);
        let mut t = Table::new(
            "Table 2 — WPQ insertion retries per KWR (txn 1024 B, eager)",
            &[
                "workload",
                "full",
                "partial",
                "post",
                "paper-full",
                "paper-partial",
                "paper-post",
            ],
        );
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let measured: Vec<f64> = MiSuKind::ALL
                .iter()
                .map(|&m| run_workload(kind, ControllerConfig::dolos(m), &rc).retries_per_kwr())
                .collect();
            let (pf, pp, ppo) = paper::TABLE2_RETRIES_PER_KWR[i];
            t.row(vec![
                kind.name().into(),
                f1(measured[0]),
                f1(measured[1]),
                f1(measured[2]),
                f1(pf),
                f1(pp),
                f1(ppo),
            ]);
        }
        vec![t]
    }

    /// Figure 13: Partial-WPQ retries across transaction sizes.
    pub fn fig13(&self) -> Vec<Table> {
        let mut t = Table::new(
            "Figure 13 — Partial-WPQ retries per KWR vs transaction size",
            &["workload", "128B", "256B", "512B", "1024B", "2048B"],
        );
        for kind in WorkloadKind::ALL {
            let mut cells = vec![kind.name().to_owned()];
            for &size in &paper::TXN_SIZES {
                let r = run_workload(
                    kind,
                    ControllerConfig::dolos(MiSuKind::Partial),
                    &self.run_config(size),
                );
                cells.push(f1(r.retries_per_kwr()));
            }
            t.row(cells);
        }
        vec![t]
    }

    /// Figure 14: Partial-WPQ speedups across transaction sizes.
    pub fn fig14(&self) -> Vec<Table> {
        let mut t = Table::new(
            "Figure 14 — Partial-WPQ speedup vs transaction size",
            &["workload", "128B", "256B", "512B", "1024B", "2048B"],
        );
        for kind in WorkloadKind::ALL {
            let mut cells = vec![kind.name().to_owned()];
            for &size in &paper::TXN_SIZES {
                let rc = self.run_config(size);
                let base = run_workload(kind, ControllerConfig::baseline(), &rc);
                let dolos = run_workload(kind, ControllerConfig::dolos(MiSuKind::Partial), &rc);
                cells.push(f3(dolos.speedup_vs(&base)));
            }
            t.row(cells);
        }
        vec![t]
    }

    /// Figure 15: speedup and retries vs WPQ size (Partial, txn 1024 B).
    pub fn fig15(&self) -> Vec<Table> {
        let rc = self.run_config(1024);
        let mut t = Table::new(
            "Figure 15 — Partial-WPQ speedup vs WPQ size (txn 1024 B)",
            &[
                "physical",
                "usable",
                "speedup",
                "retries/KWR",
                "paper-speedup",
                "paper-retries",
            ],
        );
        for (i, physical) in [16usize, 32, 64, 128].into_iter().enumerate() {
            let mut speedups = 0.0;
            let mut retries = 0.0;
            for kind in WorkloadKind::ALL {
                let base = run_workload(
                    kind,
                    ControllerConfig::baseline().with_wpq_entries(physical),
                    &rc,
                );
                let dolos = run_workload(
                    kind,
                    ControllerConfig::dolos(MiSuKind::Partial).with_wpq_entries(physical),
                    &rc,
                );
                speedups += dolos.speedup_vs(&base);
                retries += dolos.retries_per_kwr();
            }
            let n = WorkloadKind::ALL.len() as f64;
            let usable = MiSuKind::Partial.usable_wpq_entries(physical);
            t.row(vec![
                physical.to_string(),
                usable.to_string(),
                f3(speedups / n),
                f1(retries / n),
                f2(paper::FIG15_SPEEDUPS[i].1),
                f1(paper::FIG15_RETRIES[i].1),
            ]);
        }
        vec![t]
    }

    /// Table 3: Mi-SU storage overhead (analytic, from the implementation).
    pub fn table3(&self) -> Vec<Table> {
        let mut t = Table::new(
            "Table 3 — Mi-SU storage overhead",
            &[
                "design",
                "counter",
                "MACs",
                "pads",
                "tag array",
                "paper(ctr/mac/pad)",
            ],
        );
        for (i, kind) in MiSuKind::ALL.into_iter().enumerate() {
            let misu = dolos_core::MinorSecurityUnit::new(kind, 16, 0);
            let s = misu.storage_overhead();
            let (_, pc, pm, ppad, pent) = paper::TABLE3_STORAGE[i];
            t.row(vec![
                format!("{}-WPQ-MiSU", kind),
                format!("{}B", s.persistent_counter_bytes),
                format!("{}B", s.mac_bytes),
                format!("{}B", s.pad_bytes),
                format!("{}B", s.tag_array_bytes),
                format!("{pc}B/{pm}B/{ppad}B*{pent}"),
            ]);
        }
        vec![t]
    }

    /// §5.5: Mi-SU recovery estimates plus a measured functional recovery.
    pub fn recovery(&self) -> Vec<Table> {
        let mut t = Table::new(
            "§5.5 — Mi-SU recovery",
            &[
                "design",
                "estimated cycles",
                "~ms @4GHz",
                "paper (Full)",
                "replayed",
                "masu cycles",
            ],
        );
        for kind in MiSuKind::ALL {
            let misu = dolos_core::MinorSecurityUnit::new(kind, 16, 0);
            let est = misu.estimated_recovery_cycles();
            // Measured functional recovery: run a short workload, crash with
            // a full WPQ, recover, count replayed entries.
            let mut env = dolos_whisper::PmEnv::new(ControllerConfig::dolos(kind));
            let mut w = WorkloadKind::Hashmap.build();
            w.setup(&mut env);
            let mut rng = dolos_sim::rng::XorShift::new(self.seed);
            for _ in 0..24 {
                w.transaction(&mut env, 1024, &mut rng);
            }
            env.crash();
            let report = env.recover().expect("clean recovery");
            t.row(vec![
                format!("{}-WPQ-MiSU", kind),
                est.to_string(),
                format!("{:.4}", est as f64 / 4.0e6),
                paper::RECOVERY_FULL_CYCLES.to_string(),
                report.wpq_entries_replayed.to_string(),
                report.measured_masu_cycles.to_string(),
            ]);
        }
        vec![t]
    }
}

impl ExperimentConfig {
    /// Ablation studies for the design choices DESIGN.md calls out.
    pub fn ablations(&self) -> Vec<Table> {
        let rc = self.run_config(1024);
        let workload = WorkloadKind::Hashmap;
        let mut out = Vec::new();

        // (a) MAC latency sweep: the Mi-SU advantage shrinks as MACs get
        // cheaper (the baseline's eager update scales with the same knob).
        let mut t = Table::new(
            "Ablation A — MAC latency sweep (Hashmap, Partial vs baseline)",
            &["mac cycles", "baseline cycles", "dolos cycles", "speedup"],
        );
        for mac in [40u64, 80, 160, 320] {
            let base = run_workload(
                workload,
                ControllerConfig::baseline().with_mac_latency(mac),
                &rc,
            );
            let dolos = run_workload(
                workload,
                ControllerConfig::dolos(MiSuKind::Partial).with_mac_latency(mac),
                &rc,
            );
            t.row(vec![
                mac.to_string(),
                base.cycles.to_string(),
                dolos.cycles.to_string(),
                f3(dolos.speedup_vs(&base)),
            ]);
        }
        out.push(t);

        // (b) Write coalescing (the §4.5 tag array) on/off.
        let mut t = Table::new(
            "Ablation B — WPQ tag array (coalescing) on/off (Partial)",
            &[
                "workload",
                "coalescing",
                "cycles",
                "retries/KWR",
                "coalesces",
            ],
        );
        for kind in [WorkloadKind::Hashmap, WorkloadKind::NstoreYcsb] {
            for on in [true, false] {
                let mut config = ControllerConfig::dolos(MiSuKind::Partial);
                if !on {
                    config = config.without_coalescing();
                }
                let r = run_workload(kind, config, &rc);
                t.row(vec![
                    kind.name().into(),
                    if on { "on" } else { "off" }.into(),
                    r.cycles.to_string(),
                    f1(r.retries_per_kwr()),
                    r.stats.get_or_zero("wpq.coalesces").to_string(),
                ]);
            }
        }
        out.push(t);

        // (c) Counter-cache size sweep (misses add 600-cycle fetches to the
        // Ma-SU path).
        let mut t = Table::new(
            "Ablation C — counter cache size (Partial, Hashmap)",
            &["cache", "cycles", "hit rate %"],
        );
        for kib in [8usize, 32, 128, 512] {
            let r = run_workload(
                workload,
                ControllerConfig::dolos(MiSuKind::Partial).with_counter_cache_bytes(kib * 1024),
                &rc,
            );
            let hits = r.stats.get_or_zero("ctr_cache.hits");
            let misses = r.stats.get_or_zero("ctr_cache.misses");
            t.row(vec![
                format!("{kib}KiB"),
                r.cycles.to_string(),
                f1(100.0 * hits / (hits + misses).max(1.0)),
            ]);
        }
        out.push(t);

        // (d) Osiris stop-loss phase: larger phase = fewer counter
        // write-backs at run time, more probing at recovery.
        let mut t = Table::new(
            "Ablation D — Osiris stop-loss phase (Partial, Hashmap)",
            &["phase", "cycles", "nvm writes"],
        );
        for phase in [1u64, 2, 4, 16] {
            let r = run_workload(
                workload,
                ControllerConfig::dolos(MiSuKind::Partial).with_osiris_phase(phase),
                &rc,
            );
            t.row(vec![
                phase.to_string(),
                r.cycles.to_string(),
                r.stats.get_or_zero("nvm.writes").to_string(),
            ]);
        }
        out.push(t);
        out
    }
}

impl ExperimentConfig {
    /// Extension workloads and the eADR comparison.
    ///
    /// eADR extends the persistence domain to the whole cache hierarchy, so
    /// security can always run behind the persistence point — the
    /// `DeferredSecure` model. The paper argues Dolos approaches that bound
    /// under the *standard* ADR budget; this table quantifies the remaining
    /// gap.
    pub fn extended(&self) -> Vec<Table> {
        let rc = self.run_config(1024);
        let mut t = Table::new(
            "Extension — Memcached & Vacation, plus the eADR (deferred) bound",
            &["workload", "dolos-partial", "eadr-bound", "gap %"],
        );
        for kind in [
            WorkloadKind::Memcached,
            WorkloadKind::Vacation,
            WorkloadKind::Hashmap,
        ] {
            let base = run_workload(kind, ControllerConfig::baseline(), &rc);
            let dolos = run_workload(kind, ControllerConfig::dolos(MiSuKind::Partial), &rc);
            let eadr = run_workload(kind, ControllerConfig::deferred(), &rc);
            let s_dolos = dolos.speedup_vs(&base);
            let s_eadr = eadr.speedup_vs(&base);
            t.row(vec![
                kind.name().into(),
                f3(s_dolos),
                f3(s_eadr),
                f1(100.0 * (s_eadr - s_dolos) / s_eadr),
            ]);
        }
        vec![t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            transactions: 8,
            warmup: 2,
            seed: 1,
        }
    }

    #[test]
    fn experiment_ids_round_trip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("bogus"), None);
    }

    #[test]
    fn table3_needs_no_simulation() {
        let tables = tiny().table3();
        assert_eq!(tables[0].len(), 3);
    }

    #[test]
    fn recovery_experiment_replays_entries() {
        let tables = tiny().recovery();
        assert_eq!(tables[0].len(), 3);
        let text = tables[0].render();
        assert!(text.contains("44480"));
        // The measured Ma-SU recovery did real work.
        assert!(tables[0].len() == 3);
    }

    #[test]
    fn fig6_produces_mean_row() {
        let tables = tiny().fig6();
        let text = tables[0].render();
        assert!(text.contains("MEAN"));
    }

    #[test]
    fn every_experiment_runs_end_to_end() {
        let config = ExperimentConfig {
            transactions: 3,
            warmup: 1,
            seed: 2,
        };
        for id in ExperimentId::ALL {
            let tables = config.run(id);
            assert!(!tables.is_empty(), "{} produced no tables", id.name());
            for table in tables {
                assert!(!table.is_empty(), "{} produced an empty table", id.name());
                assert!(!table.to_csv().is_empty());
            }
        }
    }

    #[test]
    fn fig12_shape_holds_even_at_small_scale() {
        let config = ExperimentConfig {
            transactions: 60,
            warmup: 8,
            seed: 3,
        };
        let tables = config.fig12();
        let text = tables[0].render();
        // The AVG row's full-design speedup must be in the credible band.
        let avg_line = text.lines().find(|l| l.contains("AVG")).expect("AVG row");
        let full: f64 = avg_line
            .split_whitespace()
            .nth(1)
            .expect("full column")
            .parse()
            .expect("numeric");
        assert!((1.2..2.2).contains(&full), "full avg speedup {full}");
    }
}
