//! Benchmarks of full workload transactions (simulator throughput per
//! WHISPER benchmark), plus one end-to-end figure-shaped comparison.

use criterion::{criterion_group, criterion_main, Criterion};

use dolos_core::{ControllerConfig, MiSuKind};
use dolos_sim::rng::XorShift;
use dolos_whisper::runner::{run_workload, RunConfig};
use dolos_whisper::workloads::WorkloadKind;
use dolos_whisper::PmEnv;

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("transaction");
    for kind in WorkloadKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_with_setup(
                || {
                    let mut env = PmEnv::new(ControllerConfig::dolos(MiSuKind::Partial));
                    let mut w = kind.build();
                    w.setup(&mut env);
                    (env, w, XorShift::new(1))
                },
                |(mut env, mut w, mut rng)| {
                    for _ in 0..8 {
                        w.transaction(&mut env, 1024, &mut rng);
                    }
                    env.now()
                },
            )
        });
    }
    group.finish();
}

fn bench_fig12_shape(c: &mut Criterion) {
    // One guarded end-to-end run per iteration: regenerates the Figure 12
    // hashmap cell and asserts the headline claim (Dolos wins) every time.
    let rc = RunConfig {
        transactions: 32,
        warmup: 8,
        ..RunConfig::default()
    };
    c.bench_function("fig12_hashmap_cell", |b| {
        b.iter(|| {
            let base = run_workload(WorkloadKind::Hashmap, ControllerConfig::baseline(), &rc);
            let dolos = run_workload(
                WorkloadKind::Hashmap,
                ControllerConfig::dolos(MiSuKind::Partial),
                &rc,
            );
            assert!(dolos.speedup_vs(&base) > 1.0, "Dolos must win");
            dolos.cycles
        })
    });
}

fn bench_cpu_cache(c: &mut Criterion) {
    use dolos_whisper::cpu_cache::CpuCacheHierarchy;
    let mut caches = CpuCacheHierarchy::new();
    let mut i = 0u64;
    c.bench_function("cpu_cache_access", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            caches.access(i * 64, i.is_multiple_of(3))
        })
    });
}

fn bench_trace_replay(c: &mut Criterion) {
    // Record a small trace once; measure replay throughput.
    let mut config = ControllerConfig::dolos(MiSuKind::Partial);
    config.region_bytes = 64 << 20;
    let mut env = PmEnv::new(config);
    env.start_recording();
    let mut w = WorkloadKind::Hashmap.build();
    w.setup(&mut env);
    let mut rng = XorShift::new(5);
    for _ in 0..20 {
        w.transaction(&mut env, 512, &mut rng);
    }
    let trace = env.take_trace().expect("recording");
    c.bench_function("trace_replay_20txn", |b| {
        b.iter(|| trace.replay(ControllerConfig::dolos(MiSuKind::Partial)))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_transactions, bench_fig12_shape, bench_cpu_cache, bench_trace_replay
}
criterion_main!(benches);
