//! Benchmarks of full workload transactions (simulator throughput per
//! WHISPER benchmark), plus one end-to-end figure-shaped comparison.

use dolos_bench::microbench::Bench;

use dolos_core::{ControllerConfig, MiSuKind};
use dolos_sim::rng::XorShift;
use dolos_whisper::runner::{run_workload, RunConfig};
use dolos_whisper::workloads::WorkloadKind;
use dolos_whisper::PmEnv;

fn main() {
    let mut b = Bench::from_args("workloads");

    for kind in WorkloadKind::ALL {
        b.run(&format!("transaction/{}", kind.name()), || {
            let mut env = PmEnv::new(ControllerConfig::dolos(MiSuKind::Partial));
            let mut w = kind.build();
            w.setup(&mut env);
            let mut rng = XorShift::new(1);
            for _ in 0..8 {
                w.transaction(&mut env, 1024, &mut rng);
            }
            env.now()
        });
    }

    // One guarded end-to-end run per iteration: regenerates the Figure 12
    // hashmap cell and asserts the headline claim (Dolos wins) every time.
    let rc = RunConfig {
        transactions: 32,
        warmup: 8,
        ..RunConfig::default()
    };
    b.run("fig12_hashmap_cell", || {
        let base = run_workload(WorkloadKind::Hashmap, ControllerConfig::baseline(), &rc);
        let dolos = run_workload(
            WorkloadKind::Hashmap,
            ControllerConfig::dolos(MiSuKind::Partial),
            &rc,
        );
        assert!(dolos.speedup_vs(&base) > 1.0, "Dolos must win");
        dolos.cycles
    });

    {
        use dolos_whisper::cpu_cache::CpuCacheHierarchy;
        let mut caches = CpuCacheHierarchy::new();
        let mut i = 0u64;
        b.run("cpu_cache_access", || {
            i = (i + 1) % 4096;
            caches.access(i * 64, i.is_multiple_of(3))
        });
    }

    // Record a small trace once; measure replay throughput.
    let mut config = ControllerConfig::dolos(MiSuKind::Partial);
    config.region_bytes = 64 << 20;
    let mut env = PmEnv::new(config);
    env.start_recording();
    let mut w = WorkloadKind::Hashmap.build();
    w.setup(&mut env);
    let mut rng = XorShift::new(5);
    for _ in 0..20 {
        w.transaction(&mut env, 512, &mut rng);
    }
    let trace = env.take_trace().expect("recording");
    b.run("trace_replay_20txn", || {
        trace.replay(ControllerConfig::dolos(MiSuKind::Partial))
    });
}
