//! Microbenchmarks of the security-metadata substrate.

use dolos_bench::microbench::{bb, Bench};

use dolos_crypto::mac::MacEngine;
use dolos_secmem::bmt::BonsaiMerkleTree;
use dolos_secmem::cache::SetAssocCache;
use dolos_secmem::counters::CounterBlock;
use dolos_secmem::ecc::{ecc64, probe_counter};
use dolos_secmem::toc::TreeOfCounters;

fn main() {
    let mut b = Bench::from_args("secmem");

    // 4096 pages = a 16 MiB protected region (height 4).
    let engine = MacEngine::new([1; 16]);
    let mut tree = BonsaiMerkleTree::new(4096, &engine);
    let mut i = 0u64;
    b.run("bmt_update_leaf_16MiB", || {
        i = (i + 1) % 4096;
        tree.update_leaf(&engine, i, bb(&[i as u8; 64]))
    });
    tree.update_leaf(&engine, 7, &[9; 64]);
    b.run("bmt_verify_leaf_16MiB", || {
        tree.verify_leaf(&engine, 7, bb(&[9; 64]))
    });

    let toc_engine = MacEngine::new([2; 16]);
    let mut toc = TreeOfCounters::new(4096, &toc_engine);
    let mut j = 0u64;
    b.run("toc_update_leaf_16MiB", || {
        j = (j + 1) % 64; // keep the shadow region bounded
        toc.update_leaf(&toc_engine, j, bb(&[j as u8; 64]));
    });

    let mut block = CounterBlock::new();
    b.run("counter_block_increment", || block.increment(bb(13)));
    let line = block.to_line();
    b.run("counter_block_roundtrip", || {
        CounterBlock::from_line(bb(&line)).to_line()
    });

    let mut cache = SetAssocCache::with_capacity_bytes(128 * 1024, 4);
    for k in 0..2048u64 {
        cache.fill(k, [k as u8; 64], false);
    }
    let mut k = 0u64;
    b.run("counter_cache_probe", || {
        k = (k + 1) % 4096;
        cache.probe(bb(k))
    });

    use dolos_crypto::aes::Aes128;
    use dolos_crypto::ctr::{generate_pad, xor_in_place, IvBuilder};
    let key = Aes128::new(&[3; 16]);
    let plaintext = [0x77u8; 64];
    let iv = IvBuilder::new().address(0x40).counter(10).build();
    let mut ct = plaintext;
    xor_in_place(&mut ct, &generate_pad(&key, &iv, 64));
    let ecc = ecc64(&plaintext);
    b.run("osiris_probe_window4", || {
        probe_counter(bb(&key), 0x40, bb(&ct), ecc, 7, 4)
    });
}
