//! Microbenchmarks of the security-metadata substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dolos_crypto::mac::MacEngine;
use dolos_secmem::bmt::BonsaiMerkleTree;
use dolos_secmem::cache::SetAssocCache;
use dolos_secmem::counters::CounterBlock;
use dolos_secmem::ecc::{ecc64, probe_counter};
use dolos_secmem::toc::TreeOfCounters;

fn bench_bmt(c: &mut Criterion) {
    // 4096 pages = a 16 MiB protected region (height 4).
    let mut tree = BonsaiMerkleTree::new(4096, MacEngine::new([1; 16]));
    let mut i = 0u64;
    c.bench_function("bmt_update_leaf_16MiB", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            tree.update_leaf(i, black_box(&[i as u8; 64]))
        })
    });
    tree.update_leaf(7, &[9; 64]);
    c.bench_function("bmt_verify_leaf_16MiB", |b| {
        b.iter(|| tree.verify_leaf(7, black_box(&[9; 64])))
    });
}

fn bench_toc(c: &mut Criterion) {
    let mut toc = TreeOfCounters::new(4096, MacEngine::new([2; 16]));
    let mut i = 0u64;
    c.bench_function("toc_update_leaf_16MiB", |b| {
        b.iter(|| {
            i = (i + 1) % 64; // keep the shadow region bounded
            toc.update_leaf(i, black_box(&[i as u8; 64]));
        })
    });
}

fn bench_counters(c: &mut Criterion) {
    let mut block = CounterBlock::new();
    c.bench_function("counter_block_increment", |b| {
        b.iter(|| block.increment(black_box(13)))
    });
    let line = block.to_line();
    c.bench_function("counter_block_roundtrip", |b| {
        b.iter(|| CounterBlock::from_line(black_box(&line)).to_line())
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut cache = SetAssocCache::with_capacity_bytes(128 * 1024, 4);
    for k in 0..2048u64 {
        cache.fill(k, [k as u8; 64], false);
    }
    let mut k = 0u64;
    c.bench_function("counter_cache_probe", |b| {
        b.iter(|| {
            k = (k + 1) % 4096;
            cache.probe(black_box(k))
        })
    });
}

fn bench_osiris(c: &mut Criterion) {
    use dolos_crypto::aes::Aes128;
    use dolos_crypto::ctr::{generate_pad, xor_in_place, IvBuilder};
    let key = Aes128::new(&[3; 16]);
    let plaintext = [0x77u8; 64];
    let iv = IvBuilder::new().address(0x40).counter(10).build();
    let mut ct = plaintext;
    xor_in_place(&mut ct, &generate_pad(&key, &iv, 64));
    let ecc = ecc64(&plaintext);
    c.bench_function("osiris_probe_window4", |b| {
        b.iter(|| probe_counter(black_box(&key), 0x40, black_box(&ct), ecc, 7, 4))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bmt, bench_toc, bench_counters, bench_cache, bench_osiris
}
criterion_main!(benches);
