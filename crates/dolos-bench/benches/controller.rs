//! Benchmarks of the secure memory controller: simulation throughput of the
//! persist path under each architecture, plus crash/recovery.

use dolos_bench::microbench::{bb, Bench};

use dolos_core::{ControllerConfig, MiSuKind, SecureMemorySystem};
use dolos_sim::Cycle;

fn persist_throughput(b: &mut Bench, name: &str, config: ControllerConfig) {
    b.run(name, || {
        let mut sys = SecureMemorySystem::new(config.clone());
        let mut t = Cycle::ZERO;
        for i in 0..64u64 {
            t = sys.persist_write(t, (i % 256) * 64, bb(&[i as u8; 64]));
        }
        sys.quiesce(t)
    });
}

fn main() {
    let mut b = Bench::from_args("controller");

    persist_throughput(&mut b, "persist64_ideal", ControllerConfig::ideal());
    persist_throughput(&mut b, "persist64_baseline", ControllerConfig::baseline());
    persist_throughput(
        &mut b,
        "persist64_dolos_full",
        ControllerConfig::dolos(MiSuKind::Full),
    );
    persist_throughput(
        &mut b,
        "persist64_dolos_partial",
        ControllerConfig::dolos(MiSuKind::Partial),
    );
    persist_throughput(
        &mut b,
        "persist64_dolos_post",
        ControllerConfig::dolos(MiSuKind::Post),
    );

    let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
    let mut t = Cycle::ZERO;
    for i in 0..64u64 {
        t = sys.persist_write(t, i * 64, &[i as u8; 64]);
    }
    let quiet = sys.quiesce(t);
    b.run("read_after_drain", || sys.read(quiet, bb(0x40)));

    b.run("crash_and_recover_partial", || {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        let mut t = Cycle::ZERO;
        for i in 0..32u64 {
            t = sys.persist_write(t, i * 64, &[i as u8; 64]);
        }
        sys.crash(t);
        sys.recover().expect("clean recovery")
    });
}
