//! Benchmarks of the secure memory controller: simulation throughput of the
//! persist path under each architecture, plus crash/recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dolos_core::{ControllerConfig, MiSuKind, SecureMemorySystem};
use dolos_sim::Cycle;

fn persist_throughput(c: &mut Criterion, name: &str, config: ControllerConfig) {
    c.bench_function(name, |b| {
        b.iter_with_setup(
            || SecureMemorySystem::new(config.clone()),
            |mut sys| {
                let mut t = Cycle::ZERO;
                for i in 0..64u64 {
                    t = sys.persist_write(t, (i % 256) * 64, black_box(&[i as u8; 64]));
                }
                sys.quiesce(t)
            },
        )
    });
}

fn bench_persist(c: &mut Criterion) {
    persist_throughput(c, "persist64_ideal", ControllerConfig::ideal());
    persist_throughput(c, "persist64_baseline", ControllerConfig::baseline());
    persist_throughput(
        c,
        "persist64_dolos_full",
        ControllerConfig::dolos(MiSuKind::Full),
    );
    persist_throughput(
        c,
        "persist64_dolos_partial",
        ControllerConfig::dolos(MiSuKind::Partial),
    );
    persist_throughput(
        c,
        "persist64_dolos_post",
        ControllerConfig::dolos(MiSuKind::Post),
    );
}

fn bench_reads(c: &mut Criterion) {
    let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
    let mut t = Cycle::ZERO;
    for i in 0..64u64 {
        t = sys.persist_write(t, i * 64, &[i as u8; 64]);
    }
    let quiet = sys.quiesce(t);
    c.bench_function("read_after_drain", |b| {
        b.iter(|| sys.read(quiet, black_box(0x40)))
    });
}

fn bench_crash_recover(c: &mut Criterion) {
    c.bench_function("crash_and_recover_partial", |b| {
        b.iter_with_setup(
            || {
                let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
                let mut t = Cycle::ZERO;
                for i in 0..32u64 {
                    t = sys.persist_write(t, i * 64, &[i as u8; 64]);
                }
                (sys, t)
            },
            |(mut sys, t)| {
                sys.crash(t);
                sys.recover().expect("clean recovery")
            },
        )
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_persist, bench_reads, bench_crash_recover
}
criterion_main!(benches);
