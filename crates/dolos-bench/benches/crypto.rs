//! Microbenchmarks of the functional crypto substrate (host wall-clock, not
//! simulated cycles — the simulated costs come from Table 1's latency model).

use dolos_bench::microbench::{bb, Bench};

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::{generate_pad, pad_line, xor_in_place, IvBuilder};
use dolos_crypto::mac::MacEngine;
use dolos_crypto::padcache::PadCache;
use dolos_secmem::bmt::BonsaiMerkleTree;

fn main() {
    let mut b = Bench::from_args("crypto");

    let key = Aes128::new(&[7; 16]);
    let block = [0x5A; 16];
    // `aes_fast` vs `aes_reference`: the T-table hot path against the
    // byte-oriented specification it is lockstep-pinned to — the
    // before/after evidence for the crypto hot-path overhaul.
    b.run("aes128_encrypt_block", || key.encrypt_block(bb(&block)));
    b.run("aes_fast_encrypt_block", || key.encrypt_block(bb(&block)));
    b.run("aes_reference_encrypt_block", || {
        key.encrypt_block_reference(bb(&block))
    });

    let iv = IvBuilder::new().address(0x4000).counter(17).build();
    b.run("ctr_pad_64B", || generate_pad(bb(&key), bb(&iv), 64));
    b.run("aes_fast_pad_line_64B", || pad_line(bb(&key), bb(&iv)));

    let pad = generate_pad(&key, &iv, 64);
    b.run("line_xor_encrypt", || {
        let mut line = [0xABu8; 64];
        xor_in_place(&mut line, bb(&pad));
        line
    });

    let mac = MacEngine::new([9; 16]);
    let line = [0x11u8; 64];
    b.run("cbc_mac_64B", || mac.tag(bb(&line)));
    b.run("cbc_mac_parts", || {
        mac.tag_parts(bb(&[&line[..32], &line[32..], &line[..8]]))
    });
    b.run("aes_fast_cbc_mac_streaming", || {
        let mut s = mac.streamer(3);
        s.part(bb(&line[..32]));
        s.part(bb(&line[32..]));
        s.part(bb(&line[..8]));
        s.finish()
    });

    // Parent-MAC memoization (DESIGN.md §17). A leaf update only marks its
    // parent chain dirty; `root` after an update materializes that chain
    // (the miss path), while `root` on a clean tree returns the memoized
    // register (the hit path). The gap between these two rows is the host
    // work the deferral removes from every write that is never observed.
    let mut tree = BonsaiMerkleTree::new(256, &mac);
    b.run("mac_cache_parent_miss", || {
        tree.update_leaf(bb(&mac), 5, bb(&line));
        tree.root(&mac)
    });
    tree.root(&mac);
    b.run("mac_cache_parent_hit", || tree.root(bb(&mac)));

    // Counter-block pad cache on the Ma-SU read path: a repeated
    // (address, counter) pair returns the cached pad (hit); a fresh counter
    // re-runs the AES pad (miss + refill).
    let mut pads = PadCache::new(256);
    let mut counter = 0u64;
    b.run("mac_cache_pad_miss", || {
        counter += 1;
        pads.pad(bb(&key), 0x4000, counter)
    });
    pads.pad(&key, 0x4000, 7);
    b.run("mac_cache_pad_hit", || pads.pad(bb(&key), 0x4000, 7));
}
