//! Microbenchmarks of the functional crypto substrate (host wall-clock, not
//! simulated cycles — the simulated costs come from Table 1's latency model).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::{generate_pad, xor_in_place, IvBuilder};
use dolos_crypto::mac::MacEngine;

fn bench_aes_block(c: &mut Criterion) {
    let key = Aes128::new(&[7; 16]);
    let block = [0x5A; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| key.encrypt_block(black_box(&block)))
    });
}

fn bench_pad_generation(c: &mut Criterion) {
    let key = Aes128::new(&[7; 16]);
    let iv = IvBuilder::new().address(0x4000).counter(17).build();
    c.bench_function("ctr_pad_64B", |b| {
        b.iter(|| generate_pad(black_box(&key), black_box(&iv), 64))
    });
}

fn bench_line_encrypt(c: &mut Criterion) {
    let key = Aes128::new(&[7; 16]);
    let iv = IvBuilder::new().address(0x4000).counter(17).build();
    let pad = generate_pad(&key, &iv, 64);
    c.bench_function("line_xor_encrypt", |b| {
        b.iter(|| {
            let mut line = [0xABu8; 64];
            xor_in_place(&mut line, black_box(&pad));
            line
        })
    });
}

fn bench_mac(c: &mut Criterion) {
    let mac = MacEngine::new([9; 16]);
    let line = [0x11u8; 64];
    c.bench_function("cbc_mac_64B", |b| b.iter(|| mac.tag(black_box(&line))));
    c.bench_function("cbc_mac_parts", |b| {
        b.iter(|| mac.tag_parts(black_box(&[&line[..32], &line[32..], &line[..8]])))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_aes_block, bench_pad_generation, bench_line_encrypt, bench_mac
}
criterion_main!(benches);
