//! Microbenchmarks of the functional crypto substrate (host wall-clock, not
//! simulated cycles — the simulated costs come from Table 1's latency model).

use dolos_bench::microbench::{bb, Bench};

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::{generate_pad, pad_line, xor_in_place, IvBuilder};
use dolos_crypto::mac::MacEngine;

fn main() {
    let mut b = Bench::from_args("crypto");

    let key = Aes128::new(&[7; 16]);
    let block = [0x5A; 16];
    // `aes_fast` vs `aes_reference`: the T-table hot path against the
    // byte-oriented specification it is lockstep-pinned to — the
    // before/after evidence for the crypto hot-path overhaul.
    b.run("aes128_encrypt_block", || key.encrypt_block(bb(&block)));
    b.run("aes_fast_encrypt_block", || key.encrypt_block(bb(&block)));
    b.run("aes_reference_encrypt_block", || {
        key.encrypt_block_reference(bb(&block))
    });

    let iv = IvBuilder::new().address(0x4000).counter(17).build();
    b.run("ctr_pad_64B", || generate_pad(bb(&key), bb(&iv), 64));
    b.run("aes_fast_pad_line_64B", || pad_line(bb(&key), bb(&iv)));

    let pad = generate_pad(&key, &iv, 64);
    b.run("line_xor_encrypt", || {
        let mut line = [0xABu8; 64];
        xor_in_place(&mut line, bb(&pad));
        line
    });

    let mac = MacEngine::new([9; 16]);
    let line = [0x11u8; 64];
    b.run("cbc_mac_64B", || mac.tag(bb(&line)));
    b.run("cbc_mac_parts", || {
        mac.tag_parts(bb(&[&line[..32], &line[32..], &line[..8]]))
    });
    b.run("aes_fast_cbc_mac_streaming", || {
        let mut s = mac.streamer(3);
        s.part(bb(&line[..32]));
        s.part(bb(&line[32..]));
        s.part(bb(&line[..8]));
        s.finish()
    });
}
