//! Property tests pinning `flat::FlatMap` / `flat::FlatSet` against the
//! standard ordered collections.
//!
//! The tentpole migrations of PR 3 make `FlatMap` load-bearing across
//! `dolos-secmem`, `dolos-nvm`, and `dolos-whisper` (it replaces every
//! hasher-seeded `HashMap` in the deterministic crates), so its semantics
//! are pinned here operation-for-operation against `BTreeMap`/`BTreeSet`
//! under seeded op sequences from the in-repo deterministic RNG.

use std::collections::{BTreeMap, BTreeSet};

use dolos_sim::flat::{FlatMap, FlatSet};
use dolos_sim::rng::XorShift;

/// Narrow key space so the op mix hits overwrite/remove-present/get-present
/// paths often, not just the empty-map fast paths.
const KEY_SPACE: u64 = 64;
const OPS: usize = 4000;

#[test]
fn flat_map_matches_btree_map_under_random_ops() {
    for seed in [1u64, 7, 42, 0xDEAD_BEEF, u64::MAX - 3] {
        let mut rng = XorShift::new(seed);
        let mut flat: FlatMap<u64> = FlatMap::new();
        let mut btree: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..OPS {
            let key = rng.next_below(KEY_SPACE);
            match rng.next_below(6) {
                // insert
                0 | 1 => {
                    let value = rng.next_u64();
                    assert_eq!(
                        flat.insert(key, value),
                        btree.insert(key, value),
                        "seed {seed} step {step}: insert({key}) return value diverged"
                    );
                }
                // remove
                2 => {
                    assert_eq!(
                        flat.remove(key),
                        btree.remove(&key),
                        "seed {seed} step {step}: remove({key}) diverged"
                    );
                }
                // get / contains
                3 => {
                    assert_eq!(flat.get(key), btree.get(&key));
                    assert_eq!(flat.contains_key(key), btree.contains_key(&key));
                }
                // entry-style mutate-or-insert
                4 => {
                    let bump = rng.next_below(100);
                    *flat.get_mut_or_insert(key, 0) += bump;
                    *btree.entry(key).or_insert(0) += bump;
                }
                // get_mut on a possibly-absent key
                _ => {
                    let next = rng.next_u64();
                    match (flat.get_mut(key), btree.get_mut(&key)) {
                        (Some(f), Some(b)) => {
                            *f = next;
                            *b = next;
                        }
                        (None, None) => {}
                        (f, b) => panic!(
                            "seed {seed} step {step}: get_mut({key}) presence diverged \
                             (flat {:?} vs btree {:?})",
                            f.map(|v| *v),
                            b.map(|v| *v)
                        ),
                    }
                }
            }
            assert_eq!(flat.len(), btree.len());
            assert_eq!(flat.is_empty(), btree.is_empty());
        }
        // Full-state comparison: same entries, same (ascending) order.
        let flat_entries: Vec<(u64, u64)> = flat.iter().map(|(k, v)| (k, *v)).collect();
        let btree_entries: Vec<(u64, u64)> = btree.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(
            flat_entries, btree_entries,
            "seed {seed}: final state diverged"
        );
        // And iteration really is sorted.
        let keys: Vec<u64> = flat.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}

#[test]
fn flat_set_matches_btree_set_under_random_ops() {
    for seed in [3u64, 11, 0xC0FFEE] {
        let mut rng = XorShift::new(seed);
        let mut flat = FlatSet::new();
        let mut btree: BTreeSet<u64> = BTreeSet::new();
        for step in 0..OPS {
            let key = rng.next_below(KEY_SPACE);
            match rng.next_below(4) {
                0 | 1 => {
                    assert_eq!(
                        flat.insert(key),
                        btree.insert(key),
                        "seed {seed} step {step}: insert({key}) diverged"
                    );
                }
                2 => {
                    assert_eq!(
                        flat.remove(key),
                        btree.remove(&key),
                        "seed {seed} step {step}: remove({key}) diverged"
                    );
                }
                _ => {
                    assert_eq!(flat.contains(key), btree.contains(&key));
                }
            }
            assert_eq!(flat.len(), btree.len());
        }
        let flat_keys: Vec<u64> = flat.iter().collect();
        let btree_keys: Vec<u64> = btree.iter().copied().collect();
        assert_eq!(flat_keys, btree_keys, "seed {seed}: final state diverged");
    }
}

/// The determinism property the whole migration exists for: two maps built
/// from the same operations in *different orders* end up identical, entry
/// for entry, so anything iterating them (recovery replay, stats export,
/// campaign JSON) is a pure function of the final contents.
#[test]
fn iteration_is_a_pure_function_of_contents() {
    let mut forward: FlatMap<u64> = FlatMap::new();
    let mut shuffled: FlatMap<u64> = FlatMap::new();
    let keys: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    for &k in &keys {
        forward.insert(k, k ^ 1);
    }
    let mut rng = XorShift::new(99);
    let mut order = keys.clone();
    // Fisher-Yates with the deterministic RNG.
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    for &k in &order {
        shuffled.insert(k, k ^ 1);
    }
    assert_eq!(forward, shuffled);
    assert_eq!(
        forward.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>(),
        shuffled.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>()
    );
}
