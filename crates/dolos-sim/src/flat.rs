//! A flat, sorted map keyed by `u64`.
//!
//! Several hot per-line metadata tables in the Ma-SU (ECC/MAC sidecar,
//! pending counter-update tallies) were `HashMap<u64, u64>`s. They have two
//! problems there: hashing dominates the lookup cost for small integer keys,
//! and iteration order depends on the process-random hasher state, which is
//! one silent hole in the "every result is a pure function of the inputs"
//! guarantee. [`FlatMap`] is a sorted `Vec<(u64, V)>` with binary-search
//! lookups: cache-friendly probes and iteration in ascending key order,
//! always.
//!
//! Inserting a *new* key is `O(n)` (a memmove); the workloads here touch a
//! working set that grows once and is then hit repeatedly, so lookups and
//! updates-in-place dominate.
//!
//! # Examples
//!
//! ```
//! use dolos_sim::flat::FlatMap;
//!
//! let mut m: FlatMap<u64> = FlatMap::new();
//! m.insert(7, 70);
//! m.insert(3, 30);
//! assert_eq!(m.get(7), Some(&70));
//! let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
//! assert_eq!(keys, vec![3, 7]); // always sorted
//! ```

/// A map from `u64` keys to `V`, stored as a sorted vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatMap<V> {
    entries: Vec<(u64, V)>,
}

impl<V> FlatMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        FlatMap {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: u64) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k)
    }

    /// Returns a reference to the value stored under `key`, if any.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Returns a mutable reference to the value stored under `key`, if any.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.position(key).is_ok()
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was already present.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Returns a mutable reference to the value under `key`, inserting
    /// `default` first if the key is absent (the `entry().or_insert()`
    /// pattern).
    pub fn get_mut_or_insert(&mut self, key: u64, default: V) -> &mut V {
        let i = match self.position(key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, default));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates entries whose keys fall in `start..end`, in ascending key
    /// order: one binary search for the lower bound, then a sequential
    /// walk. Callers reading a run of consecutive keys (e.g. the BMT's
    /// 8-child node groups) use this instead of probing per key.
    pub fn range(&self, start: u64, end: u64) -> impl Iterator<Item = (u64, &V)> {
        let lo = self.entries.partition_point(|&(k, _)| k < start);
        self.entries[lo..]
            .iter()
            .take_while(move |&&(k, _)| k < end)
            .map(|(k, v)| (*k, v))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A set of `u64` keys, stored as a sorted vector.
///
/// The set-shaped sibling of [`FlatMap`], for dirty-line sets and uniqueness
/// tracking whose iteration order must be reproducible. Same trade-off:
/// `O(log n)` membership probes, `O(n)` insertion of a *new* element, and
/// iteration in ascending order, always.
///
/// # Examples
///
/// ```
/// use dolos_sim::flat::FlatSet;
///
/// let mut s = FlatSet::new();
/// s.insert(9);
/// s.insert(3);
/// assert!(s.contains(9));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 9]); // always sorted
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatSet {
    keys: Vec<u64>,
}

impl FlatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FlatSet { keys: Vec::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// True when `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// Inserts `key`, returning whether it was newly added.
    pub fn insert(&mut self, key: u64) -> bool {
        match self.keys.binary_search(&key) {
            Ok(_) => false,
            Err(i) => {
                self.keys.insert(i, key);
                true
            }
        }
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.keys.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.iter().copied()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: FlatMap<u64> = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(10, 1), None);
        assert_eq!(m.insert(5, 2), None);
        assert_eq!(m.insert(20, 3), None);
        assert_eq!(m.insert(10, 9), Some(1)); // overwrite returns old value
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(5), Some(&2));
        assert_eq!(m.get(10), Some(&9));
        assert_eq!(m.get(11), None);
        assert!(m.contains_key(20));
        assert_eq!(m.remove(5), Some(2));
        assert_eq!(m.remove(5), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_sorted_regardless_of_insert_order() {
        let mut m: FlatMap<u32> = FlatMap::new();
        for k in [9u64, 1, 7, 3, 8, 2] {
            m.insert(k, k as u32);
        }
        let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn range_walks_exactly_the_requested_keys() {
        let mut m: FlatMap<u32> = FlatMap::new();
        for k in [0u64, 3, 7, 8, 9, 15, 16, 40] {
            m.insert(k, k as u32);
        }
        let collect = |lo: u64, hi: u64| m.range(lo, hi).map(|(k, _)| k).collect::<Vec<_>>();
        assert_eq!(collect(8, 16), vec![8, 9, 15]); // half-open
        assert_eq!(collect(0, 4), vec![0, 3]);
        assert_eq!(collect(10, 15), vec![]); // gap
        assert_eq!(collect(41, u64::MAX), vec![]); // past the end

        // Agreement with per-key probes over every 8-aligned group.
        for first in (0..48).step_by(8) {
            let via_range: Vec<_> = m.range(first, first + 8).map(|(k, v)| (k, *v)).collect();
            let via_get: Vec<_> = (first..first + 8)
                .filter_map(|k| m.get(k).map(|v| (k, *v)))
                .collect();
            assert_eq!(via_range, via_get, "group at {first}");
        }
    }

    #[test]
    fn get_mut_or_insert_matches_entry_or_insert() {
        let mut m: FlatMap<u64> = FlatMap::new();
        *m.get_mut_or_insert(4, 0) += 1;
        *m.get_mut_or_insert(4, 0) += 1;
        *m.get_mut_or_insert(2, 10) += 1;
        assert_eq!(m.get(4), Some(&2));
        assert_eq!(m.get(2), Some(&11));
    }

    #[test]
    fn set_membership_round_trip() {
        let mut s = FlatSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5)); // duplicate
        assert!(s.insert(1));
        assert!(s.contains(5));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 2);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn set_iterates_sorted() {
        let mut s = FlatSet::new();
        for k in [8u64, 2, 5, 1] {
            s.insert(k);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 5, 8]);
    }

    #[test]
    fn get_mut_and_clear() {
        let mut m: FlatMap<u64> = FlatMap::new();
        m.insert(1, 1);
        *m.get_mut(1).unwrap() = 42;
        assert_eq!(m.get(1), Some(&42));
        assert!(m.get_mut(2).is_none());
        m.clear();
        assert!(m.is_empty());
    }
}
