//! Plain-text table rendering for experiment and campaign output.
//!
//! Lives in the simulation kernel (rather than the bench harness) so that
//! every reporting consumer — bench sweeps, chaos campaigns, the verify
//! conformance matrix — can render tables without depending on the
//! wall-clock-exempt bench crate. `dolos_bench::report` re-exports this
//! module for backward compatibility.

/// A rendered table: header row plus data rows, all strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
        assert_eq!(t.title(), "t");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.666), "1.67");
        assert_eq!(f3(1.6666), "1.667");
        assert_eq!(f1(201.32), "201.3");
    }
}
