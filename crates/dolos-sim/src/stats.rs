//! Simulation statistics: counters, running means, and histograms.
//!
//! Every controller and workload exposes a [`StatSet`] snapshot at the end of
//! a run; the experiment harness in `dolos-bench` aggregates these into the
//! paper's tables and figures.

use core::fmt;
use std::collections::BTreeMap;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use dolos_sim::stats::Counter;
///
/// let mut retries = Counter::new();
/// retries.add(3);
/// retries.incr();
/// assert_eq!(retries.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one event.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online mean/min/max accumulator for cycle-valued samples.
///
/// # Examples
///
/// ```
/// use dolos_sim::stats::Running;
///
/// let mut lat = Running::new();
/// lat.record(100);
/// lat.record(300);
/// assert_eq!(lat.mean(), 200.0);
/// assert_eq!(lat.min(), Some(100));
/// assert_eq!(lat.max(), Some(300));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += u128::from(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any was recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any was recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A power-of-two-bucketed latency histogram.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` (bucket 0 holds 0 and 1).
///
/// # Examples
///
/// ```
/// use dolos_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(5);
/// h.record(6);
/// h.record(1000);
/// assert_eq!(h.count(), 3);
/// assert!(h.percentile(0.5) <= 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let bucket = 64 - sample.max(1).leading_zeros() as usize - 1;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in `[0, 1]`).
    ///
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }
}

/// A named bag of scalar statistics snapshotted at the end of a run.
///
/// Values are stored as `f64` so counts, means, and ratios can coexist;
/// iteration order is stable (sorted by name) for reproducible reports.
///
/// # Examples
///
/// ```
/// use dolos_sim::stats::StatSet;
///
/// let mut s = StatSet::new();
/// s.set("wpq.retries", 42.0);
/// s.add("wpq.retries", 1.0);
/// assert_eq!(s.get("wpq.retries"), Some(43.0));
/// assert_eq!(s.get("missing"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatSet {
    values: BTreeMap<String, f64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any prior value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Adds `delta` to `name` (starting from zero if absent).
    pub fn add(&mut self, name: &str, delta: f64) {
        *self.values.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Reads a value by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Reads a value, defaulting to zero when absent.
    pub fn get_or_zero(&self, name: &str) -> f64 {
        self.get(name).unwrap_or(0.0)
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another set into this one, summing overlapping names.
    ///
    /// Storage and display order are always name-sorted, but the summed
    /// *values* are `f64` additions, which are not associative: merging
    /// the same sets in a different order can differ in the last ulp.
    /// Reproducible reports must therefore hold the merge order fixed
    /// (the controller merges component sets in one hard-coded sequence,
    /// and the parallel pools merge partition results in item order).
    /// Integer-valued counters are exact under any order; only derived
    /// ratios and means carry rounding. For histogram data with an
    /// order-independent merge, use `dolos-trace`'s `TraceHistogram`,
    /// whose merge is associative by construction.
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of named statistics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Exports one `name = value` line per statistic, in sorted name order —
/// the export order is a pure function of the set's contents, independent
/// of insertion or merge sequence.
impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn running_tracks_extremes() {
        let mut r = Running::new();
        assert_eq!(r.min(), None);
        r.record(7);
        r.record(3);
        r.record(11);
        assert_eq!(r.min(), Some(3));
        assert_eq!(r.max(), Some(11));
        assert_eq!(r.count(), 3);
        assert!((r.mean() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert!(h.percentile(1.0) >= 8);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn statset_merge_sums_overlaps() {
        let mut a = StatSet::new();
        a.set("x", 1.0);
        a.set("y", 2.0);
        let mut b = StatSet::new();
        b.set("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("y"), Some(5.0));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn statset_display_lists_all() {
        let mut s = StatSet::new();
        s.set("b", 2.0);
        s.set("a", 1.0);
        let text = s.to_string();
        assert!(text.contains("a = 1"));
        assert!(text.contains("b = 2"));
    }
}
