//! Atomic work queue for deterministic work stealing.
//!
//! The queue hands out positions of a *schedule order* array (owned by the
//! caller) to however many workers poll it. Which worker claims which
//! position is a race — deliberately so, that is what makes the pool
//! work-stealing — but the mapping from position to item index, and from
//! item index to result, is fixed before any thread starts. A caller that
//! writes results into an index-addressed slab therefore gets output that is
//! a pure function of the inputs no matter how the claims interleave.
//!
//! The queue is a single `AtomicUsize` cursor: claiming a block is one
//! `fetch_add`, so contention is one cache line regardless of worker count.
//!
//! # Examples
//!
//! ```
//! use dolos_sim::queue::IndexQueue;
//!
//! let q = IndexQueue::new(10);
//! assert_eq!(q.claim(4), Some(0..4));
//! assert_eq!(q.claim(4), Some(4..8));
//! assert_eq!(q.claim(4), Some(8..10)); // final partial block
//! assert_eq!(q.claim(4), None);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared cursor over `0..len` that workers advance atomically to claim
/// disjoint blocks of schedule positions.
#[derive(Debug)]
pub struct IndexQueue {
    cursor: AtomicUsize,
    len: usize,
}

impl IndexQueue {
    /// Creates a queue over positions `0..len`.
    pub fn new(len: usize) -> Self {
        IndexQueue {
            cursor: AtomicUsize::new(0),
            len,
        }
    }

    /// Claims the next block of up to `block` positions, or `None` when the
    /// queue is drained. Every position is handed out exactly once across
    /// all claimants. A `block` of `0` is treated as `1` so the queue always
    /// makes progress.
    pub fn claim(&self, block: usize) -> Option<Range<usize>> {
        let block = block.max(1);
        let start = self.cursor.fetch_add(block, Ordering::Relaxed);
        if start >= self.len {
            None
        } else {
            Some(start..(start + block).min(self.len))
        }
    }

    /// Total number of positions this queue was created over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the queue was created over zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_partition_the_range() {
        let q = IndexQueue::new(11);
        let mut seen = Vec::new();
        while let Some(r) = q.claim(3) {
            seen.extend(r);
        }
        assert_eq!(seen, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = IndexQueue::new(0);
        assert!(q.is_empty());
        assert_eq!(q.claim(8), None);
    }

    #[test]
    fn zero_block_still_progresses() {
        let q = IndexQueue::new(2);
        assert_eq!(q.claim(0), Some(0..1));
        assert_eq!(q.claim(0), Some(1..2));
        assert_eq!(q.claim(0), None);
    }

    #[test]
    fn concurrent_claims_cover_every_position_once() {
        let q = IndexQueue::new(1000);
        let mut all: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(r) = q.claim(7) {
                            mine.extend(r);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn len_reports_creation_size() {
        assert_eq!(IndexQueue::new(5).len(), 5);
        assert!(!IndexQueue::new(5).is_empty());
    }
}
