//! Next-free-time resource models.
//!
//! The memory system is simulated without a global event queue: each
//! contended unit remembers when it next becomes free and requests "catch up"
//! lazily. [`Server`] models a serial unit (one operation at a time) and
//! [`Pipeline`] models a unit with an issue interval shorter than its latency
//! (e.g. a pipelined MAC engine).

use crate::Cycle;

/// A serial resource: at most one operation in flight at a time.
///
/// `acquire` books the resource for `busy` cycles starting no earlier than
/// `now` and no earlier than the completion of the previously booked
/// operation, returning the completion time.
///
/// # Examples
///
/// ```
/// use dolos_sim::{Cycle, resource::Server};
///
/// let mut engine = Server::new();
/// assert_eq!(engine.acquire(Cycle::new(0), 160), Cycle::new(160));
/// // Arrives while busy: waits.
/// assert_eq!(engine.acquire(Cycle::new(10), 160), Cycle::new(320));
/// // Arrives after an idle gap: starts immediately.
/// assert_eq!(engine.acquire(Cycle::new(1000), 160), Cycle::new(1160));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Server {
    free_at: Cycle,
    busy_cycles: u64,
    operations: u64,
}

impl Server {
    /// Creates an idle server, free at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Books the server for `busy` cycles starting at `max(now, free_at)`.
    ///
    /// Returns the cycle at which the operation completes.
    pub fn acquire(&mut self, now: Cycle, busy: u64) -> Cycle {
        let start = now.max(self.free_at);
        self.free_at = start + busy;
        self.busy_cycles += busy;
        self.operations += 1;
        self.free_at
    }

    /// The cycle at which the server next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Whether the server is idle at `now`.
    pub fn is_idle_at(&self, now: Cycle) -> bool {
        self.free_at <= now
    }

    /// Total cycles the server has been booked for.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of operations served.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Resets the server to idle at cycle zero, clearing statistics.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A pipelined resource: new operations may issue every `initiation` cycles,
/// each completing `latency` cycles after issue.
///
/// # Examples
///
/// ```
/// use dolos_sim::{Cycle, resource::Pipeline};
///
/// // A MAC engine with 160-cycle latency that accepts one block per 40 cycles.
/// let mut mac = Pipeline::new(40, 160);
/// assert_eq!(mac.acquire(Cycle::new(0)), Cycle::new(160));
/// assert_eq!(mac.acquire(Cycle::new(0)), Cycle::new(200)); // issued at 40
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    initiation: u64,
    latency: u64,
    next_issue: Cycle,
    operations: u64,
}

impl Pipeline {
    /// Creates a pipeline with the given initiation interval and latency.
    ///
    /// # Panics
    ///
    /// Panics if `initiation` is zero.
    pub fn new(initiation: u64, latency: u64) -> Self {
        assert!(initiation > 0, "initiation interval must be non-zero");
        Self {
            initiation,
            latency,
            next_issue: Cycle::ZERO,
            operations: 0,
        }
    }

    /// Issues one operation at `max(now, next_issue)`; returns its completion.
    pub fn acquire(&mut self, now: Cycle) -> Cycle {
        let issue = now.max(self.next_issue);
        self.next_issue = issue + self.initiation;
        self.operations += 1;
        issue + self.latency
    }

    /// Operation latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of operations issued.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Resets the pipeline to idle, clearing statistics.
    pub fn reset(&mut self) {
        self.next_issue = Cycle::ZERO;
        self.operations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_serializes_overlapping_requests() {
        let mut s = Server::new();
        let a = s.acquire(Cycle::new(0), 100);
        let b = s.acquire(Cycle::new(50), 100);
        assert_eq!(a, Cycle::new(100));
        assert_eq!(b, Cycle::new(200));
        assert_eq!(s.operations(), 2);
        assert_eq!(s.busy_cycles(), 200);
    }

    #[test]
    fn server_idles_between_requests() {
        let mut s = Server::new();
        s.acquire(Cycle::new(0), 10);
        let done = s.acquire(Cycle::new(500), 10);
        assert_eq!(done, Cycle::new(510));
        assert!(s.is_idle_at(Cycle::new(511)));
        assert!(!s.is_idle_at(Cycle::new(505)));
    }

    #[test]
    fn server_reset_clears_state() {
        let mut s = Server::new();
        s.acquire(Cycle::new(0), 10);
        s.reset();
        assert_eq!(s.free_at(), Cycle::ZERO);
        assert_eq!(s.operations(), 0);
    }

    #[test]
    fn pipeline_overlaps_latency() {
        let mut p = Pipeline::new(40, 160);
        assert_eq!(p.acquire(Cycle::new(0)), Cycle::new(160));
        assert_eq!(p.acquire(Cycle::new(0)), Cycle::new(200));
        assert_eq!(p.acquire(Cycle::new(0)), Cycle::new(240));
        assert_eq!(p.operations(), 3);
    }

    #[test]
    fn pipeline_idle_restart() {
        let mut p = Pipeline::new(40, 160);
        p.acquire(Cycle::new(0));
        assert_eq!(p.acquire(Cycle::new(1000)), Cycle::new(1160));
    }

    #[test]
    #[should_panic(expected = "initiation")]
    fn pipeline_rejects_zero_initiation() {
        let _ = Pipeline::new(0, 10);
    }
}
