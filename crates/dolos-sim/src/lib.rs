//! Simulation kernel for the Dolos secure persistent-memory model.
//!
//! This crate provides the timing substrate used by every other crate in the
//! workspace:
//!
//! * [`Cycle`] — a strongly-typed simulated clock value (4 GHz core clock, the
//!   configuration in Table 1 of the paper);
//! * [`resource::Server`] — a "next-free-time" serial resource used to model
//!   contended units (the NVM write port, the Ma-SU crypto engine, …) without
//!   a global event queue;
//! * [`rng`] — a small deterministic RNG plus the Zipfian sampler used by the
//!   YCSB-style workload;
//! * [`stats`] — counters and histograms shared by the experiment harness;
//! * [`pool`] — a deterministic work-stealing job pool for sweeps whose
//!   output must not depend on thread count;
//! * [`queue`] — the atomic index queue the pool steals schedule positions
//!   from;
//! * [`flat`] — a sorted flat map used for per-line metadata tables whose
//!   iteration order must be reproducible;
//! * [`table`] — plain-text table rendering shared by every report surface;
//! * [`trace`] — cycle-stamped event/span vocabulary the timing-bearing
//!   crates emit into and the `dolos-trace` analysis crate consumes.
//!
//! The simulation style throughout the workspace is *lazy catch-up*: every
//! model keeps the cycle at which it next becomes free and advances itself
//! when poked, so the whole memory system stays deterministic and allocation
//! free on the hot path.
//!
//! # Examples
//!
//! ```
//! use dolos_sim::{Cycle, resource::Server};
//!
//! let mut port = Server::new();
//! // Two back-to-back 2000-cycle NVM writes serialize on the port.
//! let first = port.acquire(Cycle::ZERO, 2000);
//! let second = port.acquire(Cycle::ZERO, 2000);
//! assert_eq!(first, Cycle::new(2000));
//! assert_eq!(second, Cycle::new(4000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flat;
pub mod pool;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod table;
pub mod trace;

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Simulated core clock frequency, cycles per nanosecond (4 GHz).
pub const CYCLES_PER_NS: u64 = 4;

/// A point in simulated time, measured in core clock cycles at 4 GHz.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64` cycle counts.
/// The type is deliberately small and `Copy` so it can flow through every
/// model by value.
///
/// # Examples
///
/// ```
/// use dolos_sim::Cycle;
///
/// let t = Cycle::new(100) + 60;
/// assert_eq!(t, Cycle::new(160));
/// assert_eq!(t - Cycle::new(100), 60);
/// assert_eq!(Cycle::from_ns(150).as_u64(), 600); // 150 ns PCM read at 4 GHz
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// A timestamp later than any reachable simulation time.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp from a raw cycle count.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Converts a wall-clock duration in nanoseconds to cycles at 4 GHz.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Cycle(ns * CYCLES_PER_NS)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns this timestamp expressed in nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / CYCLES_PER_NS
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Cycles from `self` until `later`, or zero if `later` is in the past.
    ///
    /// # Examples
    ///
    /// ```
    /// use dolos_sim::Cycle;
    /// assert_eq!(Cycle::new(10).until(Cycle::new(25)), 15);
    /// assert_eq!(Cycle::new(30).until(Cycle::new(25)), 0);
    /// ```
    #[inline]
    pub fn until(self, later: Cycle) -> u64 {
        later.0.saturating_sub(self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Elapsed cycles between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(cycles: u64) -> Self {
        Cycle(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_round_trips() {
        let t = Cycle::new(5);
        assert_eq!((t + 7) - t, 7);
        assert_eq!(t.as_u64(), 5);
        assert_eq!(Cycle::from(9u64), Cycle::new(9));
    }

    #[test]
    fn ns_conversion_matches_4ghz() {
        assert_eq!(Cycle::from_ns(500).as_u64(), 2000); // PCM write latency
        assert_eq!(Cycle::from_ns(150).as_u64(), 600); // PCM read latency
        assert_eq!(Cycle::new(2000).as_ns(), 500);
    }

    #[test]
    fn min_max_until() {
        let a = Cycle::new(10);
        let b = Cycle::new(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.until(b), 10);
        assert_eq!(b.until(a), 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(3).to_string(), "3cyc");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn subtraction_underflow_panics_in_debug() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }
}
