//! Cycle-stamped event tracing for the secure-memory pipeline.
//!
//! Every timing-bearing component (controller, Mi-SU, Ma-SU, WPQ, NVM
//! device) owns a [`TraceSink`] and, when recording is enabled, emits
//! [`TraceEvent`]s stamped with simulated-cycle begin/end times. The sink is
//! observation-only: emitting an event never touches [`Cycle`] arithmetic,
//! so a recorded run is cycle-identical to an untraced one (pinned by test
//! in `dolos-trace`). With the default [`TraceMode::Off`] every hook is a
//! single enum-discriminant branch — the zero-overhead-when-disabled path.
//!
//! Determinism rules:
//!
//! * events carry **simulated** cycles only — no wall-clock, no host state;
//! * each component buffers its own events; a merged stream is produced by
//!   draining every buffer and sorting with [`sort_events`], whose order is
//!   a pure function of the event set;
//! * the simulator itself is deterministic, so the merged stream (and any
//!   report derived from it) is byte-identical across runs and `--jobs`
//!   values.
//!
//! Analysis (histograms, critical-path attribution, Chrome export) lives in
//! the `dolos-trace` crate; this module only defines the vocabulary shared
//! by the emitting crates.

use crate::Cycle;

/// Whether a memory system records trace events.
///
/// Carried by `ControllerConfig` so it can flow through clones across the
/// deterministic job pool; `Off` is the default and costs one branch per
/// hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No events are recorded; every hook is a no-op branch.
    #[default]
    Off,
    /// Events are buffered in each component's [`RecordingTracer`].
    Record,
}

/// What happened. The `value` payload of the matching [`TraceEvent`] is
/// kind-specific; see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A persist request arrived at the controller (instant; `value` 0).
    PersistStart,
    /// A persist was acknowledged ADR-durable: the span runs from request
    /// arrival to WPQ acceptance — the persist critical path. `value` is
    /// the span length in cycles (the persist latency).
    PersistAck,
    /// The requesting thread stalled at a full WPQ or a busy deferred-MAC
    /// engine before the insert could proceed. `value` is 0 for a
    /// WPQ-full stall, 1 for a Mi-SU busy stall (Post design).
    FenceStall,
    /// A line was inserted into a free WPQ slot (instant; `value` is the
    /// live occupancy *after* the insert).
    WpqInsert,
    /// An insert coalesced into a live slot holding the same address
    /// (instant; `value` is the unchanged live occupancy).
    WpqCoalesce,
    /// A drained slot was retired (freed) from the WPQ (instant; `value`
    /// is the live occupancy *after* the retire).
    WpqRetire,
    /// Live-entry occupancy sample, emitted after every insert/coalesce/
    /// retire (instant; `value` is the occupancy). Feeds the occupancy
    /// histograms that pin the usable 16/13/10 capacities.
    WpqOccupancy,
    /// One Mi-SU MAC computation span. `value` is 1 for the first
    /// critical-path MAC, 2 for the second (Full design's root update),
    /// and 0 for a deferred off-critical-path MAC (Post design).
    MisuMac,
    /// Ma-SU drain stage: one-cycle OTP pad decrypt of a WPQ payload on
    /// the Dolos drain path (`value` 0).
    MasuPadDecrypt,
    /// Ma-SU drain stage: counter-mode re-encryption of the plaintext
    /// line (AES pad latency; `value` 0).
    MasuEncrypt,
    /// Ma-SU drain stage: integrity-tree update — eager BMT root walk or
    /// lazy Tree-of-Counters leaf update (`value` 0).
    MasuTreeUpdate,
    /// Ma-SU drain stage: the secure write's atomic commit point, where
    /// ciphertext + metadata enter the redo/shadow domain (instant;
    /// `value` 0).
    MasuRedoCommit,
    /// NVM device read service, queueing on the read port included.
    /// `value` is the span length in cycles.
    NvmRead,
    /// NVM device write service, queueing on the write port included. The
    /// span ends at full completion; `value` is the cycle the write was
    /// accepted (ADR-safe) as a raw `u64`.
    NvmWrite,
    /// A WPQ entry was ready to drain while its bank was still busy with
    /// the previous drain — the per-bank serialization point of the banked
    /// WPQ model. The span runs from the entry's ready time to the bank's
    /// busy-until; `addr` is the bank index and `value` the wait length in
    /// cycles. Never emitted with a single bank (there the same wait is the
    /// old global drain serialization, which stays untraced).
    BankBusy,
}

impl EventKind {
    /// Every kind, in a stable report order.
    pub const ALL: [EventKind; 15] = [
        EventKind::PersistStart,
        EventKind::PersistAck,
        EventKind::FenceStall,
        EventKind::WpqInsert,
        EventKind::WpqCoalesce,
        EventKind::WpqRetire,
        EventKind::WpqOccupancy,
        EventKind::MisuMac,
        EventKind::MasuPadDecrypt,
        EventKind::MasuEncrypt,
        EventKind::MasuTreeUpdate,
        EventKind::MasuRedoCommit,
        EventKind::NvmRead,
        EventKind::NvmWrite,
        EventKind::BankBusy,
    ];

    /// Stable snake_case name used in JSON exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PersistStart => "persist_start",
            EventKind::PersistAck => "persist_ack",
            EventKind::FenceStall => "fence_stall",
            EventKind::WpqInsert => "wpq_insert",
            EventKind::WpqCoalesce => "wpq_coalesce",
            EventKind::WpqRetire => "wpq_retire",
            EventKind::WpqOccupancy => "wpq_occupancy",
            EventKind::MisuMac => "misu_mac",
            EventKind::MasuPadDecrypt => "masu_pad_decrypt",
            EventKind::MasuEncrypt => "masu_encrypt",
            EventKind::MasuTreeUpdate => "masu_tree_update",
            EventKind::MasuRedoCommit => "masu_redo_commit",
            EventKind::NvmRead => "nvm_read",
            EventKind::NvmWrite => "nvm_write",
            EventKind::BankBusy => "bank_busy",
        }
    }

    /// The pipeline lane (component) the event belongs to. Used as the
    /// per-thread track in the Chrome `trace_event` export.
    pub fn lane(self) -> &'static str {
        match self {
            EventKind::PersistStart | EventKind::PersistAck | EventKind::FenceStall => "controller",
            EventKind::WpqInsert
            | EventKind::WpqCoalesce
            | EventKind::WpqRetire
            | EventKind::WpqOccupancy => "wpq",
            EventKind::MisuMac => "misu",
            EventKind::MasuPadDecrypt
            | EventKind::MasuEncrypt
            | EventKind::MasuTreeUpdate
            | EventKind::MasuRedoCommit => "masu",
            EventKind::NvmRead | EventKind::NvmWrite | EventKind::BankBusy => "nvm",
        }
    }

    /// Stable numeric id (index in [`EventKind::ALL`]); the Chrome export
    /// uses it as the lane-internal sort key.
    pub fn code(self) -> u8 {
        match self {
            EventKind::PersistStart => 0,
            EventKind::PersistAck => 1,
            EventKind::FenceStall => 2,
            EventKind::WpqInsert => 3,
            EventKind::WpqCoalesce => 4,
            EventKind::WpqRetire => 5,
            EventKind::WpqOccupancy => 6,
            EventKind::MisuMac => 7,
            EventKind::MasuPadDecrypt => 8,
            EventKind::MasuEncrypt => 9,
            EventKind::MasuTreeUpdate => 10,
            EventKind::MasuRedoCommit => 11,
            EventKind::NvmRead => 12,
            EventKind::NvmWrite => 13,
            EventKind::BankBusy => 14,
        }
    }
}

/// One traced event: a `[begin, end]` span in simulated cycles (instants
/// have `begin == end`), the line address involved (0 when not
/// address-shaped), and a kind-specific `value` payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Span start (inclusive), simulated cycles.
    pub begin: Cycle,
    /// Span end; equals `begin` for instant events. Never before `begin`.
    pub end: Cycle,
    /// Line address the event concerns, or 0.
    pub addr: u64,
    /// Kind-specific payload; see [`EventKind`].
    pub value: u64,
}

impl TraceEvent {
    /// Span length in cycles (0 for instant events).
    pub fn span_cycles(&self) -> u64 {
        self.end - self.begin
    }
}

/// A consumer of trace events.
///
/// The two implementations cover both ends of the cost spectrum:
/// [`NullTracer`] (drop everything, `enabled() == false`) and
/// [`RecordingTracer`] (buffer everything in emission order).
pub trait Tracer {
    /// Consumes one event.
    fn emit(&mut self, event: TraceEvent);
    /// Whether emitting is worthwhile; components skip building events
    /// (and any payload computation) entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards every event. The disabled path: components holding a null sink
/// pay one branch per hook and nothing else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn emit(&mut self, _event: TraceEvent) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Buffers events in emission order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingTracer {
    events: Vec<TraceEvent>,
}

impl RecordingTracer {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains the buffer, returning the events in emission order.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Tracer for RecordingTracer {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// The sink a component actually owns: enum dispatch over the two tracer
/// implementations, so components stay `Clone + Debug` without boxing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TraceSink {
    /// Tracing disabled (the default).
    #[default]
    Null,
    /// Tracing enabled; events buffer here until drained.
    Record(RecordingTracer),
}

impl TraceSink {
    /// Builds the sink matching a [`TraceMode`].
    pub fn from_mode(mode: TraceMode) -> Self {
        match mode {
            TraceMode::Off => TraceSink::Null,
            TraceMode::Record => TraceSink::Record(RecordingTracer::new()),
        }
    }

    /// Whether events are being recorded. Hooks guard payload computation
    /// on this so the disabled path stays a single branch.
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceSink::Record(_))
    }

    /// Emits one pre-built event.
    pub fn emit(&mut self, event: TraceEvent) {
        if let TraceSink::Record(r) = self {
            r.emit(event);
        }
    }

    /// Emits a `[begin, end]` span of `kind`.
    pub fn span(&mut self, kind: EventKind, begin: Cycle, end: Cycle, addr: u64, value: u64) {
        self.emit(TraceEvent {
            kind,
            begin,
            end,
            addr,
            value,
        });
    }

    /// Emits an instant event of `kind` at `at`.
    pub fn instant(&mut self, kind: EventKind, at: Cycle, addr: u64, value: u64) {
        self.span(kind, at, at, addr, value);
    }

    /// Drains buffered events (empty for a null sink), keeping the mode.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Null => Vec::new(),
            TraceSink::Record(r) => r.take(),
        }
    }
}

/// Sorts a merged event stream into the canonical report order:
/// `(begin, end, kind code, addr, value)`. The order is a pure function of
/// the event *set*, so independently drained component buffers always merge
/// to the same stream regardless of drain order or `--jobs` partitioning.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_unstable_by_key(|e| (e.begin, e.end, e.kind.code(), e.addr, e.value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_records_nothing_and_reports_disabled() {
        let mut sink = TraceSink::from_mode(TraceMode::Off);
        assert!(!sink.is_enabled());
        sink.instant(EventKind::PersistStart, Cycle::new(5), 0x40, 0);
        assert!(sink.take().is_empty());
    }

    #[test]
    fn recording_sink_keeps_emission_order_and_drains() {
        let mut sink = TraceSink::from_mode(TraceMode::Record);
        assert!(sink.is_enabled());
        sink.span(EventKind::MisuMac, Cycle::new(10), Cycle::new(170), 0x80, 1);
        sink.instant(EventKind::PersistAck, Cycle::new(170), 0x80, 160);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::MisuMac);
        assert_eq!(events[0].span_cycles(), 160);
        assert_eq!(events[1].span_cycles(), 0);
        // Draining preserves the mode.
        assert!(sink.is_enabled());
        assert!(sink.take().is_empty());
    }

    #[test]
    fn sort_is_a_pure_function_of_the_event_set() {
        let make = |kind, b: u64, addr| TraceEvent {
            kind,
            begin: Cycle::new(b),
            end: Cycle::new(b + 10),
            addr,
            value: 0,
        };
        let mut a = vec![
            make(EventKind::NvmRead, 50, 1),
            make(EventKind::WpqInsert, 10, 2),
            make(EventKind::MisuMac, 10, 1),
        ];
        let mut b = a.clone();
        b.reverse();
        sort_events(&mut a);
        sort_events(&mut b);
        assert_eq!(a, b);
        // Same begin/end: the kind code breaks the tie deterministically.
        assert_eq!(a[0].kind, EventKind::WpqInsert);
        assert_eq!(a[1].kind, EventKind::MisuMac);
    }

    #[test]
    fn every_kind_has_distinct_code_name_and_a_lane() {
        let mut seen_codes = std::collections::BTreeSet::new();
        let mut seen_names = std::collections::BTreeSet::new();
        for kind in EventKind::ALL {
            assert!(seen_codes.insert(kind.code()), "{kind:?} code collides");
            assert!(seen_names.insert(kind.name()), "{kind:?} name collides");
            assert!(!kind.lane().is_empty());
        }
        assert_eq!(seen_codes.len(), EventKind::ALL.len());
    }
}
