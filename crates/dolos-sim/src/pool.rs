//! Deterministic work-stealing pool for embarrassingly parallel sweeps.
//!
//! Every paper figure and chaos campaign is a sweep of independent
//! (design × workload × schedule) simulation cells. This module runs such a
//! sweep across scoped threads while keeping the one property the harness
//! guarantees everywhere else: **the result is a pure function of the
//! inputs**, independent of thread count and scheduling.
//!
//! Earlier revisions partitioned work statically into contiguous chunks,
//! which idles workers when cell costs are skewed (a whole worker can get
//! stuck behind one straggler figure). The pool now steals:
//!
//! * a shared [`IndexQueue`] cursor hands out small blocks of *schedule
//!   positions* — workers that finish early claim more, so skew costs at
//!   most one block, not one chunk;
//! * which worker runs a cell is a race, but the cell's *result* depends
//!   only on its index: results land in an index-addressed output slab and
//!   are read out in item order, so the output — every byte of downstream
//!   JSON — is exactly what the serial loop produces at any `--jobs`;
//! * [`run_indexed_weighted`] additionally sorts the schedule by a
//!   caller-supplied cost hint (longest first, ties by index) so stragglers
//!   start first and overlap the short tail instead of serializing at the
//!   end;
//! * worker panics are re-raised on the calling thread via
//!   [`std::panic::resume_unwind`], so a failing cell fails the sweep the
//!   same way it would serially.
//!
//! The schedule order and the claim interleaving affect *when* a cell runs,
//! never *what* it returns or where it lands in the output.
//!
//! # Examples
//!
//! ```
//! use dolos_sim::pool;
//!
//! let items: Vec<u64> = (0..100).collect();
//! let serial = pool::run_indexed(1, &items, |i, &x| x * x + i as u64);
//! let parallel = pool::run_indexed(4, &items, |i, &x| x * x + i as u64);
//! assert_eq!(serial, parallel);
//!
//! // Same guarantee with a cost hint: only the schedule changes.
//! let weighted = pool::run_indexed_weighted(4, &items, |_, &x| x, |i, &x| x * x + i as u64);
//! assert_eq!(weighted, serial);
//! ```

use crate::queue::IndexQueue;

/// Resolves a `--jobs` request to a concrete worker count: `0` means "use
/// [`std::thread::available_parallelism`]", and the result is clamped to
/// `[1, items]` so no worker is ever created without work.
pub fn effective_jobs(jobs: usize, items: usize) -> usize {
    let requested = if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    };
    requested.clamp(1, items.max(1))
}

/// Block of schedule positions claimed per steal. Small enough that a
/// skewed tail costs at most a few cells of imbalance, large enough that
/// the atomic cursor is not contended per cell.
fn steal_block(items: usize, jobs: usize) -> usize {
    (items / (jobs * 8)).clamp(1, 32)
}

/// Maps `f` over `items` with `jobs` workers, returning results in item
/// order regardless of thread count or steal interleaving.
///
/// `f` receives each item's index alongside the item, so stages can derive
/// per-cell labels or seeds without threading them through the item type.
/// With `jobs <= 1` (after [`effective_jobs`] resolution) the map runs
/// inline on the calling thread — the zero-overhead serial path.
///
/// # Panics
///
/// Re-raises the first worker panic (in worker spawn order) on the calling
/// thread.
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let order: Vec<usize> = (0..items.len()).collect();
    run_stolen(jobs, items, &order, steal_block(items.len(), jobs), &f)
}

/// Like [`run_indexed`], scheduling costly items first.
///
/// `weight` is a deterministic per-item cost hint (higher = start earlier);
/// ties run in index order. The hint shapes only the steal schedule — the
/// returned `Vec` is byte-for-byte what [`run_indexed`] and the serial loop
/// produce. Positions are stolen one at a time so a single long cell never
/// drags its block-mates behind it.
///
/// # Panics
///
/// Re-raises the first worker panic (in worker spawn order) on the calling
/// thread.
pub fn run_indexed_weighted<T, R, W, F>(jobs: usize, items: &[T], weight: W, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(usize, &T) -> u64,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(i, &items[i])), i));
    run_stolen(jobs, items, &order, 1, &f)
}

/// The shared steal loop: workers claim blocks of `order` positions from an
/// atomic cursor, compute into local `(index, result)` pairs, and the caller
/// scatters those into an index-addressed slab after joining in spawn order.
fn run_stolen<T, R, F>(jobs: usize, items: &[T], order: &[usize], block: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let queue = IndexQueue::new(order.len());
    let mut slab: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let queue = &queue;
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    while let Some(positions) = queue.claim(block) {
                        for &idx in &order[positions] {
                            mine.push((idx, f(idx, &items[idx])));
                        }
                    }
                    mine
                })
            })
            .collect();
        // Join in spawn order; the slab, not the join order, fixes the
        // output order.
        for handle in handles {
            match handle.join() {
                Ok(pairs) => {
                    for (idx, result) in pairs {
                        slab[idx] = Some(result);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    // Every position was claimed exactly once, so every slot is filled.
    let out: Vec<R> = slab.into_iter().flatten().collect();
    assert_eq!(out.len(), items.len(), "steal schedule missed a cell");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_order_is_independent_of_thread_count() {
        let items: Vec<u64> = (0..97).collect(); // not a multiple of any job count
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [0usize, 1, 2, 3, 7, 16, 200] {
            let got = run_indexed(jobs, &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn indices_match_item_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = run_indexed(2, &items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let got: Vec<u32> = run_indexed(4, &items, |_, &x| x);
        assert!(got.is_empty());
        let weighted: Vec<u32> = run_indexed_weighted(4, &items, |_, &x| x as u64, |_, &x| x);
        assert!(weighted.is_empty());
    }

    #[test]
    fn effective_jobs_resolves_auto_and_clamps() {
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(8, 3), 3); // never more workers than items
        assert_eq!(effective_jobs(8, 0), 1);
        assert_eq!(effective_jobs(2, 100), 2);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..10).collect();
        let result = std::panic::catch_unwind(|| {
            run_indexed(3, &items, |_, &x| {
                assert!(x != 7, "boom at {x}");
                x
            })
        });
        assert!(result.is_err());
    }

    /// Deterministic per-(seed, index) pseudo-random sleep, so the steal
    /// interleaving differs run to run without touching ambient entropy.
    fn skewed_sleep(seed: u64, i: usize) {
        let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        std::thread::sleep(std::time::Duration::from_micros(x % 200));
    }

    #[test]
    fn stolen_output_is_byte_identical_to_serial_under_sleep_skew() {
        let items: Vec<u64> = (0..61).collect();
        for seed in [1u64, 2, 3] {
            let serial: Vec<String> = items
                .iter()
                .enumerate()
                .map(|(i, &x)| format!("{i}/{x}/{seed}"))
                .collect();
            for jobs in [1usize, 2, 7, 16] {
                let got = run_indexed(jobs, &items, |i, &x| {
                    skewed_sleep(seed, i);
                    format!("{i}/{x}/{seed}")
                });
                assert_eq!(got, serial, "jobs={jobs} seed={seed}");
            }
        }
    }

    #[test]
    fn weighted_output_is_byte_identical_to_serial_under_sleep_skew() {
        let items: Vec<u64> = (0..61).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 7 + 3).collect();
        for jobs in [1usize, 2, 7, 16] {
            // Adversarial hint: schedule in reverse item order.
            let got = run_indexed_weighted(
                jobs,
                &items,
                |i, _| i as u64,
                |i, &x| {
                    skewed_sleep(jobs as u64, i);
                    x * 7 + 3
                },
            );
            assert_eq!(got, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn weighted_ties_and_constant_hints_still_reproduce_serial() {
        let items: Vec<u64> = (0..33).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        let got = run_indexed_weighted(5, &items, |_, _| 42, |_, &x| x + 1);
        assert_eq!(got, serial);
    }

    #[test]
    fn panic_in_stolen_cell_resumes_on_caller() {
        let items: Vec<u32> = (0..40).collect();
        for jobs in [2usize, 7] {
            let result = std::panic::catch_unwind(|| {
                run_indexed_weighted(
                    jobs,
                    &items,
                    |i, _| i as u64 % 5,
                    |_, &x| {
                        if x == 31 {
                            panic!("stolen cell failure at {x}");
                        }
                        x
                    },
                )
            });
            let err = result.expect_err("panic must reach the caller");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("stolen cell failure"), "jobs={jobs}: {msg}");
        }
    }
}
