//! Deterministic job pool for embarrassingly parallel sweeps.
//!
//! Every paper figure and chaos campaign is a sweep of independent
//! (design × workload × schedule) simulation cells. This module runs such a
//! sweep across scoped threads while keeping the one property the harness
//! guarantees everywhere else: **the result is a pure function of the
//! inputs**, independent of thread count and scheduling.
//!
//! The design is deliberately the simplest one with that property:
//!
//! * work is partitioned by *index* into contiguous chunks, one chunk per
//!   worker — there is no work stealing, so which worker runs a cell is a
//!   function of the cell's index alone;
//! * each worker produces a `Vec` of results for its chunk, and the chunks
//!   are concatenated in chunk order — so the output is always in item
//!   order, exactly as the serial loop would produce it;
//! * worker panics are re-raised on the calling thread via
//!   [`std::panic::resume_unwind`], so a failing cell fails the sweep the
//!   same way it would serially.
//!
//! Static partitioning can idle workers when cell costs are skewed; the
//! sweeps in this workspace are many-cells-per-worker and roughly uniform,
//! and determinism is worth far more to the harness than the last few
//! percent of utilization.
//!
//! # Examples
//!
//! ```
//! use dolos_sim::pool;
//!
//! let items: Vec<u64> = (0..100).collect();
//! let serial = pool::run_indexed(1, &items, |i, &x| x * x + i as u64);
//! let parallel = pool::run_indexed(4, &items, |i, &x| x * x + i as u64);
//! assert_eq!(serial, parallel);
//! ```

/// Resolves a `--jobs` request to a concrete worker count: `0` means "use
/// [`std::thread::available_parallelism`]", and the result is clamped to
/// `[1, items]` so no worker is ever created without work.
pub fn effective_jobs(jobs: usize, items: usize) -> usize {
    let requested = if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    };
    requested.clamp(1, items.max(1))
}

/// Maps `f` over `items` with `jobs` workers, returning results in item
/// order regardless of thread count.
///
/// `f` receives each item's index alongside the item, so stages can derive
/// per-cell labels or seeds without threading them through the item type.
/// With `jobs <= 1` (after [`effective_jobs`] resolution) the map runs
/// inline on the calling thread — the zero-overhead serial path.
///
/// # Panics
///
/// Re-raises the first worker panic (in chunk order) on the calling thread.
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Fixed partitioning by index: worker w owns items [w*chunk, (w+1)*chunk).
    let chunk = items.len().div_ceil(jobs);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                let base = w * chunk;
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // Join in chunk order: concatenation reproduces item order.
        for handle in handles {
            match handle.join() {
                Ok(results) => out.extend(results),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_order_is_independent_of_thread_count() {
        let items: Vec<u64> = (0..97).collect(); // not a multiple of any job count
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [0usize, 1, 2, 3, 7, 16, 200] {
            let got = run_indexed(jobs, &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn indices_match_item_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = run_indexed(2, &items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let got: Vec<u32> = run_indexed(4, &items, |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn effective_jobs_resolves_auto_and_clamps() {
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(8, 3), 3); // never more workers than items
        assert_eq!(effective_jobs(8, 0), 1);
        assert_eq!(effective_jobs(2, 100), 2);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..10).collect();
        let result = std::panic::catch_unwind(|| {
            run_indexed(3, &items, |_, &x| {
                assert!(x != 7, "boom at {x}");
                x
            })
        });
        assert!(result.is_err());
    }
}
