//! Deterministic random number generation for workloads.
//!
//! Simulation runs must be exactly reproducible across hosts, so the
//! workloads use this self-contained xorshift64* generator instead of a
//! seeded OS RNG. [`Zipfian`] implements the YCSB-style skewed key
//! distribution used by the N-Store workload.

/// A deterministic xorshift64* pseudo-random generator.
///
/// Not cryptographically secure — used only to drive workload key choices and
/// crash-injection points.
///
/// # Examples
///
/// ```
/// use dolos_sim::rng::XorShift;
///
/// let mut a = XorShift::new(42);
/// let mut b = XorShift::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has a zero fixed point.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift bounded sampling; bias is negligible for our bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Default for XorShift {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

/// Zipfian distribution sampler over `[0, n)` (YCSB's request distribution).
///
/// Uses the standard rejection-free inverse-CDF approximation from Gray et
/// al. ("Quickly generating billion-record synthetic databases"), the same
/// algorithm YCSB itself uses.
///
/// # Examples
///
/// ```
/// use dolos_sim::rng::{XorShift, Zipfian};
///
/// let mut rng = XorShift::new(7);
/// let zipf = Zipfian::new(1000, 0.99);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a sampler over `[0, n)` with skew `theta` (YCSB default 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be non-zero");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation is O(n) but runs once per sampler; workload
        // populations are bounded (<= a few hundred thousand keys).
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws one sample in `[0, n)`; small values are the hot keys.
    pub fn sample(&self, rng: &mut XorShift) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// The population size `n`.
    pub fn population(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(123);
        let mut b = XorShift::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounded_sampling_stays_in_range() {
        let mut r = XorShift::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShift::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn zipfian_is_skewed_toward_small_keys() {
        let mut r = XorShift::new(21);
        let z = Zipfian::new(1000, 0.99);
        let mut hot = 0u32;
        const DRAWS: u32 = 20_000;
        for _ in 0..DRAWS {
            if z.sample(&mut r) < 10 {
                hot += 1;
            }
        }
        // With theta = 0.99 the top-10 keys of 1000 receive far more than the
        // uniform 1% of requests; empirically ~40%+.
        assert!(hot > DRAWS / 5, "hot share too small: {hot}/{DRAWS}");
    }

    #[test]
    fn zipfian_samples_in_range() {
        let mut r = XorShift::new(31);
        let z = Zipfian::new(50, 0.5);
        for _ in 0..5000 {
            assert!(z.sample(&mut r) < 50);
        }
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zipfian_rejects_empty_population() {
        let _ = Zipfian::new(0, 0.99);
    }
}
