//! Deterministic fault-injection hooks for crash-consistency testing.
//!
//! The chaos harness (crate `dolos-chaos`) needs to cut power at *specific
//! microarchitectural instants* — between a Mi-SU `protect` and the WPQ
//! insertion, mid-Ma-SU drain, or in the middle of recovery itself — and to
//! do so reproducibly from a seed. These hooks give the controller that
//! capability without perturbing timing or behaviour when disarmed: a
//! [`FaultPlan`] is a pure occurrence counter, and with no plan armed every
//! check is a single branch on `None`.
//!
//! The taxonomy below names the instants at which a power failure is
//! architecturally distinguishable (they differ in which state has reached
//! the persistence domain):
//!
//! * **Before anything** ([`InjectionPoint::PersistStart`]) — the write is
//!   simply lost; the persist never completed, so losing it is legal.
//! * **After Mi-SU protect, before WPQ insert**
//!   ([`InjectionPoint::MisuProtect`]) — pad consumed, MAC computed, but the
//!   line never entered the persistence domain: also legal to lose, and the
//!   half-spent Mi-SU state must not poison the dump of the *other* entries.
//! * **After WPQ insert** ([`InjectionPoint::WpqInsert`]) — the persist
//!   completed: the ADR dump must carry the line through recovery.
//! * **Mid-Ma-SU drain** ([`InjectionPoint::MasuDrain`]) — the entry has
//!   (partially) reached its home address *and* still sits in the WPQ as an
//!   uncleared in-flight entry; recovery replays it on top of the partial
//!   application, which must be idempotent.
//! * **During recovery replay** ([`InjectionPoint::RecoveryReplay`]) — a
//!   nested crash: power fails again while the boot-time replay is running.
//!   Recovery must be restartable, which is why the Mi-SU's epoch advance is
//!   deferred to [`crate::misu::MinorSecurityUnit::finish_recovery`].

use core::fmt;

/// A microarchitectural instant at which an armed fault fires.
///
/// Each variant corresponds to one crash-point class of the pipeline; see
/// the [module docs](self) for which durability obligation each carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// At the head of `persist_write`, before any Mi-SU or WPQ work.
    PersistStart,
    /// After the Mi-SU protected (encrypted + MACed) the line but before
    /// the WPQ accepted it into the persistence domain.
    MisuProtect,
    /// Immediately after the WPQ accepted the line (persist completed).
    WpqInsert,
    /// While the Ma-SU background engine is draining an entry (the entry is
    /// applied to NVM but not yet cleared from the WPQ).
    MasuDrain,
    /// During boot-time recovery, between two replayed WPQ entries (a
    /// nested crash).
    RecoveryReplay,
}

impl InjectionPoint {
    /// All injection points, for exhaustive sweeps.
    pub const ALL: [InjectionPoint; 5] = [
        InjectionPoint::PersistStart,
        InjectionPoint::MisuProtect,
        InjectionPoint::WpqInsert,
        InjectionPoint::MasuDrain,
        InjectionPoint::RecoveryReplay,
    ];

    /// Whether a write interrupted at this point is allowed to be lost.
    ///
    /// Once the WPQ accepted the line the persist completed and the write
    /// must survive; before that the core never saw the persist complete, so
    /// either outcome is consistent.
    pub fn loss_is_legal(self) -> bool {
        matches!(
            self,
            InjectionPoint::PersistStart | InjectionPoint::MisuProtect
        )
    }

    /// Short stable name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::PersistStart => "persist-start",
            InjectionPoint::MisuProtect => "misu-protect",
            InjectionPoint::WpqInsert => "wpq-insert",
            InjectionPoint::MasuDrain => "masu-drain",
            InjectionPoint::RecoveryReplay => "recovery-replay",
        }
    }
}

impl fmt::Display for InjectionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An armed, one-shot power-failure plan: fire at the `nth` occurrence
/// (0-based) of `point`.
///
/// A plan is deliberately a concrete counter rather than a callback so the
/// controller stays `Debug + Clone` and campaigns stay replayable: the same
/// plan against the same operation sequence fires at exactly the same
/// instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    point: InjectionPoint,
    nth: u64,
    seen: u64,
    fired: bool,
}

impl FaultPlan {
    /// A plan that fires at the `nth` occurrence (0-based) of `point`.
    pub fn new(point: InjectionPoint, nth: u64) -> Self {
        Self {
            point,
            nth,
            seen: 0,
            fired: false,
        }
    }

    /// The injection point this plan targets.
    pub fn point(&self) -> InjectionPoint {
        self.point
    }

    /// Which occurrence (0-based) the plan fires on.
    pub fn nth(&self) -> u64 {
        self.nth
    }

    /// Occurrences of the target point observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether the plan has already fired (plans are one-shot).
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Records that `point` was reached; returns `true` exactly once, when
    /// the target occurrence of the target point is hit.
    pub fn observe(&mut self, point: InjectionPoint) -> bool {
        if self.fired || point != self.point {
            return false;
        }
        let hit = self.seen == self.nth;
        self.seen += 1;
        if hit {
            self.fired = true;
        }
        hit
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.point, self.nth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_nth_occurrence() {
        let mut plan = FaultPlan::new(InjectionPoint::WpqInsert, 2);
        assert!(!plan.observe(InjectionPoint::WpqInsert)); // occurrence 0
        assert!(!plan.observe(InjectionPoint::MisuProtect)); // other point
        assert!(!plan.observe(InjectionPoint::WpqInsert)); // occurrence 1
        assert!(plan.observe(InjectionPoint::WpqInsert)); // occurrence 2: fire
        assert!(plan.fired());
        assert!(!plan.observe(InjectionPoint::WpqInsert)); // one-shot
    }

    #[test]
    fn loss_legality_follows_the_persistence_domain_boundary() {
        assert!(InjectionPoint::PersistStart.loss_is_legal());
        assert!(InjectionPoint::MisuProtect.loss_is_legal());
        assert!(!InjectionPoint::WpqInsert.loss_is_legal());
        assert!(!InjectionPoint::MasuDrain.loss_is_legal());
        assert!(!InjectionPoint::RecoveryReplay.loss_is_legal());
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let mut names: Vec<_> = InjectionPoint::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), InjectionPoint::ALL.len());
        assert_eq!(
            format!("{}", FaultPlan::new(InjectionPoint::MasuDrain, 7)),
            "masu-drain#7"
        );
    }
}
