//! Controller configuration (Table 1 plus the Dolos design-space knobs).

use dolos_crypto::latency::CryptoLatency;
use dolos_sim::trace::TraceMode;

/// Which Mi-SU design option protects the WPQ (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MiSuKind {
    /// Design option 1: per-slot CTR pads + 2-level MAC tree over the WPQ.
    /// Two MAC computations in the critical path; the full WPQ is usable
    /// because only entries are drained on ADR.
    Full,
    /// Design option 2: BMT-style single MAC per entry over
    /// (ciphertext, slot counter). One MAC in the critical path; 8/9 of the
    /// WPQ is usable because MACs drain too.
    Partial,
    /// Design option 3: like Partial but the MAC is computed *after* the
    /// write commits. Zero critical-path latency; the WPQ shrinks further to
    /// reserve ADR energy for one in-flight MAC.
    Post,
}

impl MiSuKind {
    /// All design options, in the paper's presentation order.
    pub const ALL: [MiSuKind; 3] = [MiSuKind::Full, MiSuKind::Partial, MiSuKind::Post];

    /// Short name used in reports ("full", "partial", "post").
    pub fn name(self) -> &'static str {
        match self {
            MiSuKind::Full => "full",
            MiSuKind::Partial => "partial",
            MiSuKind::Post => "post",
        }
    }

    /// Usable WPQ entries given a physical WPQ of `physical` entries,
    /// following §5.2.1 and §5.3: Full uses all 16, Partial roughly 8/9
    /// (the paper reports 13/28/57/113 for 16/32/64/128), Post additionally
    /// reserves ADR energy for one in-flight MAC (10 of 16).
    ///
    /// The paper's reported sizes are reproduced exactly; other physical
    /// sizes fall back to the ⌊8n/9⌋ approximation.
    pub fn usable_wpq_entries(self, physical: usize) -> usize {
        let partial = match physical {
            16 => 13,
            32 => 28,
            64 => 57,
            128 => 113,
            n => (n * 8 / 9).max(1),
        };
        match self {
            MiSuKind::Full => physical,
            MiSuKind::Partial => partial,
            // Post = Partial minus the entries whose ADR energy is
            // reassigned to one deferred MAC (13 -> 10 at 16 physical
            // entries); we scale that 3-of-16 ratio for other sizes.
            MiSuKind::Post => partial.saturating_sub((physical * 3 / 16).max(3)).max(1),
        }
    }

    /// MAC computations in the critical path of an insertion.
    pub fn critical_path_macs(self) -> u64 {
        match self {
            MiSuKind::Full => 2,
            MiSuKind::Partial => 1,
            MiSuKind::Post => 0,
        }
    }
}

impl core::fmt::Display for MiSuKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Integrity-tree organization and update policy of the Ma-SU (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UpdateScheme {
    /// 8-ary Merkle tree, eagerly updated root (AGIT / Anubis). Ten serial
    /// MACs per write (Table 1).
    #[default]
    EagerMerkle,
    /// 8-ary Tree of Counters, lazily updated with Phoenix shadow
    /// protection. Four serial MACs per write (Table 1).
    LazyToc,
}

impl UpdateScheme {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            UpdateScheme::EagerMerkle => "eager-mt",
            UpdateScheme::LazyToc => "lazy-toc",
        }
    }
}

/// Which controller architecture handles persist operations (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// No security at all: writes persist on WPQ insertion (the non-secure
    /// upper bound, Figure 5 with no security unit).
    IdealNonSecure,
    /// The hypothetical Figure 5-c machine: full security deferred until
    /// after the WPQ with *no* Mi-SU cost and no WPQ shrinkage. Infeasible
    /// under the ADR budget, used only as the motivation comparison (Fig 6).
    DeferredSecure,
    /// The state-of-the-art baseline (Figure 5-b): the full security
    /// pipeline runs before WPQ insertion (Anubis/AGIT — "Pre-WPQ-Secure").
    PreWpqSecure,
    /// Dolos (Figure 5-d): the chosen Mi-SU design protects the WPQ; the
    /// Ma-SU secures entries after eviction.
    Dolos(MiSuKind),
}

impl ControllerKind {
    /// Every controller architecture, in the presentation order used by the
    /// reports (non-secure bound, infeasible comparison, baseline, then the
    /// three Dolos design options).
    pub const ALL: [ControllerKind; 6] = [
        ControllerKind::IdealNonSecure,
        ControllerKind::DeferredSecure,
        ControllerKind::PreWpqSecure,
        ControllerKind::Dolos(MiSuKind::Full),
        ControllerKind::Dolos(MiSuKind::Partial),
        ControllerKind::Dolos(MiSuKind::Post),
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::IdealNonSecure => "ideal",
            ControllerKind::DeferredSecure => "deferred",
            ControllerKind::PreWpqSecure => "pre-wpq-secure",
            ControllerKind::Dolos(MiSuKind::Full) => "dolos-full",
            ControllerKind::Dolos(MiSuKind::Partial) => "dolos-partial",
            ControllerKind::Dolos(MiSuKind::Post) => "dolos-post",
        }
    }

    /// Inverse of [`ControllerKind::name`]: resolves a stable report name
    /// back to the architecture, for CLI flags and replayable repro strings.
    /// Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.name() == name)
    }
}

/// Full configuration of a [`crate::SecureMemorySystem`].
///
/// # Examples
///
/// ```
/// use dolos_core::{ControllerConfig, ControllerKind, MiSuKind};
///
/// let baseline = ControllerConfig::baseline();
/// assert_eq!(baseline.usable_wpq_entries(), 16);
///
/// let dolos = ControllerConfig::dolos(MiSuKind::Partial);
/// assert_eq!(dolos.usable_wpq_entries(), 13);
///
/// let post = ControllerConfig::dolos(MiSuKind::Post);
/// assert_eq!(post.usable_wpq_entries(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Controller architecture.
    pub kind: ControllerKind,
    /// Integrity-tree organization and update policy.
    pub scheme: UpdateScheme,
    /// Physical WPQ entries **per bank** (baseline default 16).
    pub physical_wpq_entries: usize,
    /// NVM banks (power of two). Each bank gets its own WPQ shard and
    /// drain-serialization clock; `1` (the default) is the paper's
    /// single-queue model and is cycle-identical to the unbanked code.
    pub banks: usize,
    /// Protected data region size in bytes.
    pub region_bytes: u64,
    /// Crypto latencies (Table 1 defaults).
    pub latency: CryptoLatency,
    /// Counter cache capacity in bytes (Table 1: 128 KiB).
    pub counter_cache_bytes: usize,
    /// Counter cache associativity (Table 1: 4-way).
    pub counter_cache_ways: usize,
    /// Merkle-tree metadata cache capacity in bytes (Table 1: 256 KiB).
    pub mt_cache_bytes: usize,
    /// Merkle-tree metadata cache associativity (Table 1: 8-way).
    pub mt_cache_ways: usize,
    /// Osiris stop-loss: counter blocks persist every N updates.
    pub osiris_phase: u64,
    /// Whether the volatile WPQ tag array is present (enables write
    /// coalescing and read hits, §4.5). Disabled only by the ablation
    /// benches.
    pub coalescing: bool,
    /// Deterministic key material seed (keys derive from this).
    pub key_seed: u64,
    /// Event tracing mode. `Off` (the default) makes every trace hook a
    /// single branch; `Record` buffers cycle-stamped events in each
    /// component for `SecureMemorySystem::take_trace_events`. Tracing is
    /// observation-only and never changes simulated timing.
    pub trace: TraceMode,
}

impl ControllerConfig {
    /// Default protected region: 16 MiB (sized to the workloads' footprint;
    /// the paper's 16 GB device is sparse in practice).
    pub const DEFAULT_REGION_BYTES: u64 = 16 << 20;

    /// The Pre-WPQ-Secure baseline (Anubis/AGIT, 16-entry WPQ).
    pub fn baseline() -> Self {
        Self::with_kind(ControllerKind::PreWpqSecure)
    }

    /// A Dolos controller with the given Mi-SU design.
    pub fn dolos(misu: MiSuKind) -> Self {
        Self::with_kind(ControllerKind::Dolos(misu))
    }

    /// The non-secure upper bound.
    pub fn ideal() -> Self {
        Self::with_kind(ControllerKind::IdealNonSecure)
    }

    /// The infeasible deferred-security comparison point (Fig 5-c / Fig 6).
    pub fn deferred() -> Self {
        Self::with_kind(ControllerKind::DeferredSecure)
    }

    /// Builds the default configuration for a scheme named by its stable
    /// report string ("ideal", "pre-wpq-secure", "dolos-post", ...). The
    /// scheme factory used by the differential harnesses and CLI tools;
    /// returns `None` for unknown names.
    pub fn named(name: &str) -> Option<Self> {
        ControllerKind::from_name(name).map(Self::with_kind)
    }

    fn with_kind(kind: ControllerKind) -> Self {
        Self {
            kind,
            scheme: UpdateScheme::EagerMerkle,
            physical_wpq_entries: 16,
            banks: 1,
            region_bytes: Self::DEFAULT_REGION_BYTES,
            latency: CryptoLatency::default(),
            counter_cache_bytes: 128 * 1024,
            counter_cache_ways: 4,
            mt_cache_bytes: 256 * 1024,
            mt_cache_ways: 8,
            osiris_phase: 4,
            coalescing: true,
            key_seed: 0xD0105,
            trace: TraceMode::Off,
        }
    }

    /// Sets the update scheme (builder style).
    pub fn with_scheme(mut self, scheme: UpdateScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the physical per-bank WPQ size (builder style).
    pub fn with_wpq_entries(mut self, entries: usize) -> Self {
        self.physical_wpq_entries = entries;
        self
    }

    /// Sets the NVM bank count (builder style). Must be a power of two;
    /// enforced when the memory system is built.
    pub fn with_banks(mut self, banks: usize) -> Self {
        self.banks = banks;
        self
    }

    /// Sets the protected region size (builder style).
    pub fn with_region_bytes(mut self, bytes: u64) -> Self {
        self.region_bytes = bytes;
        self
    }

    /// Overrides the MAC latency in both security units (builder style).
    pub fn with_mac_latency(mut self, cycles: u64) -> Self {
        self.latency.mac = cycles;
        self
    }

    /// Overrides the AES latency in the Ma-SU pipeline (builder style).
    ///
    /// The Mi-SU front end XORs pregenerated pads, so this knob only moves
    /// the drain-side re-encryption stage — probes use it to hold drains
    /// in flight without perturbing insert timing.
    pub fn with_aes_latency(mut self, cycles: u64) -> Self {
        self.latency.aes = cycles;
        self
    }

    /// Disables the WPQ tag array (coalescing ablation, builder style).
    pub fn without_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }

    /// Sets the counter-cache capacity (builder style).
    pub fn with_counter_cache_bytes(mut self, bytes: usize) -> Self {
        self.counter_cache_bytes = bytes;
        self
    }

    /// Sets the Merkle-tree metadata cache capacity (builder style).
    pub fn with_mt_cache_bytes(mut self, bytes: usize) -> Self {
        self.mt_cache_bytes = bytes;
        self
    }

    /// Sets the Osiris stop-loss phase (builder style).
    pub fn with_osiris_phase(mut self, phase: u64) -> Self {
        self.osiris_phase = phase;
        self
    }

    /// Sets the event-tracing mode (builder style).
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// WPQ entries usable for write buffering **per bank** under this
    /// configuration.
    ///
    /// Dolos designs shrink the usable queue per §5.2.1; every other
    /// controller uses the physical queue.
    pub fn usable_wpq_entries(&self) -> usize {
        match self.kind {
            ControllerKind::Dolos(misu) => misu.usable_wpq_entries(self.physical_wpq_entries),
            _ => self.physical_wpq_entries,
        }
    }

    /// Usable WPQ entries summed across all banks. The §5.2.1 shrinkage
    /// applies per bank (each shard reserves its own drain-MAC energy), so
    /// this is `banks ×` the per-bank figure — 4 × 13 = 52 for Partial at
    /// 4 banks, not `usable(4 × 16) = 57`.
    pub fn total_usable_wpq_entries(&self) -> usize {
        self.banks * self.usable_wpq_entries()
    }

    /// Physical WPQ entries summed across all banks.
    pub fn total_physical_wpq_entries(&self) -> usize {
        self.banks * self.physical_wpq_entries
    }

    /// Mi-SU critical-path cycles for this configuration (zero for
    /// non-Dolos controllers).
    pub fn misu_critical_cycles(&self) -> u64 {
        match self.kind {
            ControllerKind::Dolos(misu) => misu.critical_path_macs() * self.latency.mac,
            _ => 0,
        }
    }

    /// Ma-SU integrity-update cycles per write under the active scheme.
    pub fn masu_update_cycles(&self) -> u64 {
        match self.scheme {
            UpdateScheme::EagerMerkle => self.latency.eager_update_cycles(),
            UpdateScheme::LazyToc => self.latency.lazy_update_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wpq_sizing_matches_section_5_2_1() {
        assert_eq!(MiSuKind::Full.usable_wpq_entries(16), 16);
        assert_eq!(MiSuKind::Partial.usable_wpq_entries(16), 13); // 8/9 of WPQ
        assert_eq!(MiSuKind::Post.usable_wpq_entries(16), 10);
    }

    #[test]
    fn wpq_sizing_sensitivity_sweep() {
        // §5.3 compares a full-WPQ baseline with an 8/9 Partial queue:
        // 16 -> 13, 32 -> 28, 64 -> 57, 128 -> 113.
        assert_eq!(MiSuKind::Partial.usable_wpq_entries(32), 28);
        assert_eq!(MiSuKind::Partial.usable_wpq_entries(64), 57);
        assert_eq!(MiSuKind::Partial.usable_wpq_entries(128), 113);
    }

    #[test]
    fn critical_path_macs_per_design() {
        assert_eq!(MiSuKind::Full.critical_path_macs(), 2);
        assert_eq!(MiSuKind::Partial.critical_path_macs(), 1);
        assert_eq!(MiSuKind::Post.critical_path_macs(), 0);
    }

    #[test]
    fn misu_critical_cycles_follow_table_1() {
        assert_eq!(
            ControllerConfig::dolos(MiSuKind::Full).misu_critical_cycles(),
            320
        );
        assert_eq!(
            ControllerConfig::dolos(MiSuKind::Partial).misu_critical_cycles(),
            160
        );
        assert_eq!(
            ControllerConfig::dolos(MiSuKind::Post).misu_critical_cycles(),
            0
        );
        assert_eq!(ControllerConfig::baseline().misu_critical_cycles(), 0);
    }

    #[test]
    fn masu_update_cycles_per_scheme() {
        let eager = ControllerConfig::baseline();
        assert_eq!(eager.masu_update_cycles(), 1600);
        let lazy = ControllerConfig::baseline().with_scheme(UpdateScheme::LazyToc);
        assert_eq!(lazy.masu_update_cycles(), 640);
    }

    #[test]
    fn usable_entries_never_zero() {
        for kind in MiSuKind::ALL {
            assert!(kind.usable_wpq_entries(1) >= 1);
            assert!(kind.usable_wpq_entries(2) >= 1);
        }
    }

    #[test]
    fn scheme_factory_round_trips_every_name() {
        for kind in ControllerKind::ALL {
            assert_eq!(ControllerKind::from_name(kind.name()), Some(kind));
            let config = ControllerConfig::named(kind.name()).unwrap();
            assert_eq!(config.kind, kind);
        }
        assert_eq!(ControllerKind::from_name("dolos"), None);
        assert!(ControllerConfig::named("no-such-scheme").is_none());
    }

    #[test]
    fn bank_knobs_default_to_the_single_queue_model() {
        for kind in ControllerKind::ALL {
            let config = ControllerConfig::named(kind.name()).unwrap();
            assert_eq!(config.banks, 1);
            assert_eq!(
                config.total_usable_wpq_entries(),
                config.usable_wpq_entries()
            );
        }
    }

    #[test]
    fn total_capacity_scales_per_bank_not_per_pool() {
        // Shrinkage is per shard: 4 banks of 16 physical Partial entries
        // give 4 × 13 = 52 usable, not usable(64) = 57.
        let config = ControllerConfig::dolos(MiSuKind::Partial).with_banks(4);
        assert_eq!(config.usable_wpq_entries(), 13);
        assert_eq!(config.total_usable_wpq_entries(), 52);
        assert_eq!(config.total_physical_wpq_entries(), 64);
        let post = ControllerConfig::dolos(MiSuKind::Post).with_banks(8);
        assert_eq!(post.total_usable_wpq_entries(), 80);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ControllerKind::Dolos(MiSuKind::Post).name(), "dolos-post");
        assert_eq!(ControllerKind::PreWpqSecure.name(), "pre-wpq-secure");
        assert_eq!(UpdateScheme::LazyToc.name(), "lazy-toc");
        assert_eq!(MiSuKind::Full.to_string(), "full");
    }
}
