//! Global consistency audit: verifies every protected byte in NVM against
//! its security metadata.
//!
//! The audit is a debugging/assurance tool the paper's hardware could not
//! offer but a simulator can: it decrypts and MAC-checks every written data
//! line under its current counter, confirms every counter block round-trips
//! through its serialized form, and recomputes the integrity-tree root from
//! the persisted leaves. Tests and examples run it after crash/recovery
//! storms to prove the *entire* persistent image is consistent, not just the
//! lines a workload happens to read back.

use dolos_nvm::NvmDevice;

use crate::error::SecurityError;
use crate::masu::MajorSecurityUnit;

/// Outcome of a full-image audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// Data lines whose MAC and ECC verified.
    pub verified_lines: usize,
    /// Counter blocks inspected.
    pub counter_blocks: usize,
    /// Whether the recomputed tree root matched the persistent register
    /// (always true when the audit returns `Ok`).
    pub root_verified: bool,
}

impl MajorSecurityUnit {
    /// Audits every written line of the protected region.
    ///
    /// # Errors
    ///
    /// Returns the first [`SecurityError`] encountered: a data line failing
    /// its Bonsai MAC, or a tree-root mismatch.
    pub fn audit(&mut self, nvm: &mut NvmDevice) -> Result<AuditReport, SecurityError> {
        let mut report = AuditReport::default();
        let layout = *self.layout();
        // Every written data line must decrypt and verify under its current
        // counter. `read` also checks the stored MAC.
        for addr in nvm.resident_lines_in(0, layout.data_bytes()) {
            self.read(dolos_sim::Cycle::ZERO, addr, nvm)?;
            report.verified_lines += 1;
        }
        // Counter blocks must round-trip through their serialized form (a
        // corrupted encoding would silently change counters).
        let base = layout.counter_block_addr(0).as_u64();
        let end = base + layout.pages() * 64;
        report.counter_blocks = nvm.resident_lines_in(base, end).len();
        // The integrity tree over the persisted counters must match the
        // persistent root register; `verify_tree_root` recomputes it.
        self.verify_tree_root(nvm)?;
        report.root_verified = true;
        Ok(report)
    }

    /// Recomputes the integrity-tree root from persisted counter blocks and
    /// compares it with the persistent register, without mutating the tree.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::TreeRootMismatch`] on mismatch. For the lazy
    /// ToC the cached state is self-verifying, so this checks the shadow
    /// instead.
    pub fn verify_tree_root(&mut self, nvm: &NvmDevice) -> Result<(), SecurityError> {
        self.check_tree_consistency(nvm)
    }
}

/// Convenience wrapper on the full system.
impl crate::SecureMemorySystem {
    /// Runs a full-image audit (see [`MajorSecurityUnit::audit`]).
    ///
    /// For the non-secure ideal controller there is nothing to verify; the
    /// report is empty.
    ///
    /// # Errors
    ///
    /// Propagates the first integrity failure.
    ///
    /// # Panics
    ///
    /// Panics if the system is crashed (recover first).
    pub fn audit(&mut self) -> Result<AuditReport, SecurityError> {
        assert!(!self.is_crashed(), "audit requires a powered system");
        self.audit_parts()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{ControllerConfig, MiSuKind, UpdateScheme};
    use crate::SecureMemorySystem;
    use dolos_sim::Cycle;

    #[test]
    fn clean_system_audits_ok() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        let mut t = Cycle::ZERO;
        for i in 0..20u64 {
            t = sys.persist_write(t, i * 64, &[i as u8 + 1; 64]);
        }
        sys.quiesce(t);
        let report = sys.audit().expect("clean image");
        assert_eq!(report.verified_lines, 20);
        assert!(report.root_verified);
        assert!(report.counter_blocks >= 1);
    }

    #[test]
    fn audit_catches_any_tampered_line() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Full));
        let mut t = Cycle::ZERO;
        for i in 0..10u64 {
            t = sys.persist_write(t, i * 64, &[7; 64]);
        }
        sys.quiesce(t);
        // Tamper with a line the test never reads explicitly.
        sys.nvm_mut()
            .tamper(dolos_nvm::LineAddr::from_index(6), |l| l[60] ^= 2);
        assert!(sys.audit().is_err());
    }

    #[test]
    fn audit_after_crash_recovery_is_clean() {
        for scheme in [UpdateScheme::EagerMerkle, UpdateScheme::LazyToc] {
            let mut sys = SecureMemorySystem::new(
                ControllerConfig::dolos(MiSuKind::Partial).with_scheme(scheme),
            );
            let mut t = Cycle::ZERO;
            for i in 0..24u64 {
                t = sys.persist_write(t, (i % 8) * 64, &[i as u8; 64]);
            }
            sys.crash(t);
            sys.recover().expect("recovery");
            let report = sys.audit().expect("post-recovery image is consistent");
            assert!(report.verified_lines >= 8);
        }
    }

    #[test]
    fn ideal_audit_is_empty() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::ideal());
        let t = sys.persist_write(Cycle::ZERO, 0, &[1; 64]);
        sys.quiesce(t);
        let report = sys.audit().expect("nothing to verify");
        assert_eq!(report.verified_lines, 0);
    }
}
