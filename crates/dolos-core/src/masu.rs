//! The Major Security Unit (Ma-SU), §4.4.
//!
//! The Ma-SU is a full conventional secure-NVM pipeline — counter-mode AES,
//! Bonsai data MACs, integrity tree, Anubis shadow tracking, Osiris counter
//! persistence — packaged so it can run either *before* the WPQ (the
//! Pre-WPQ-Secure baseline) or *behind* it (Dolos).
//!
//! Per write it performs, functionally and with Table 1 timing:
//!
//! 1. fetch the split-counter block (counter cache, miss → NVM read with
//!    Anubis shadow-table bookkeeping);
//! 2. increment the line's counter (minor overflow re-encrypts the page);
//! 3. generate the CTR pad (AES), encrypt, compute the Bonsai data MAC and
//!    update the integrity tree (10 serial MACs eager, 4 lazy);
//! 4. stage everything in the persistent redo-log registers, then issue the
//!    NVM writes (ciphertext, MAC, periodic Osiris counter write-back).
//!
//! The returned completion time is when the redo log is filled — the point
//! after which the write is recoverable without the WPQ entry (paper §4.4:
//! steps ③ and ④ can proceed in parallel once the log is ready).

use std::collections::BTreeMap;

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::xor_in_place;
use dolos_crypto::latency::CryptoLatency;
use dolos_crypto::mac::MacEngine;
use dolos_crypto::padcache::PadCache;
use dolos_nvm::addr::LineAddr;
use dolos_nvm::{Line, NvmDevice};
use dolos_secmem::bmt::{data_mac, BonsaiMerkleTree};
use dolos_secmem::cache::{Access, SetAssocCache};
use dolos_secmem::counters::{CounterBlock, IncrementResult};
use dolos_secmem::ecc::{ecc64, probe_counter};
use dolos_secmem::layout::MetadataLayout;
use dolos_secmem::shadow::ShadowTable;
use dolos_secmem::toc::TreeOfCounters;
use dolos_sim::flat::FlatMap;
use dolos_sim::resource::Pipeline;
use dolos_sim::stats::StatSet;
use dolos_sim::trace::{EventKind, TraceEvent, TraceMode, TraceSink};
use dolos_sim::Cycle;

use crate::config::UpdateScheme;
use crate::error::SecurityError;

/// The integrity tree behind the Ma-SU.
#[derive(Debug, Clone)]
enum Tree {
    Eager(BonsaiMerkleTree),
    Lazy(TreeOfCounters),
}

/// Outcome of recovery, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasuRecovery {
    /// Counter blocks rebuilt from the shadow-table working set.
    pub rebuilt_counter_blocks: usize,
    /// Lines whose counters were recovered by Osiris probing.
    pub probed_lines: usize,
    /// Whether a staged redo-log entry was replayed.
    pub redo_replayed: bool,
    /// Simulated recovery cycles: NVM reads of the shadow working set, AES
    /// probe decryptions, and the tree-rebuild MACs, per Table 1 latencies.
    pub cycles: u64,
}

/// The Major Security Unit.
#[derive(Debug, Clone)]
pub struct MajorSecurityUnit {
    scheme: UpdateScheme,
    layout: MetadataLayout,
    aes: Aes128,
    mac: MacEngine,
    counter_cache: SetAssocCache,
    /// Merkle-tree metadata cache (Table 1: 256 KiB, 8-way). Holds interior
    /// tree nodes; a miss on the update path fetches the node from NVM.
    mt_cache: SetAssocCache,
    shadow: ShadowTable,
    tree: Tree,
    /// Persistent ECC bits co-located with each data line (keyed by line
    /// index). Nonvolatile: survives crashes like the data it rides with.
    /// Flat and sorted: lookups dominate, and audits iterate it in key
    /// order so results never depend on hasher state.
    ecc: FlatMap<u64>,
    /// Updates per counter block since its last NVM write-back.
    pending_counter_updates: FlatMap<u64>,
    /// Host-side memo cache over the counter-mode pad computation. Purely
    /// functional: hits and misses return identical pads, and the simulated
    /// AES latency is charged by the engine model either way.
    pad_cache: PadCache,
    osiris_phase: u64,
    /// One crypto/tree-update engine per NVM bank (index =
    /// [`LineAddr::bank_index`]). With a single bank this is the paper's
    /// globally serial update engine; more banks model per-bank metadata
    /// pipelines whose lazy subtree updates proceed independently.
    engines: Vec<Pipeline>,
    banks: usize,
    /// AES pad latency, kept alongside the engines so trace spans can split
    /// one engine occupancy into its encrypt and tree-update stages.
    aes_cycles: u64,
    /// Serial tree-update MAC latency of the active scheme.
    tree_cycles: u64,
    writes_processed: u64,
    overflows: u64,
    reads_served: u64,
    /// Event sink for the cycle-stamped drain-stage spans.
    trace: TraceSink,
}

impl MajorSecurityUnit {
    /// Creates a Ma-SU over `layout` with the given scheme and caches.
    // The argument list mirrors ControllerConfig's knob-per-field layout;
    // bundling them into an ad-hoc struct would just duplicate that config.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scheme: UpdateScheme,
        layout: MetadataLayout,
        latency: CryptoLatency,
        counter_cache_bytes: usize,
        counter_cache_ways: usize,
        mt_cache_bytes: usize,
        mt_cache_ways: usize,
        osiris_phase: u64,
        key_seed: u64,
    ) -> Self {
        let mut aes_key = [0u8; 16];
        aes_key[0..8].copy_from_slice(&key_seed.to_le_bytes());
        aes_key[8] = 0x33; // domain separation: Ma-SU data key
        let mut mac_key = [0u8; 16];
        mac_key[0..8].copy_from_slice(&key_seed.to_le_bytes());
        mac_key[8] = 0x44; // domain separation: Ma-SU MAC/tree key
        let mac = MacEngine::new(mac_key);
        let pages = layout.pages();
        let tree = match scheme {
            UpdateScheme::EagerMerkle => Tree::Eager(BonsaiMerkleTree::new(pages, &mac)),
            UpdateScheme::LazyToc => Tree::Lazy(TreeOfCounters::new(pages, &mac)),
        };
        let cache = SetAssocCache::with_capacity_bytes(counter_cache_bytes, counter_cache_ways);
        let mt_cache = SetAssocCache::with_capacity_bytes(mt_cache_bytes, mt_cache_ways);
        // Anubis must be able to track every metadata line either cache can
        // hold, so its capacity follows both cache sizes.
        let shadow_capacity = counter_cache_bytes / 64 + mt_cache_bytes / 64;
        let tree_cycles = match scheme {
            UpdateScheme::EagerMerkle => latency.eager_update_cycles(),
            UpdateScheme::LazyToc => latency.lazy_update_cycles(),
        };
        Self {
            scheme,
            layout,
            aes: Aes128::new(&aes_key),
            mac,
            counter_cache: cache,
            mt_cache,
            shadow: ShadowTable::new(shadow_capacity),
            tree,
            ecc: FlatMap::new(),
            pending_counter_updates: FlatMap::new(),
            // 256 direct-mapped slots: covers the same-page rewrite/read-back
            // window of every workload here at 20 KiB of host memory.
            pad_cache: PadCache::new(256),
            osiris_phase,
            engines: {
                // The integrity-tree update MACs for one write are serial
                // (Table 1); successive writes to the same bank cannot
                // overlap their tree updates either, because each update
                // rewrites the path to the root that the next depends on.
                // Each engine therefore accepts a new write only when the
                // previous update is done. One engine per bank; see
                // `set_banks`.
                let update = latency.aes + tree_cycles;
                vec![Pipeline::new(update, update)]
            },
            banks: 1,
            aes_cycles: latency.aes,
            tree_cycles,
            writes_processed: 0,
            overflows: 0,
            reads_served: 0,
            trace: TraceSink::Null,
        }
    }

    /// Reshapes the update engine into one pipeline per NVM bank,
    /// discarding any in-flight engine state. Call before issuing writes.
    /// With `banks == 1` this is the paper's single serial engine.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two.
    pub fn set_banks(&mut self, banks: usize) {
        assert!(
            banks.is_power_of_two(),
            "bank count must be a power of two, got {banks}"
        );
        let update = self.aes_cycles + self.tree_cycles;
        self.engines = (0..banks).map(|_| Pipeline::new(update, update)).collect();
        self.banks = banks;
    }

    /// Installs the event-tracing mode (discarding any buffered events).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace = TraceSink::from_mode(mode);
    }

    /// Drains buffered trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// The metadata layout in use.
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// The update scheme in use.
    pub fn scheme(&self) -> UpdateScheme {
        self.scheme
    }

    /// Writes fully processed so far.
    pub fn writes_processed(&self) -> u64 {
        self.writes_processed
    }

    fn latency_aes(&self) -> u64 {
        dolos_crypto::latency::AES_LATENCY
    }

    fn pad_for(&mut self, addr: LineAddr, packed_counter: u64) -> [u8; 64] {
        self.pad_cache.pad(&self.aes, addr.as_u64(), packed_counter)
    }

    /// Fetches the counter block for `page`, modelling the counter cache and
    /// Anubis shadow writes. Returns `(block, miss_penalty_cycles)`.
    fn fetch_counter_block(
        &mut self,
        now: Cycle,
        page: u64,
        nvm: &mut NvmDevice,
    ) -> (CounterBlock, u64) {
        if let Some(line) = self.counter_cache.probe_get(page) {
            return (CounterBlock::from_line(line), 0);
        }
        let (done, line) = nvm.read_line(now, self.layout.counter_block_addr(page));
        let penalty = done - now;
        if let Some(ev) = self.counter_cache.fill(page, line, false) {
            if ev.dirty {
                nvm.write_line(now, self.layout.counter_block_addr(ev.key), &ev.data);
                self.pending_counter_updates.remove(ev.key);
            }
            self.shadow.remove(ev.key);
        }
        self.shadow.record(page);
        (CounterBlock::from_line(&line), penalty)
    }

    fn store_counter_block(
        &mut self,
        now: Cycle,
        page: u64,
        block: &CounterBlock,
        nvm: &mut NvmDevice,
        force_writeback: bool,
    ) {
        let line = block.to_line();
        if !self.counter_cache.update(page, line) {
            // Not resident (shouldn't happen right after a fetch, but keep
            // the invariant): fill as dirty.
            if let Some(ev) = self.counter_cache.fill(page, line, true) {
                if ev.dirty {
                    nvm.write_line(now, self.layout.counter_block_addr(ev.key), &ev.data);
                    self.pending_counter_updates.remove(ev.key);
                }
                self.shadow.remove(ev.key);
            }
            self.shadow.record(page);
        }
        let pending = self.pending_counter_updates.get_mut_or_insert(page, 0);
        *pending += 1;
        if force_writeback || *pending >= self.osiris_phase {
            // Osiris stop-loss: persist the counter block.
            nvm.write_line(now, self.layout.counter_block_addr(page), &line);
            *pending = 0;
        }
    }

    fn write_data_mac(&self, nvm: &mut NvmDevice, addr: LineAddr, mac: [u8; 8]) {
        let (line_addr, offset) = self.layout.mac_slot(addr);
        nvm.tamper(line_addr, |line| {
            line[offset..offset + 8].copy_from_slice(&mac);
        });
    }

    fn read_data_mac(&self, nvm: &NvmDevice, addr: LineAddr) -> [u8; 8] {
        let (line_addr, offset) = self.layout.mac_slot(addr);
        let line = nvm.peek(line_addr);
        let mut mac = [0u8; 8];
        mac.copy_from_slice(&line[offset..offset + 8]);
        mac
    }

    /// Probes the MT cache for every interior node on `page`'s tree path,
    /// fetching misses from NVM. Returns the added latency.
    fn fetch_tree_path(&mut self, now: Cycle, page: u64, nvm: &mut NvmDevice) -> u64 {
        use dolos_secmem::bmt::ARITY;
        let mut penalty = 0u64;
        let mut idx = page;
        let mut level = 1u64;
        // Key space: disjoint from counter pages via a level tag in the
        // high bits.
        while idx > 0 || level == 1 {
            idx /= ARITY;
            let key = (level << 56) | idx;
            if self.mt_cache.probe(key) == Access::Miss {
                let (done, _) = nvm.read_line(now + penalty, self.layout.counter_block_addr(0));
                penalty += done - (now + penalty);
                if let Some(ev) = self.mt_cache.fill(key, [0; 64], false) {
                    self.shadow.remove(ev.key | (1 << 63));
                }
                self.shadow.record(key | (1 << 63));
            }
            if idx == 0 {
                break;
            }
            level += 1;
        }
        penalty
    }

    fn update_tree(&mut self, page: u64, counter_line: &Line) {
        match &mut self.tree {
            Tree::Eager(bmt) => {
                bmt.update_leaf(&self.mac, page, counter_line);
            }
            Tree::Lazy(toc) => toc.update_leaf(&self.mac, page, counter_line),
        }
    }

    /// Re-encrypts every written line of `page` after a minor-counter
    /// overflow, using `old_block` for decryption and `new_block` for
    /// re-encryption (§2.1 split-counter semantics).
    fn reencrypt_page(
        &mut self,
        now: Cycle,
        page: u64,
        old_block: &CounterBlock,
        new_block: &CounterBlock,
        skip_line: usize,
        nvm: &mut NvmDevice,
    ) {
        self.overflows += 1;
        for line_in_page in 0..64 {
            if line_in_page == skip_line {
                continue; // the triggering line is re-written by the caller
            }
            let addr = LineAddr::containing(page * 4096 + line_in_page as u64 * 64);
            let line_index = addr.line_index();
            let Some(&ecc) = self.ecc.get(line_index) else {
                continue; // never written
            };
            let old_ct = nvm.peek(addr);
            let old_counter = old_block.line_counter(line_in_page).packed();
            let mut plaintext = old_ct;
            xor_in_place(&mut plaintext, &self.pad_for(addr, old_counter));
            debug_assert_eq!(ecc64(&plaintext), ecc, "pre-overflow state consistent");
            let new_counter = new_block.line_counter(line_in_page).packed();
            let mut ct = plaintext;
            xor_in_place(&mut ct, &self.pad_for(addr, new_counter));
            nvm.write_line(now, addr, &ct);
            self.write_data_mac(
                nvm,
                addr,
                data_mac(&self.mac, addr.as_u64(), new_counter, &ct),
            );
        }
    }

    /// Processes one write through the full secure pipeline, including the
    /// data-line NVM write. See [`MajorSecurityUnit::secure_write`] for the
    /// variant that leaves the data write to the caller (the Pre-WPQ
    /// baseline, where the WPQ drains ciphertext to NVM itself).
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies outside the protected region.
    pub fn process_write(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        plaintext: &Line,
        nvm: &mut NvmDevice,
    ) -> Cycle {
        self.secure_write(now, addr, plaintext, nvm, true).0
    }

    /// Runs the secure pipeline for one write.
    ///
    /// Returns `(completion, ciphertext)`, where `completion` is the cycle
    /// the security work (counter fetch + AES + tree MACs) finishes — the
    /// point at which the write is recoverable. When `write_data` is false,
    /// metadata still persists but the data line itself is left to the
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies outside the protected region.
    pub fn secure_write(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        plaintext: &Line,
        nvm: &mut NvmDevice,
        write_data: bool,
    ) -> (Cycle, Line) {
        assert!(
            self.layout.is_data_addr(addr),
            "write outside protected region"
        );
        self.writes_processed += 1;
        let page = addr.page_index();
        let line_in_page = addr.line_in_page();

        // ① fetch counters.
        let (mut block, miss_penalty) = self.fetch_counter_block(now, page, nvm);
        let old_block = block;

        // ② increment; handle overflow.
        let result = block.increment(line_in_page);
        let counter = result.counter().packed();
        let overflowed = matches!(result, IncrementResult::PageOverflow(_));
        if overflowed {
            self.reencrypt_page(now, page, &old_block, &block, line_in_page, nvm);
        }

        // ③ crypto: pad, encrypt, data MAC, tree update. Timing per Table 1:
        // AES + (10 | 4) serial MACs, on the shared engine, after the
        // counter-fetch penalty. Interior tree nodes come from the MT cache;
        // each miss fetches the node from NVM first.
        let mt_penalty = self.fetch_tree_path(now, page, nvm);
        let start = now + miss_penalty + mt_penalty;
        let done = self.engines[addr.bank_index(self.banks)].acquire(start);
        if self.trace.is_enabled() {
            // The engine occupies one aes + tree-update slab ending at
            // `done`; split it into its re-encrypt and tree-update stages.
            let issue = Cycle::new(done.as_u64() - (self.aes_cycles + self.tree_cycles));
            let encrypted = issue + self.aes_cycles;
            self.trace
                .span(EventKind::MasuEncrypt, issue, encrypted, addr.as_u64(), 0);
            self.trace
                .span(EventKind::MasuTreeUpdate, encrypted, done, addr.as_u64(), 0);
        }

        let mut ciphertext = *plaintext;
        xor_in_place(&mut ciphertext, &self.pad_for(addr, counter));
        let mac = data_mac(&self.mac, addr.as_u64(), counter, &ciphertext);
        self.ecc.insert(addr.line_index(), ecc64(plaintext));

        let counter_line = block.to_line();
        self.update_tree(page, &counter_line);

        // ④ the redo-log registers of §4.4 are modelled by atomicity at
        // `done`: every NVM effect below happens together with the security
        // completion. A crash before `done` leaves the (uncleared) WPQ entry
        // to be replayed at recovery; a crash after `done` finds all effects
        // persisted — the two cases the paper's ready-bit protocol
        // distinguishes, with the same recoverability guarantee.
        if write_data {
            nvm.write_line(done, addr, &ciphertext);
        }
        self.write_data_mac(nvm, addr, mac);
        self.store_counter_block(done, page, &block, nvm, overflowed);
        if self.trace.is_enabled() {
            // The §4.4 redo-register commit point: security work and NVM
            // effects become atomic here.
            self.trace
                .instant(EventKind::MasuRedoCommit, done, addr.as_u64(), 0);
        }

        (done, ciphertext)
    }

    /// Decrypts `ciphertext` for `addr` under the line's *current* counter
    /// (used to serve read hits on baseline WPQ entries, which hold
    /// already-secured ciphertext).
    pub fn decrypt_current(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        ciphertext: &Line,
        nvm: &mut NvmDevice,
    ) -> Line {
        let (block, _) = self.fetch_counter_block(now, addr.page_index(), nvm);
        let counter = block.line_counter(addr.line_in_page()).packed();
        let mut plaintext = *ciphertext;
        xor_in_place(&mut plaintext, &self.pad_for(addr, counter));
        plaintext
    }

    /// Reads one protected line, verifying its Bonsai MAC.
    ///
    /// Never-written lines return zeroes without verification (no MAC
    /// exists for them yet).
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::DataMacMismatch`] on verification failure.
    pub fn read(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        nvm: &mut NvmDevice,
    ) -> Result<(Cycle, Line), SecurityError> {
        assert!(
            self.layout.is_data_addr(addr),
            "read outside protected region"
        );
        self.reads_served += 1;
        if !self.ecc.contains_key(addr.line_index()) {
            return Ok((now + 1, [0u8; 64]));
        }
        let page = addr.page_index();
        let (block, miss_penalty) = self.fetch_counter_block(now, page, nvm);
        let counter = block.line_counter(addr.line_in_page()).packed();
        let (read_done, ciphertext) = nvm.read_line(now + miss_penalty, addr);
        let stored_mac = self.read_data_mac(nvm, addr);
        if data_mac(&self.mac, addr.as_u64(), counter, &ciphertext) != stored_mac {
            return Err(SecurityError::DataMacMismatch { addr });
        }
        // Pad pre-generation hides decryption latency (§2.1).
        let mut plaintext = ciphertext;
        xor_in_place(&mut plaintext, &self.pad_for(addr, counter));
        Ok((read_done, plaintext))
    }

    /// Models the crash: volatile state (counter cache, lazy tree cache,
    /// engine) is lost. Persistent registers (root, shadow table in NVM,
    /// ECC bits) survive.
    pub fn crash(&mut self) {
        self.counter_cache.lose_all();
        self.mt_cache.lose_all();
        self.pending_counter_updates.clear();
        for engine in &mut self.engines {
            engine.reset();
        }
        if let Tree::Lazy(toc) = &mut self.tree {
            toc.crash(&self.mac);
        }
        // The eager tree's interior nodes are volatile too, but they are
        // recomputed wholesale during recovery, so nothing to do here.
    }

    /// Recovers metadata after a crash: replays the Anubis shadow working
    /// set through Osiris counter probing, rebuilds the integrity tree, and
    /// verifies it against the persistent root register.
    ///
    /// # Errors
    ///
    /// Returns a [`SecurityError`] if any counter cannot be recovered or the
    /// rebuilt tree fails verification.
    pub fn recover(&mut self, nvm: &mut NvmDevice) -> Result<MasuRecovery, SecurityError> {
        const NVM_READ: u64 = 600;
        let mut report = MasuRecovery {
            rebuilt_counter_blocks: 0,
            probed_lines: 0,
            redo_replayed: false,
            cycles: 0,
        };

        // Anubis: only shadow-tracked counter blocks can be stale.
        // Anubis tracks both counter blocks and MT nodes; only counter
        // blocks (no level tag in the high bits) need Osiris rebuilding —
        // interior nodes are recomputed wholesale below.
        let mut tracked: Vec<u64> = self
            .shadow
            .tracked()
            .into_iter()
            .filter(|k| k >> 56 == 0)
            .collect();
        // Replay in ascending page order: recovery work (and its cycle
        // accounting) must be a pure function of the tracked set, not of
        // the order the shadow table happened to allocate slots.
        tracked.sort_unstable();
        // Shadow-table scan + one counter-block read per tracked page.
        report.cycles += (tracked.len() as u64).div_ceil(8) * NVM_READ;
        for page in &tracked {
            let page = *page;
            report.cycles += NVM_READ;
            let stored = CounterBlock::from_line(&nvm.peek(self.layout.counter_block_addr(page)));
            let mut rebuilt = stored;
            let mut changed = false;
            for line_in_page in 0..64 {
                let addr = LineAddr::containing(page * 4096 + line_in_page as u64 * 64);
                let Some(&ecc) = self.ecc.get(addr.line_index()) else {
                    continue;
                };
                let ciphertext = nvm.peek(addr);
                let base = stored.line_counter(line_in_page).packed();
                let (counter, _) = probe_counter(
                    &self.aes,
                    addr.as_u64(),
                    &ciphertext,
                    ecc,
                    base,
                    self.osiris_phase,
                )
                .ok_or(SecurityError::CounterUnrecoverable { addr })?;
                report.probed_lines += 1;
                // Data-line read plus the probe decryptions actually tried.
                report.cycles += NVM_READ + (counter - base + 1) * self.latency_aes();
                if counter != base {
                    changed = true;
                    // Reconstruct (major, minor) from the packed value.
                    let major = counter / 128;
                    let minor = (counter % 128) as u8;
                    let mut fresh = CounterBlock::new();
                    // Rebuild from scratch preserving other lines.
                    for l in 0..64 {
                        let c = if l == line_in_page {
                            dolos_secmem::counters::LineCounter { major, minor }
                        } else {
                            rebuilt.line_counter(l)
                        };
                        // Replay increments to reach the target (cheap: test
                        // regions are small).
                        while fresh.line_counter(l).packed() < c.packed() {
                            fresh.increment(l);
                        }
                    }
                    rebuilt = fresh;
                }
            }
            if changed {
                report.rebuilt_counter_blocks += 1;
                nvm.poke(self.layout.counter_block_addr(page), &rebuilt.to_line());
            }
        }
        self.shadow.clear();

        // Rebuild the integrity tree from the persisted counter blocks and
        // verify against the persistent root register.
        match &mut self.tree {
            Tree::Eager(bmt) => {
                let expected_root = bmt.root(&self.mac);
                let mut rebuilt = BonsaiMerkleTree::new(self.layout.pages(), &self.mac);
                let base = self.layout.counter_block_addr(0).as_u64();
                let end = base + self.layout.pages() * 64;
                for addr in nvm.resident_lines_in(base, end) {
                    let page = (addr.as_u64() - base) / 64;
                    rebuilt.update_leaf(&self.mac, page, &nvm.peek(addr));
                    report.cycles +=
                        NVM_READ + rebuilt.height() as u64 * dolos_crypto::latency::MAC_LATENCY;
                }
                if rebuilt.root(&self.mac) != expected_root {
                    return Err(SecurityError::TreeRootMismatch);
                }
                *bmt = rebuilt;
            }
            Tree::Lazy(toc) => {
                toc.recover(&self.mac)
                    .map_err(|_| SecurityError::TocShadowTampered)?;
            }
        }
        Ok(report)
    }

    /// Verifies the integrity tree against the *current* counters (NVM
    /// overlaid with dirty cached blocks), without mutating the tree.
    pub(crate) fn check_tree_consistency(&mut self, nvm: &NvmDevice) -> Result<(), SecurityError> {
        let layout = self.layout;
        let base = layout.counter_block_addr(0).as_u64();
        let end = base + layout.pages() * 64;
        let mut contents: BTreeMap<u64, Line> = BTreeMap::new();
        for addr in nvm.resident_lines_in(base, end) {
            contents.insert((addr.as_u64() - base) / 64, nvm.peek(addr));
        }
        for (page, line) in self.counter_cache.dirty_blocks() {
            contents.insert(page, line);
        }
        match &mut self.tree {
            Tree::Eager(bmt) => {
                let recomputed =
                    BonsaiMerkleTree::recompute_root(&self.mac, layout.pages(), &contents);
                if recomputed != bmt.root(&self.mac) {
                    return Err(SecurityError::TreeRootMismatch);
                }
            }
            Tree::Lazy(toc) => {
                for (&page, line) in &contents {
                    if !toc.verify_leaf(&self.mac, page, line) {
                        return Err(SecurityError::TreeRootMismatch);
                    }
                }
            }
        }
        Ok(())
    }

    /// Snapshots Ma-SU statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = self.counter_cache.stats("ctr_cache");
        s.merge(&self.mt_cache.stats("mt_cache"));
        s.merge(&self.shadow.stats());
        s.set("masu.writes", self.writes_processed as f64);
        s.set("masu.reads", self.reads_served as f64);
        s.set("masu.overflows", self.overflows as f64);
        s.set(
            "masu.engine_ops",
            self.engines.iter().map(Pipeline::operations).sum::<u64>() as f64,
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masu(scheme: UpdateScheme) -> (MajorSecurityUnit, NvmDevice) {
        let layout = MetadataLayout::new(1 << 20);
        (
            MajorSecurityUnit::new(
                scheme,
                layout,
                CryptoLatency::default(),
                8 * 1024,
                4,
                256 * 1024,
                8,
                4,
                7,
            ),
            NvmDevice::new(),
        )
    }

    fn addr(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        let pt = [0x42u8; 64];
        m.process_write(Cycle::ZERO, addr(5), &pt, &mut nvm);
        let (_, got) = m.read(Cycle::ZERO, addr(5), &mut nvm).unwrap();
        assert_eq!(got, pt);
    }

    #[test]
    fn data_is_encrypted_in_nvm() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        let pt = [0x42u8; 64];
        m.process_write(Cycle::ZERO, addr(5), &pt, &mut nvm);
        assert_ne!(nvm.peek(addr(5)), pt);
    }

    #[test]
    fn rewrites_change_ciphertext() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        let pt = [0x42u8; 64];
        m.process_write(Cycle::ZERO, addr(5), &pt, &mut nvm);
        let ct1 = nvm.peek(addr(5));
        m.process_write(Cycle::ZERO, addr(5), &pt, &mut nvm);
        let ct2 = nvm.peek(addr(5));
        assert_ne!(ct1, ct2, "counter bump must change the pad");
        let (_, got) = m.read(Cycle::ZERO, addr(5), &mut nvm).unwrap();
        assert_eq!(got, pt);
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        let (_, got) = m.read(Cycle::ZERO, addr(9), &mut nvm).unwrap();
        assert_eq!(got, [0u8; 64]);
    }

    #[test]
    fn tampered_data_is_detected_on_read() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        m.process_write(Cycle::ZERO, addr(5), &[1; 64], &mut nvm);
        nvm.tamper(addr(5), |line| line[0] ^= 0xFF);
        assert!(matches!(
            m.read(Cycle::ZERO, addr(5), &mut nvm),
            Err(SecurityError::DataMacMismatch { .. })
        ));
    }

    #[test]
    fn replayed_data_is_detected_on_read() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        m.process_write(Cycle::ZERO, addr(5), &[1; 64], &mut nvm);
        let stale = nvm.snapshot_line(addr(5));
        let stale_mac = m.read_data_mac(&nvm, addr(5));
        m.process_write(Cycle::ZERO, addr(5), &[2; 64], &mut nvm);
        // Attacker rolls back both data and MAC.
        nvm.replay_snapshot(addr(5), &stale);
        m.write_data_mac(&mut nvm, addr(5), stale_mac);
        assert!(m.read(Cycle::ZERO, addr(5), &mut nvm).is_err());
    }

    #[test]
    fn relocated_data_is_detected_on_read() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        m.process_write(Cycle::ZERO, addr(5), &[1; 64], &mut nvm);
        m.process_write(Cycle::ZERO, addr(6), &[2; 64], &mut nvm);
        // Swap the two lines and their MACs.
        let a = nvm.peek(addr(5));
        let b = nvm.peek(addr(6));
        nvm.poke(addr(5), &b);
        nvm.poke(addr(6), &a);
        let mac_a = m.read_data_mac(&nvm, addr(5));
        let mac_b = m.read_data_mac(&nvm, addr(6));
        m.write_data_mac(&mut nvm, addr(5), mac_b);
        m.write_data_mac(&mut nvm, addr(6), mac_a);
        assert!(m.read(Cycle::ZERO, addr(5), &mut nvm).is_err());
        assert!(m.read(Cycle::ZERO, addr(6), &mut nvm).is_err());
    }

    #[test]
    fn timing_matches_table_1_eager() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        // First write misses the counter cache (600) and the MT cache for
        // page 0's single interior node (650: a 600-cycle read issued one
        // 50-cycle port slot behind the counter read): then AES + 10 MACs.
        let done = m.process_write(Cycle::ZERO, addr(5), &[1; 64], &mut nvm);
        assert_eq!(done.as_u64(), 600 + 650 + 40 + 1600);
        // Second write to the same page hits both caches: 40 + 1600.
        let done2 = m.process_write(done, addr(6), &[1; 64], &mut nvm);
        assert_eq!(done2 - done, 40 + 1600);
    }

    #[test]
    fn timing_matches_table_1_lazy() {
        let (mut m, mut nvm) = masu(UpdateScheme::LazyToc);
        let done = m.process_write(Cycle::ZERO, addr(5), &[1; 64], &mut nvm);
        assert_eq!(done.as_u64(), 600 + 650 + 40 + 640);
    }

    #[test]
    fn per_bank_engines_overlap_independent_updates() {
        let (mut m, mut nvm) = masu(UpdateScheme::LazyToc);
        m.set_banks(4);
        let done = m.process_write(Cycle::ZERO, addr(0), &[1; 64], &mut nvm);
        assert_eq!(done.as_u64(), 600 + 650 + 40 + 640);
        // Same page (caches hit), different bank: bank 1's engine is idle,
        // so this update is not serialized behind bank 0's.
        let done2 = m.process_write(Cycle::ZERO, addr(1), &[1; 64], &mut nvm);
        assert_eq!(done2.as_u64(), 40 + 640);
        let s = m.stats();
        assert_eq!(s.get("masu.engine_ops"), Some(2.0));
    }

    #[test]
    fn crash_and_recover_restores_reads() {
        for scheme in [UpdateScheme::EagerMerkle, UpdateScheme::LazyToc] {
            let (mut m, mut nvm) = masu(scheme);
            for i in 0..20u64 {
                m.process_write(Cycle::ZERO, addr(i), &[i as u8 + 1; 64], &mut nvm);
            }
            m.crash();
            nvm.power_cycle();
            m.recover(&mut nvm).expect("clean recovery");
            for i in 0..20u64 {
                let (_, got) = m.read(Cycle::ZERO, addr(i), &mut nvm).unwrap();
                assert_eq!(got, [i as u8 + 1; 64], "scheme {scheme:?} line {i}");
            }
        }
    }

    #[test]
    fn recovery_probes_stale_counters() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        // Phase 4: three writes leave the NVM counter stale by 3.
        for _ in 0..3 {
            m.process_write(Cycle::ZERO, addr(5), &[9; 64], &mut nvm);
        }
        m.crash();
        let report = m.recover(&mut nvm).expect("recovery");
        assert!(report.probed_lines > 0);
        assert!(report.rebuilt_counter_blocks > 0);
        let (_, got) = m.read(Cycle::ZERO, addr(5), &mut nvm).unwrap();
        assert_eq!(got, [9; 64]);
    }

    #[test]
    fn post_crash_tampering_fails_recovery() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        m.process_write(Cycle::ZERO, addr(5), &[1; 64], &mut nvm);
        m.crash();
        nvm.tamper(addr(5), |line| line[0] ^= 0xFF);
        assert!(m.recover(&mut nvm).is_err());
    }

    #[test]
    fn minor_overflow_reencrypts_page() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        m.process_write(Cycle::ZERO, addr(1), &[0xAA; 64], &mut nvm);
        let before = nvm.peek(addr(1));
        // Overflow line 0's minor counter (127 increments + 1).
        for _ in 0..=127u32 {
            m.process_write(Cycle::ZERO, addr(0), &[0xBB; 64], &mut nvm);
        }
        let s = m.stats();
        assert!(s.get_or_zero("masu.overflows") >= 1.0);
        // Line 1 was re-encrypted under the new epoch...
        assert_ne!(nvm.peek(addr(1)), before);
        // ...and still reads back correctly.
        let (_, got) = m.read(Cycle::ZERO, addr(1), &mut nvm).unwrap();
        assert_eq!(got, [0xAA; 64]);
        let (_, got0) = m.read(Cycle::ZERO, addr(0), &mut nvm).unwrap();
        assert_eq!(got0, [0xBB; 64]);
    }

    #[test]
    fn stats_expose_cache_behaviour() {
        let (mut m, mut nvm) = masu(UpdateScheme::EagerMerkle);
        m.process_write(Cycle::ZERO, addr(0), &[1; 64], &mut nvm);
        m.process_write(Cycle::ZERO, addr(1), &[1; 64], &mut nvm);
        let s = m.stats();
        assert_eq!(s.get("masu.writes"), Some(2.0));
        assert_eq!(s.get("ctr_cache.misses"), Some(1.0));
        assert_eq!(s.get("ctr_cache.hits"), Some(1.0));
    }
}
