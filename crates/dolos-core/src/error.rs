//! Error types for recovery and integrity verification.

use core::fmt;

use dolos_nvm::addr::LineAddr;

use crate::inject::InjectionPoint;

/// An integrity or recovery failure detected by the secure memory system.
///
/// Every variant corresponds to an attack (or corruption) from the threat
/// model in §4.1 being *detected* — the security property the system must
/// provide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecurityError {
    /// A WPQ dump entry failed MAC verification during Mi-SU recovery
    /// (spoofed, relocated, or replayed dump content).
    WpqEntryTampered {
        /// The dump slot that failed verification.
        slot: usize,
    },
    /// The recovered WPQ tree root does not match the persistent root
    /// register (Full-WPQ design).
    WpqRootMismatch,
    /// The dump's address/MAC/drain-order tables do not match the
    /// persistent table register (spliced, torn, or stale-epoch tables).
    DumpTableMismatch,
    /// The recomputed counter-tree root does not match the persistent root
    /// register after Ma-SU recovery.
    TreeRootMismatch,
    /// A data line failed its Bonsai MAC check on read.
    DataMacMismatch {
        /// The offending line.
        addr: LineAddr,
    },
    /// Osiris probing could not find any counter matching the stored ECC.
    CounterUnrecoverable {
        /// The offending line.
        addr: LineAddr,
    },
    /// The Phoenix shadow region for the lazily-updated ToC failed
    /// verification.
    TocShadowTampered,
    /// [`recover`](crate::SecureMemorySystem::recover) was called on a
    /// system that has not crashed.
    NotCrashed,
    /// An armed [`FaultPlan`](crate::inject::FaultPlan) fired: power failed
    /// at the named injection point and the system is now crashed. Not an
    /// attack — the signal the chaos harness uses to know its scheduled
    /// fault actually landed.
    PowerInterrupted {
        /// The injection point at which power was cut.
        point: InjectionPoint,
    },
}

impl fmt::Display for SecurityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityError::WpqEntryTampered { slot } => {
                write!(f, "WPQ dump entry {slot} failed integrity verification")
            }
            SecurityError::WpqRootMismatch => {
                write!(
                    f,
                    "recovered WPQ root does not match the persistent register"
                )
            }
            SecurityError::DumpTableMismatch => {
                write!(
                    f,
                    "WPQ dump tables do not match the persistent table register"
                )
            }
            SecurityError::TreeRootMismatch => {
                write!(
                    f,
                    "recomputed integrity-tree root does not match the persistent register"
                )
            }
            SecurityError::DataMacMismatch { addr } => {
                write!(f, "data MAC mismatch at {addr}")
            }
            SecurityError::CounterUnrecoverable { addr } => {
                write!(f, "no counter candidate matches the stored ECC at {addr}")
            }
            SecurityError::TocShadowTampered => {
                write!(f, "tree-of-counters shadow region failed verification")
            }
            SecurityError::NotCrashed => {
                write!(f, "recover called on a system that has not crashed")
            }
            SecurityError::PowerInterrupted { point } => {
                write!(f, "injected power failure fired at {point}")
            }
        }
    }
}

impl std::error::Error for SecurityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SecurityError::DataMacMismatch {
            addr: LineAddr::from_index(4),
        };
        assert!(e.to_string().contains("0x100"));
        assert!(SecurityError::TreeRootMismatch.to_string().contains("root"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(SecurityError::WpqRootMismatch);
    }
}
