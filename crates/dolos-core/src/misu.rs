//! The Minor Security Unit (Mi-SU), §4.3.
//!
//! The Mi-SU protects only the WPQ, and only for the one moment that
//! matters: the ADR drain after a power failure. Its design exploits two
//! properties of the WPQ: it is tiny, and its encryption pads can be
//! pre-generated, because each slot's pad depends only on (slot, persistent
//! counter register) — values known at boot.
//!
//! Pads are generated with AES-CTR where the counter for slot `s` is
//! `persistent_counter + s`. The persistent counter register advances by the
//! physical WPQ size on every recovery, so a (slot, counter) pair is exposed
//! to the attacker at most once: the single drain in which it reached NVM.
//! Re-using a pad for successive entries *within* a run is safe because only
//! the final occupant of a slot is ever drained.
//!
//! Addresses are kept in the parallel volatile tag array rather than being
//! encrypted, one of the two equivalent options of §4.5 (the attacker
//! observes addresses on the bus during normal operation anyway).
//!
//! The three design options trade critical-path MACs against usable WPQ
//! entries; see [`MiSuKind`].

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::{pad_into, xor_in_place, IvBuilder};
use dolos_crypto::mac::{Mac64, MacEngine};
use dolos_nvm::addr::LineAddr;
use dolos_nvm::wpq::WpqEntry;
use dolos_nvm::{Line, NvmDevice};
use dolos_secmem::layout::MetadataLayout;
use dolos_sim::trace::{EventKind, TraceEvent, TraceMode, TraceSink};
use dolos_sim::Cycle;

use crate::config::MiSuKind;
use crate::error::SecurityError;

/// Sentinel for an empty slot in the dumped address table.
const EMPTY_SLOT: u64 = u64::MAX;

/// Storage overhead of one Mi-SU instance (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiSuStorage {
    /// Persistent counter register bytes.
    pub persistent_counter_bytes: usize,
    /// Persistent MAC register bytes.
    pub mac_bytes: usize,
    /// Pre-generated pad storage bytes.
    pub pad_bytes: usize,
    /// Volatile tag-array bytes enabling coalescing (§5.5: 8 B per slot).
    pub tag_array_bytes: usize,
}

impl MiSuStorage {
    /// Total persistent + volatile storage in bytes.
    pub fn total_bytes(&self) -> usize {
        self.persistent_counter_bytes + self.mac_bytes + self.pad_bytes + self.tag_array_bytes
    }
}

/// The Minor Security Unit.
///
/// # Examples
///
/// ```
/// use dolos_core::misu::MinorSecurityUnit;
/// use dolos_core::MiSuKind;
/// use dolos_sim::Cycle;
///
/// let mut misu = MinorSecurityUnit::new(MiSuKind::Partial, 16, 0xD0105);
/// assert_eq!(misu.usable_entries(), 13);
///
/// let plaintext = [7u8; 64];
/// let addr = dolos_nvm::LineAddr::new(0x40).unwrap();
/// assert!(!misu.is_busy(Cycle::ZERO));
/// let (done, ciphertext, mac) = misu.protect(Cycle::ZERO, 0, addr, &plaintext);
/// assert_eq!(done.as_u64(), 160); // one MAC in the critical path
/// assert!(mac.is_some());
/// assert_eq!(misu.decrypt(0, &ciphertext), plaintext);
/// ```
#[derive(Debug, Clone)]
pub struct MinorSecurityUnit {
    kind: MiSuKind,
    physical_entries: usize,
    usable_entries: usize,
    aes: Aes128,
    mac: MacEngine,
    mac_latency: u64,
    /// Persistent in-processor register: base counter of the current epoch.
    persistent_counter: u64,
    /// Pre-generated per-slot pads (regenerated at boot / after drain).
    pads: Vec<Line>,
    /// Full design: persistent per-slot leaf-MAC registers.
    leaf_macs: Vec<Mac64>,
    /// Full design: persistent WPQ root register.
    root: Mac64,
    /// Full design: `root` lags the leaf MACs (host-time memoization).
    ///
    /// The root is a pure function of `leaf_macs`, and nothing observes it
    /// between writes — only an ADR drain (and the recovery that replays
    /// it) compares against the register. Deferring the streaming recompute
    /// from every protect/clear to the drain point keeps the register
    /// value-identical at every observation while skipping the per-write
    /// host MAC chain. Simulated MAC latency is still charged per write by
    /// [`Self::protect`], so this moves no simulated cycle.
    root_dirty: bool,
    /// Persistent dump-table register: MAC over the address, MAC, and
    /// drain-order tables written by the last ADR dump. Protects the dump's
    /// *structure* — without it an attacker could splice a stale order
    /// table into a fresh dump and silently drop or reorder replay.
    table_root: Mac64,
    /// Next cycle at which the pipelined MAC engine can accept work.
    engine_next_issue: Cycle,
    /// Post design: completion time of the in-flight deferred MAC.
    deferred_busy_until: Cycle,
    /// Post design: number of writes that found the unit busy.
    busy_rejections: u64,
    /// Event sink for the cycle-stamped MAC begin/end spans.
    trace: TraceSink,
}

impl MinorSecurityUnit {
    /// Creates a Mi-SU for a physical WPQ of `physical_entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `physical_entries` is zero.
    pub fn new(kind: MiSuKind, physical_entries: usize, key_seed: u64) -> Self {
        Self::with_mac_latency(
            kind,
            physical_entries,
            key_seed,
            dolos_crypto::latency::MAC_LATENCY,
        )
    }

    /// Creates a Mi-SU with an explicit MAC latency (sensitivity sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `physical_entries` is zero.
    pub fn with_mac_latency(
        kind: MiSuKind,
        physical_entries: usize,
        key_seed: u64,
        mac_latency: u64,
    ) -> Self {
        Self::with_geometry(kind, 1, physical_entries, key_seed, mac_latency)
    }

    /// Creates a Mi-SU for a bank-sharded WPQ: `banks` shards of
    /// `per_bank_physical` slots each. One Mi-SU protects the whole set
    /// (the MAC engine and the persistent registers stay single, per the
    /// paper); only the pad/MAC arrays and the dump geometry scale.
    ///
    /// The §5.2.1 shrinkage applies *per shard* — each bank reserves its
    /// own drain-MAC energy — so the usable total is
    /// `banks × usable(per_bank_physical)`, not `usable(banks × per_bank)`.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or `per_bank_physical` is
    /// zero.
    pub fn with_geometry(
        kind: MiSuKind,
        banks: usize,
        per_bank_physical: usize,
        key_seed: u64,
        mac_latency: u64,
    ) -> Self {
        assert!(per_bank_physical > 0, "WPQ must have entries");
        assert!(
            banks.is_power_of_two(),
            "bank count must be a power of two, got {banks}"
        );
        let physical_entries = banks * per_bank_physical;
        let usable_entries = banks * kind.usable_wpq_entries(per_bank_physical);
        let mut aes_key = [0u8; 16];
        aes_key[0..8].copy_from_slice(&key_seed.to_le_bytes());
        aes_key[8] = 0x11; // domain separation: Mi-SU encryption key
        let mut mac_key = [0u8; 16];
        mac_key[0..8].copy_from_slice(&key_seed.to_le_bytes());
        mac_key[8] = 0x22; // domain separation: Mi-SU MAC key
        let aes = Aes128::new(&aes_key);
        let mac = MacEngine::new(mac_key);
        let mut unit = Self {
            kind,
            physical_entries,
            usable_entries,
            aes,
            mac,
            mac_latency,
            persistent_counter: 0,
            pads: Vec::new(),
            leaf_macs: vec![[0; 8]; usable_entries],
            root: [0; 8],
            root_dirty: false,
            table_root: [0; 8],
            engine_next_issue: Cycle::ZERO,
            deferred_busy_until: Cycle::ZERO,
            busy_rejections: 0,
            trace: TraceSink::Null,
        };
        unit.regenerate_pads();
        unit.recompute_full_tree();
        unit
    }

    /// Overrides the MAC latency (sensitivity sweeps).
    pub fn set_mac_latency(&mut self, cycles: u64) {
        self.mac_latency = cycles;
    }

    /// Installs the event-tracing mode (discarding any buffered events).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace = TraceSink::from_mode(mode);
    }

    /// Drains buffered trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// The design option in use.
    pub fn kind(&self) -> MiSuKind {
        self.kind
    }

    /// WPQ entries usable for buffering under this design.
    pub fn usable_entries(&self) -> usize {
        self.usable_entries
    }

    /// The persistent counter register value (current epoch base).
    pub fn persistent_counter(&self) -> u64 {
        self.persistent_counter
    }

    /// Writes rejected because the Post design's deferred MAC was in flight.
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections
    }

    /// When the Post design's deferred MAC engine becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.deferred_busy_until
    }

    fn slot_counter(&self, slot: usize) -> u64 {
        self.persistent_counter + slot as u64
    }

    fn regenerate_pads(&mut self) {
        // Regenerated at every epoch advance (boot, post-drain, recovery
        // finish): reuse the slot buffers in place rather than rebuilding
        // the Vec, so steady-state epoch turnover allocates nothing.
        self.pads.resize(self.usable_entries, [0u8; 64]);
        for slot in 0..self.usable_entries {
            let iv = IvBuilder::new()
                .page_id(slot as u64) // slot index stands in for the address
                .counter(self.slot_counter(slot))
                .build();
            pad_into(&self.aes, &iv, &mut self.pads[slot]);
        }
    }

    fn recompute_full_tree(&mut self) {
        // Materializes the deferred Full-design root; stream the leaf MACs
        // instead of collecting a slice-of-slices per call. Protect/clear
        // only mark `root_dirty`; the register catches up here, at the
        // drain (or recovery-reset) observation point.
        if self.kind == MiSuKind::Full {
            let mut mac = self.mac.streamer(self.leaf_macs.len());
            for leaf in &self.leaf_macs {
                mac.part(leaf);
            }
            self.root = mac.finish();
        }
        self.root_dirty = false;
    }

    /// MAC over the dump's three tables, bound to the current epoch.
    /// Stored in the persistent `table_root` register at dump time and
    /// re-checked at recovery: the tables name *which* slots replay and in
    /// what order, so they need integrity just as the payloads do.
    fn dump_table_mac(
        &self,
        addr_table: &[u64],
        mac_table: &[[u8; 8]],
        order_table: &[u64],
    ) -> Mac64 {
        // Each table streams as one logical part (same tag as MACing the
        // concatenated bytes) without materializing concatenation buffers.
        let mut mac = self.mac.streamer(4);
        mac.part(&self.persistent_counter.to_le_bytes());
        mac.begin_part(addr_table.len() as u64 * 8);
        for v in addr_table {
            mac.update(&v.to_le_bytes());
        }
        mac.end_part();
        mac.begin_part(mac_table.len() as u64 * 8);
        for m in mac_table {
            mac.update(m);
        }
        mac.end_part();
        mac.begin_part(order_table.len() as u64 * 8);
        for v in order_table {
            mac.update(&v.to_le_bytes());
        }
        mac.end_part();
        mac.finish()
    }

    fn entry_mac(&self, slot: usize, addr: LineAddr, ciphertext: &Line) -> Mac64 {
        self.mac.tag_parts(&[
            &self.slot_counter(slot).to_le_bytes(),
            &addr.as_u64().to_le_bytes(),
            ciphertext,
        ])
    }

    /// Whether the unit must reject a write at `now`.
    ///
    /// Only the Post design rejects: its single allowed deferred MAC may
    /// still be in flight ("once a write request is accepted, i.e., MiSU is
    /// not full or busy"). Rejections are counted.
    pub fn is_busy(&mut self, now: Cycle) -> bool {
        if self.kind == MiSuKind::Post && self.deferred_busy_until > now {
            self.busy_rejections += 1;
            true
        } else {
            false
        }
    }

    /// Encrypts a write for WPQ slot `slot`, produces its MAC per the active
    /// design, and returns the cycle at which the critical-path work
    /// completes (the persist-completion time).
    ///
    /// The MAC engine is pipelined at one computation per
    /// [`dolos_crypto::latency::MAC_LATENCY`]: Full's two chained MACs give
    /// a 2·MAC latency at 1·MAC occupancy; Partial takes 1·MAC; Post
    /// completes immediately and books the engine for one deferred MAC
    /// (ADR reserves the energy to finish it if power fails first).
    pub fn protect(
        &mut self,
        now: Cycle,
        slot: usize,
        addr: LineAddr,
        plaintext: &Line,
    ) -> (Cycle, Line, Option<Mac64>) {
        assert!(slot < self.usable_entries, "slot outside usable WPQ");
        let mut ciphertext = *plaintext;
        xor_in_place(&mut ciphertext, &self.pads[slot]);
        let issue = now.max(self.engine_next_issue);
        // The Mi-SU is deliberately tiny: a single MAC engine computes both
        // of Full's chained MACs, so its occupancy per entry equals its
        // critical-path MAC count.
        self.engine_next_issue = issue + self.kind.critical_path_macs().max(1) * self.mac_latency;
        let (done, mac) = match self.kind {
            MiSuKind::Full => {
                self.leaf_macs[slot] = self.entry_mac(slot, addr, &ciphertext);
                self.root_dirty = true;
                if self.trace.is_enabled() {
                    let mid = issue + self.mac_latency;
                    // Leaf MAC, then the chained WPQ-root recompute.
                    self.trace
                        .span(EventKind::MisuMac, issue, mid, addr.as_u64(), 1);
                    self.trace.span(
                        EventKind::MisuMac,
                        mid,
                        mid + self.mac_latency,
                        addr.as_u64(),
                        2,
                    );
                }
                (issue + 2 * self.mac_latency, None)
            }
            MiSuKind::Partial => {
                if self.trace.is_enabled() {
                    self.trace.span(
                        EventKind::MisuMac,
                        issue,
                        issue + self.mac_latency,
                        addr.as_u64(),
                        1,
                    );
                }
                (
                    issue + self.mac_latency,
                    Some(self.entry_mac(slot, addr, &ciphertext)),
                )
            }
            MiSuKind::Post => {
                // The write commits now; the MAC completes in background.
                self.deferred_busy_until = issue + self.mac_latency;
                if self.trace.is_enabled() {
                    // value 0: deferred, off the persist critical path.
                    self.trace.span(
                        EventKind::MisuMac,
                        issue,
                        self.deferred_busy_until,
                        addr.as_u64(),
                        0,
                    );
                }
                (now, Some(self.entry_mac(slot, addr, &ciphertext)))
            }
        };
        (done, ciphertext, mac)
    }

    /// Marks a slot cleared after the Ma-SU fully processed it (Full design
    /// refreshes the slot's leaf MAC so the persistent root stays accurate).
    pub fn on_clear(&mut self, slot: usize) {
        if self.kind == MiSuKind::Full {
            self.leaf_macs[slot] = [0; 8];
            self.root_dirty = true;
        }
    }

    /// Decrypts a WPQ payload (one XOR with the slot pad — §4.5 notes this
    /// costs a single cycle on read hits).
    pub fn decrypt(&self, slot: usize, ciphertext: &Line) -> Line {
        let mut plaintext = *ciphertext;
        xor_in_place(&mut plaintext, &self.pads[slot]);
        plaintext
    }

    /// ADR drain: dumps the occupied WPQ entries (plus, for Partial/Post,
    /// their MACs) into the NVM dump region. Runs on reserve power — no
    /// simulated time is charged, matching the standard ADR budget the
    /// design preserves.
    ///
    /// Dump layout within the region: one line per physical slot, then the
    /// address table, then the MAC lines, then the drain-order table.
    /// `entries` must be in ring (fetch) order: recovery replays them in
    /// exactly that order so that an older un-cleared write to an address
    /// can never overwrite a newer one.
    pub fn drain_to_nvm(
        &mut self,
        entries: &[WpqEntry],
        nvm: &mut NvmDevice,
        layout: &MetadataLayout,
    ) {
        // First observation of the root register since the last write:
        // materialize the deferred Full-design root so the dump (and the
        // recovery that re-derives it from the dumped entries) sees exactly
        // the value an eager per-write recompute would have left here.
        if self.root_dirty {
            self.recompute_full_tree();
        }
        let slots = self.physical_entries as u64;
        // Address table: physical_entries u64 values, EMPTY_SLOT when free.
        let mut addr_table = vec![EMPTY_SLOT; self.physical_entries];
        let mut mac_table = vec![[0u8; 8]; self.physical_entries];
        let mut order_table = vec![EMPTY_SLOT; self.physical_entries];
        for (pos, entry) in entries.iter().enumerate() {
            nvm.poke(layout.wpq_dump_addr(entry.slot as u64), &entry.payload);
            addr_table[entry.slot] = entry.addr.as_u64();
            order_table[pos] = entry.slot as u64;
            if let Some(mac) = entry.mac {
                mac_table[entry.slot] = mac;
            }
        }
        // The tables' integrity register: one 8-byte persistent-register
        // write, within the reserve-energy budget alongside the dump burst.
        self.table_root = self.dump_table_mac(&addr_table, &mac_table, &order_table);
        let addr_lines = self.physical_entries.div_ceil(8) as u64;
        let tables = [
            &addr_table,
            &mac_table
                .iter()
                .map(|m| u64::from_le_bytes(*m))
                .collect::<Vec<_>>(),
            &order_table,
        ];
        for (t, table) in tables.iter().enumerate() {
            for (i, chunk) in table.chunks(8).enumerate() {
                let mut line = [0u8; 64];
                for (j, &v) in chunk.iter().enumerate() {
                    line[j * 8..j * 8 + 8].copy_from_slice(&v.to_le_bytes());
                }
                nvm.poke(
                    layout.wpq_dump_addr(slots + t as u64 * addr_lines + i as u64),
                    &line,
                );
            }
        }
    }

    /// Boot-time recovery: reads the dump region back, verifies integrity,
    /// and returns the decrypted writes in slot order for Ma-SU replay.
    /// Afterwards the persistent counter register advances by the physical
    /// WPQ size and fresh pads are generated, so drained pads never recur.
    ///
    /// # Errors
    ///
    /// Returns a [`SecurityError`] if any occupied entry fails MAC
    /// verification (Partial/Post) or the recomputed root does not match the
    /// persistent root register (Full).
    pub fn recover_from_nvm(
        &mut self,
        nvm: &NvmDevice,
        layout: &MetadataLayout,
    ) -> Result<Vec<(LineAddr, Line)>, SecurityError> {
        // Normally a no-op: the drain that produced the dump already
        // materialized the root. Guards direct callers that skipped it.
        if self.root_dirty {
            self.recompute_full_tree();
        }
        let recovered = self.read_dump(nvm, layout)?;
        self.finish_recovery();
        Ok(recovered)
    }

    /// Reads and verifies the WPQ dump without mutating any Mi-SU state.
    ///
    /// Recovery is split in two so it is *restartable*: a nested crash
    /// between replayed entries leaves the persistent counter (and thus the
    /// pad/MAC epoch) untouched, and a second recovery verifies the same
    /// dump under the same epoch. Only [`Self::finish_recovery`] — called
    /// once every entry has been replayed — advances the epoch.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::recover_from_nvm`].
    pub fn read_dump(
        &self,
        nvm: &NvmDevice,
        layout: &MetadataLayout,
    ) -> Result<Vec<(LineAddr, Line)>, SecurityError> {
        let slots = self.physical_entries as u64;
        let addr_lines = self.physical_entries.div_ceil(8) as u64;
        let mut addr_table = vec![EMPTY_SLOT; self.physical_entries];
        for i in 0..addr_lines {
            let line = nvm.peek(layout.wpq_dump_addr(slots + i));
            for j in 0..8 {
                let idx = (i * 8 + j as u64) as usize;
                if idx < self.physical_entries {
                    let mut bytes = [0u8; 8];
                    bytes.copy_from_slice(&line[j * 8..j * 8 + 8]);
                    addr_table[idx] = u64::from_le_bytes(bytes);
                }
            }
        }
        let mut mac_table = vec![[0u8; 8]; self.physical_entries];
        for i in 0..addr_lines {
            let line = nvm.peek(layout.wpq_dump_addr(slots + addr_lines + i));
            for j in 0..8 {
                let idx = (i * 8 + j as u64) as usize;
                if idx < self.physical_entries {
                    mac_table[idx].copy_from_slice(&line[j * 8..j * 8 + 8]);
                }
            }
        }

        // Drain-order table (third table region).
        let mut order_table = vec![EMPTY_SLOT; self.physical_entries];
        for i in 0..addr_lines {
            let line = nvm.peek(layout.wpq_dump_addr(slots + 2 * addr_lines + i));
            for j in 0..8 {
                let idx = (i * 8 + j as u64) as usize;
                if idx < self.physical_entries {
                    let mut bytes = [0u8; 8];
                    bytes.copy_from_slice(&line[j * 8..j * 8 + 8]);
                    order_table[idx] = u64::from_le_bytes(bytes);
                }
            }
        }

        // Verify the tables against the persistent register before trusting
        // anything they say: a spliced or torn table (stale epoch, dropped
        // or reordered slots) must be caught even when every individual
        // entry it names still carries a valid MAC.
        if self.dump_table_mac(&addr_table, &mac_table, &order_table) != self.table_root {
            return Err(SecurityError::DumpTableMismatch);
        }

        let mut recovered = Vec::new();
        let mut leaf_macs = vec![[0u8; 8]; self.usable_entries];
        for &slot_raw in order_table.iter().take_while(|&&s| s != EMPTY_SLOT) {
            let slot = slot_raw as usize;
            if slot >= self.usable_entries {
                return Err(SecurityError::WpqEntryTampered { slot });
            }
            let addr_raw = addr_table[slot];
            if addr_raw == EMPTY_SLOT {
                return Err(SecurityError::WpqEntryTampered { slot });
            }
            let addr = LineAddr::containing(addr_raw);
            let ciphertext = nvm.peek(layout.wpq_dump_addr(slot as u64));
            let expected = self.entry_mac(slot, addr, &ciphertext);
            match self.kind {
                MiSuKind::Full => leaf_macs[slot] = expected,
                MiSuKind::Partial | MiSuKind::Post => {
                    if mac_table[slot] != expected {
                        return Err(SecurityError::WpqEntryTampered { slot });
                    }
                }
            }
            recovered.push((addr, self.decrypt(slot, &ciphertext)));
        }
        if self.kind == MiSuKind::Full {
            let mut mac = self.mac.streamer(leaf_macs.len());
            for leaf in &leaf_macs {
                mac.part(leaf);
            }
            if mac.finish() != self.root {
                return Err(SecurityError::WpqRootMismatch);
            }
        }
        Ok(recovered)
    }

    /// Completes a recovery: advances to a new epoch so a drained
    /// (slot, counter) pair is never reused, and resets the engine.
    ///
    /// Must be called exactly once per completed recovery, after every
    /// entry returned by [`Self::read_dump`] has been replayed.
    pub fn finish_recovery(&mut self) {
        self.persistent_counter += self.physical_entries as u64;
        self.regenerate_pads();
        self.leaf_macs = vec![[0; 8]; self.usable_entries];
        self.recompute_full_tree();
        self.deferred_busy_until = Cycle::ZERO;
        self.engine_next_issue = Cycle::ZERO;
    }

    /// Storage overhead per Table 3 of the paper.
    ///
    /// * Persistent counter: 8 B in every design.
    /// * MACs: Full keeps 16 leaf-MAC registers plus a 7-node interior tree
    ///   and root (192 B); Partial and Post keep one 8 B MAC register per
    ///   physical slot (128 B).
    /// * Pads: 72 B per usable entry in Full (address and data encrypted
    ///   together in the paper's layout); 80 B in Partial/Post (entry pad
    ///   plus MAC-masking pad).
    /// * Tag array: 8 B of volatile address per usable slot (§5.5).
    pub fn storage_overhead(&self) -> MiSuStorage {
        let mac_bytes = match self.kind {
            MiSuKind::Full => 192,
            MiSuKind::Partial | MiSuKind::Post => 128,
        };
        let pad_per_entry = match self.kind {
            MiSuKind::Full => 72,
            MiSuKind::Partial | MiSuKind::Post => 80,
        };
        MiSuStorage {
            persistent_counter_bytes: 8,
            mac_bytes,
            pad_bytes: pad_per_entry * self.usable_entries,
            tag_array_bytes: 8 * self.usable_entries,
        }
    }

    /// Estimated Mi-SU recovery cycles (§5.5): read back the dump, regenerate
    /// old pads, drain every entry through the Ma-SU, then regenerate fresh
    /// pads.
    pub fn estimated_recovery_cycles(&self) -> u64 {
        const NVM_READ: u64 = 600;
        const PAD_GEN: u64 = 40;
        const DRAIN_PER_ENTRY: u64 = 2100;
        let n = self.usable_entries as u64;
        let read_lines = match self.kind {
            // Full reads only the WPQ content (16 lines at 16 entries).
            MiSuKind::Full => n,
            // Partial/Post also read two 64 B MAC blocks.
            MiSuKind::Partial | MiSuKind::Post => n + 2,
        };
        read_lines * NVM_READ + n * PAD_GEN + n * DRAIN_PER_ENTRY + n * PAD_GEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    fn misu(kind: MiSuKind) -> MinorSecurityUnit {
        MinorSecurityUnit::new(kind, 16, 42)
    }

    #[test]
    fn usable_entries_per_design() {
        assert_eq!(misu(MiSuKind::Full).usable_entries(), 16);
        assert_eq!(misu(MiSuKind::Partial).usable_entries(), 13);
        assert_eq!(misu(MiSuKind::Post).usable_entries(), 10);
    }

    #[test]
    fn critical_path_latency_per_design() {
        let mut full = misu(MiSuKind::Full);
        let (done, _, _) = full.protect(Cycle::ZERO, 0, addr(1), &[1; 64]);
        assert_eq!(done.as_u64(), 320);
        let mut partial = misu(MiSuKind::Partial);
        let (done, _, _) = partial.protect(Cycle::ZERO, 0, addr(1), &[1; 64]);
        assert_eq!(done.as_u64(), 160);
        let mut post = misu(MiSuKind::Post);
        let (done, _, _) = post.protect(Cycle::ZERO, 0, addr(1), &[1; 64]);
        assert_eq!(done.as_u64(), 0);
    }

    #[test]
    fn mac_engine_occupancy_follows_design() {
        // Full's two chained MACs fully occupy the single Mi-SU engine, so
        // back-to-back writes space at 320 cycles; Partial spaces at 160.
        let mut m = misu(MiSuKind::Full);
        let (d0, _, _) = m.protect(Cycle::ZERO, 0, addr(1), &[1; 64]);
        let (d1, _, _) = m.protect(Cycle::ZERO, 1, addr(2), &[1; 64]);
        assert_eq!(d0.as_u64(), 320);
        assert_eq!(d1.as_u64(), 640);
        let mut m = misu(MiSuKind::Partial);
        let (d0, _, _) = m.protect(Cycle::ZERO, 0, addr(1), &[1; 64]);
        let (d1, _, _) = m.protect(Cycle::ZERO, 1, addr(2), &[1; 64]);
        assert_eq!(d0.as_u64(), 160);
        assert_eq!(d1.as_u64(), 320);
    }

    #[test]
    fn post_design_is_busy_while_deferred_mac_runs() {
        let mut m = misu(MiSuKind::Post);
        assert!(!m.is_busy(Cycle::ZERO));
        m.protect(Cycle::ZERO, 0, addr(1), &[1; 64]);
        // Engine busy for 160 cycles.
        assert!(m.is_busy(Cycle::new(10)));
        assert_eq!(m.busy_rejections(), 1);
        assert!(!m.is_busy(Cycle::new(160)));
    }

    #[test]
    fn encrypt_decrypt_round_trips_per_slot() {
        let mut m = misu(MiSuKind::Partial);
        let pt = [0xABu8; 64];
        let (_, ct, mac) = m.protect(Cycle::ZERO, 3, addr(7), &pt);
        assert_ne!(ct, pt);
        assert!(mac.is_some());
        assert_eq!(m.decrypt(3, &ct), pt);
    }

    #[test]
    fn pads_differ_across_slots() {
        let mut m = misu(MiSuKind::Full);
        let pt = [0u8; 64];
        let (_, c0, _) = m.protect(Cycle::ZERO, 0, addr(0), &pt);
        let (_, c1, _) = m.protect(Cycle::ZERO, 1, addr(0), &pt);
        assert_ne!(c0, c1);
    }

    fn drain_and_recover(
        kind: MiSuKind,
        tamper: impl FnOnce(&mut NvmDevice, &MetadataLayout),
    ) -> Result<Vec<(LineAddr, Line)>, SecurityError> {
        let mut m = MinorSecurityUnit::new(kind, 16, 42);
        let layout = MetadataLayout::new(1 << 20);
        let mut nvm = NvmDevice::new();
        let mut entries = Vec::new();
        for slot in 0..3usize {
            let pt = [slot as u8 + 1; 64];
            let (_, ct, mac) = m.protect(Cycle::ZERO, slot, addr(slot as u64 + 10), &pt);
            entries.push(WpqEntry {
                addr: addr(slot as u64 + 10),
                payload: ct,
                mac,
                slot,
            });
        }
        m.drain_to_nvm(&entries, &mut nvm, &layout);
        tamper(&mut nvm, &layout);
        m.recover_from_nvm(&nvm, &layout)
    }

    #[test]
    fn drain_recover_round_trips_all_designs() {
        for kind in MiSuKind::ALL {
            let recovered = drain_and_recover(kind, |_, _| {}).expect("clean recovery");
            assert_eq!(recovered.len(), 3);
            for (i, (a, pt)) in recovered.iter().enumerate() {
                assert_eq!(a.line_index(), i as u64 + 10);
                assert_eq!(*pt, [i as u8 + 1; 64]);
            }
        }
    }

    #[test]
    fn tampered_dump_entry_is_detected() {
        for kind in MiSuKind::ALL {
            let result = drain_and_recover(kind, |nvm, layout| {
                nvm.tamper(layout.wpq_dump_addr(1), |line| line[5] ^= 0xFF);
            });
            assert!(result.is_err(), "{kind:?} missed tampering");
        }
    }

    #[test]
    fn tampered_mac_table_is_detected_in_partial() {
        let result = drain_and_recover(MiSuKind::Partial, |nvm, layout| {
            // MAC table lines sit after the 16 slot lines + 2 addr lines.
            nvm.tamper(layout.wpq_dump_addr(18), |line| line[0] ^= 1);
        });
        // The persistent table register catches the splice before any
        // per-entry verification runs.
        assert_eq!(result, Err(SecurityError::DumpTableMismatch));
    }

    #[test]
    fn stale_order_table_is_detected() {
        // Splicing the previous epoch's drain-order table into a fresh dump
        // must not silently drop or reorder replayed writes: the persistent
        // table register pins the tables as a unit.
        for kind in MiSuKind::ALL {
            let mut m = misu(kind);
            let layout = MetadataLayout::new(1 << 20);
            let mut nvm = NvmDevice::new();
            let burst = |m: &mut MinorSecurityUnit, n: usize, tag: u8| -> Vec<WpqEntry> {
                (0..n)
                    .map(|slot| {
                        let pt = [tag + slot as u8; 64];
                        let a = addr(slot as u64 + 10);
                        let (_, ct, mac) = m.protect(Cycle::ZERO, slot, a, &pt);
                        WpqEntry {
                            addr: a,
                            payload: ct,
                            mac,
                            slot,
                        }
                    })
                    .collect()
            };
            let first = burst(&mut m, 2, 1);
            m.drain_to_nvm(&first, &mut nvm, &layout);
            let order_line = layout.wpq_dump_addr(16 + 2 * 2);
            let stale = nvm.snapshot_line(order_line);
            m.recover_from_nvm(&nvm, &layout)
                .expect("clean first epoch");
            let second = burst(&mut m, 3, 7);
            m.drain_to_nvm(&second, &mut nvm, &layout);
            nvm.replay_snapshot(order_line, &stale);
            assert_eq!(
                m.read_dump(&nvm, &layout),
                Err(SecurityError::DumpTableMismatch),
                "{kind:?} accepted a stale order table"
            );
        }
    }

    #[test]
    fn counter_register_advances_per_recovery_epoch() {
        let mut m = misu(MiSuKind::Partial);
        let layout = MetadataLayout::new(1 << 20);
        let mut nvm = NvmDevice::new();
        m.drain_to_nvm(&[], &mut nvm, &layout);
        let pad_before = m.pads[0];
        m.recover_from_nvm(&nvm, &layout).unwrap();
        assert_eq!(m.persistent_counter(), 16);
        assert_ne!(m.pads[0], pad_before, "pads must rotate after a drain");
    }

    #[test]
    fn storage_overhead_matches_table_3() {
        let full = misu(MiSuKind::Full).storage_overhead();
        assert_eq!(full.persistent_counter_bytes, 8);
        assert_eq!(full.mac_bytes, 192);
        assert_eq!(full.pad_bytes, 72 * 16);

        let partial = misu(MiSuKind::Partial).storage_overhead();
        assert_eq!(partial.mac_bytes, 128);
        assert_eq!(partial.pad_bytes, 80 * 13);

        let post = misu(MiSuKind::Post).storage_overhead();
        assert_eq!(post.mac_bytes, 128);
        assert_eq!(post.pad_bytes, 80 * 10);
        assert!(post.total_bytes() > 0);
    }

    #[test]
    fn recovery_estimate_matches_section_5_5_for_full() {
        // 600*16 + 40*16 + 2100*16 + 40*16 = 44,480 cycles (§5.5).
        assert_eq!(misu(MiSuKind::Full).estimated_recovery_cycles(), 44_480);
    }

    #[test]
    fn full_design_root_tracks_clears() {
        // The root register is deferred: observe it the way a drain would,
        // by materializing before each read.
        let mut m = misu(MiSuKind::Full);
        let _ = m.protect(Cycle::ZERO, 0, addr(1), &[1; 64]);
        m.recompute_full_tree();
        let root_live = m.root;
        m.on_clear(0);
        m.recompute_full_tree();
        assert_ne!(m.root, root_live);
    }
}
