//! The secure memory system: frontend, WPQ, background drain, crash and
//! recovery.
//!
//! [`SecureMemorySystem`] composes the Mi-SU, Ma-SU, WPQ and NVM device into
//! one of four controller architectures (Figure 5 of the paper):
//!
//! * **IdealNonSecure** — no security; a persist completes on WPQ insertion.
//! * **DeferredSecure** — the infeasible Figure 5-c machine: persists
//!   complete on insertion and the full pipeline runs behind the WPQ with no
//!   Mi-SU cost. Used only for the motivation comparison (Figure 6).
//! * **PreWpqSecure** — the Anubis/AGIT baseline: the full security pipeline
//!   runs *before* insertion, on the critical path of the persist.
//! * **Dolos** — the paper's design: the Mi-SU protects the WPQ with 0–2
//!   MACs of critical-path latency; the Ma-SU secures entries after
//!   eviction.
//!
//! Timing is simulated by lazy catch-up: every public operation first
//! advances the background drain engine to `now`; the drain processes each
//! bank's WPQ shard strictly in order, retiring up to one entry per idle
//! bank per scheduling round (same-bank drains serialize through the bank's
//! redo-log buffer; distinct banks proceed independently). With
//! `banks = 1` — the default — this degenerates to the paper's
//! single-queue, one-at-a-time model, cycle for cycle.

use std::collections::VecDeque;

use dolos_nvm::addr::LineAddr;
use dolos_nvm::wpq::InsertOutcome;
use dolos_nvm::{BankSet, Line, NvmDevice};
use dolos_secmem::layout::MetadataLayout;
use dolos_sim::stats::{Histogram, Running, StatSet};
use dolos_sim::trace::{sort_events, EventKind, TraceEvent, TraceMode, TraceSink};
use dolos_sim::Cycle;

use crate::config::{ControllerConfig, ControllerKind};
use crate::error::SecurityError;
use crate::inject::{FaultPlan, InjectionPoint};
use crate::masu::{MajorSecurityUnit, MasuRecovery};
use crate::misu::MinorSecurityUnit;

/// Report of a completed recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WPQ entries replayed from the ADR dump.
    pub wpq_entries_replayed: usize,
    /// Ma-SU metadata recovery details (absent for IdealNonSecure).
    pub masu: Option<MasuRecovery>,
    /// Estimated recovery cycles for the Mi-SU path (§5.5 model).
    pub estimated_misu_cycles: u64,
    /// Measured Ma-SU recovery cycles (shadow scan, Osiris probes, tree
    /// rebuild), zero for IdealNonSecure.
    pub measured_masu_cycles: u64,
}

/// The secure persistent-memory system.
///
/// # Examples
///
/// ```
/// use dolos_core::{ControllerConfig, MiSuKind, SecureMemorySystem};
/// use dolos_sim::Cycle;
///
/// let mut system = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
/// let addr = 0x1000;
/// let done = system.persist_write(Cycle::ZERO, addr, &[7; 64]);
/// // One Mi-SU MAC (160 cycles) in the critical path.
/// assert_eq!(done.as_u64(), 160);
/// let (_, data) = system.read(done, addr);
/// assert_eq!(data, [7; 64]);
/// ```
#[derive(Debug)]
pub struct SecureMemorySystem {
    config: ControllerConfig,
    layout: MetadataLayout,
    nvm: NvmDevice,
    wpq: BankSet,
    misu: Option<MinorSecurityUnit>,
    masu: Option<MajorSecurityUnit>,
    /// Per-bank: entries being drained (started, not yet cleared), in
    /// order, with their completion times. Completion is monotone within a
    /// bank by construction (the bank's busy-until clamp).
    inflight: Vec<VecDeque<(usize, Cycle)>>,
    /// Per-bank: ready times of queued entries, in insertion order.
    ready_times: Vec<VecDeque<Cycle>>,
    /// How many fetched entries may be in flight at once *per bank*: the
    /// drain engine's pipeline depth (latency / initiation interval).
    /// Entries beyond this stay live in the WPQ and remain eligible for
    /// coalescing.
    drain_depth: usize,
    crashed: bool,
    persists: u64,
    retries: u64,
    persist_latency: Running,
    persist_histogram: Histogram,
    read_wpq_hits: u64,
    /// Armed fault-injection plan (chaos testing); `None` in normal runs.
    fault: Option<FaultPlan>,
    /// A fault fired inside the background drain engine; the next fallible
    /// operation converts it into a crash.
    pending_power_failure: Option<InjectionPoint>,
    /// Controller-level trace sink (persist spans, fence stalls). Component
    /// sinks live inside the WPQ, NVM device, Mi-SU and Ma-SU; all buffers
    /// merge in [`Self::take_trace_events`].
    trace: TraceSink,
}

impl SecureMemorySystem {
    /// Builds a system from a configuration.
    pub fn new(config: ControllerConfig) -> Self {
        let layout = MetadataLayout::new(config.region_bytes);
        let misu = match config.kind {
            ControllerKind::Dolos(kind) => Some(MinorSecurityUnit::with_geometry(
                kind,
                config.banks,
                config.physical_wpq_entries,
                config.key_seed,
                config.latency.mac,
            )),
            _ => None,
        };
        let masu = match config.kind {
            ControllerKind::IdealNonSecure => None,
            _ => Some(MajorSecurityUnit::new(
                config.scheme,
                layout,
                config.latency,
                config.counter_cache_bytes,
                config.counter_cache_ways,
                config.mt_cache_bytes,
                config.mt_cache_ways,
                config.osiris_phase,
                config.key_seed,
            )),
        };
        let usable = config.usable_wpq_entries();
        let mut wpq = BankSet::new(config.banks, usable);
        wpq.set_coalescing(config.coalescing);
        wpq.set_trace_mode(config.trace);
        let mut nvm = NvmDevice::new();
        nvm.set_trace_mode(config.trace);
        let misu = misu.map(|mut m| {
            m.set_trace_mode(config.trace);
            m
        });
        let masu = masu.map(|mut m| {
            m.set_banks(config.banks);
            m.set_trace_mode(config.trace);
            m
        });
        let drain_depth = match config.kind {
            ControllerKind::IdealNonSecure | ControllerKind::PreWpqSecure => {
                (dolos_nvm::device::WRITE_LATENCY / dolos_nvm::device::WRITE_ISSUE_INTERVAL)
                    as usize
            }
            _ => (config.masu_update_cycles() / config.latency.mac.max(1)) as usize + 1,
        };
        let banks = config.banks;
        Self {
            trace: TraceSink::from_mode(config.trace),
            config,
            layout,
            nvm,
            wpq,
            misu,
            masu,
            inflight: vec![VecDeque::new(); banks],
            ready_times: vec![VecDeque::new(); banks],
            drain_depth,
            crashed: false,
            persists: 0,
            retries: 0,
            persist_latency: Running::new(),
            persist_histogram: Histogram::new(),
            read_wpq_hits: 0,
            fault: None,
            pending_power_failure: None,
        }
    }

    /// Switches the tracing mode of the whole system (controller plus every
    /// component sink). Buffered events from the previous mode are kept
    /// until drained with [`Self::take_trace_events`].
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.config.trace = mode;
        self.trace = TraceSink::from_mode(mode);
        self.wpq.set_trace_mode(mode);
        self.nvm.set_trace_mode(mode);
        if let Some(misu) = self.misu.as_mut() {
            misu.set_trace_mode(mode);
        }
        if let Some(masu) = self.masu.as_mut() {
            masu.set_trace_mode(mode);
        }
    }

    /// Drains every buffered trace event (controller, WPQ, NVM device,
    /// Mi-SU, Ma-SU) into one deterministically ordered stream.
    ///
    /// Returns an empty vector when tracing is off. The order is a pure
    /// function of the event set (begin, end, kind, addr, value), so two
    /// runs of the same workload produce byte-identical streams regardless
    /// of component drain order.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        let mut events = self.trace.take();
        events.extend(self.wpq.take_trace_events());
        events.extend(self.nvm.take_trace_events());
        if let Some(misu) = self.misu.as_mut() {
            events.extend(misu.take_trace_events());
        }
        if let Some(masu) = self.masu.as_mut() {
            events.extend(masu.take_trace_events());
        }
        sort_events(&mut events);
        events
    }

    /// Arms a one-shot power-failure plan. The next time execution reaches
    /// the plan's injection point for the configured occurrence, the system
    /// crashes exactly there and the interrupted fallible operation returns
    /// [`SecurityError::PowerInterrupted`].
    ///
    /// Replaces any previously armed plan.
    pub fn arm_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Disarms and returns the armed plan (with its occurrence counters),
    /// if any.
    pub fn disarm_fault(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// The currently armed plan, if any.
    pub fn fault(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    fn fault_fires(&mut self, point: InjectionPoint) -> bool {
        self.fault.as_mut().is_some_and(|p| p.observe(point))
    }

    /// Converts a power failure that fired inside the drain engine into a
    /// crash at `t`.
    fn take_power_failure(&mut self, t: Cycle) -> Result<(), SecurityError> {
        if let Some(point) = self.pending_power_failure.take() {
            self.crash(t);
            return Err(SecurityError::PowerInterrupted { point });
        }
        Ok(())
    }

    /// The active configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The metadata layout (for tests that target metadata regions).
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// Whether the system is in the crashed (powered-off) state.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Direct access to the NVM device for attack injection in tests and
    /// examples. Mutating data through this handle models an external
    /// attacker, not a program write.
    pub fn nvm_mut(&mut self) -> &mut NvmDevice {
        &mut self.nvm
    }

    /// Read-only access to the NVM device.
    pub fn nvm(&self) -> &NvmDevice {
        &self.nvm
    }

    fn drain_one(&mut self, slot: usize, addr: LineAddr, payload: &Line, start: Cycle) -> Cycle {
        match self.config.kind {
            ControllerKind::IdealNonSecure | ControllerKind::PreWpqSecure => {
                // Ideal writes plaintext; the baseline writes the ciphertext
                // it secured before insertion. Either way the drain is just
                // the data write, and the slot frees when the device accepts
                // it (not when the cells finish programming).
                let (accepted, _completed) = self.nvm.write_line_ticket(start, addr, payload);
                accepted
            }
            ControllerKind::DeferredSecure => {
                // Full pipeline behind the WPQ, payload still plaintext.
                self.masu
                    .as_mut()
                    .expect("deferred has a Ma-SU")
                    .process_write(start, addr, payload, &mut self.nvm)
            }
            ControllerKind::Dolos(_) => {
                // ① decrypt with the slot pad (one XOR), ②③ full pipeline.
                let misu = self.misu.as_mut().expect("dolos has a Mi-SU");
                let plaintext = misu.decrypt(slot, payload);
                if self.trace.is_enabled() {
                    self.trace.span(
                        EventKind::MasuPadDecrypt,
                        start,
                        start + 1,
                        addr.as_u64(),
                        0,
                    );
                }
                self.masu
                    .as_mut()
                    .expect("dolos has a Ma-SU")
                    .process_write(start + 1, addr, &plaintext, &mut self.nvm)
            }
        }
    }

    /// Advances the background drain engine to `now`: completed entries are
    /// cleared (strictly in per-bank ring order) and every queued entry is
    /// started — the Ma-SU engine is pipelined, so starts are paced by the
    /// engine model, not by the previous entry's completion.
    ///
    /// Scheduling is batched across banks: each fixpoint round visits every
    /// bank and starts work on each idle one, so up to one entry per bank
    /// retires per round instead of the queue head globally gating the rest.
    fn advance(&mut self, now: Cycle) {
        // A power failure already fired in the engine: the machine is dark
        // until a fallible operation converts it into a crash.
        if self.pending_power_failure.is_some() {
            return;
        }
        // Alternate fill and clear until a fixpoint: fill every bank's
        // pipeline, then clear every completed entry, then fill the freed
        // slots, … The old shape instead refilled at most ONE entry per
        // cleared entry, and only when the pipeline had been *exactly* full
        // before the pop — a stall-prone coupling that silently
        // under-refilled whenever the two conditions drifted apart. The
        // fixpoint shape makes liveness unconditional: on exit either every
        // bank's pipeline is full, or no live unfetched entry remains, or
        // nothing more completed by `now`.
        loop {
            for bank in 0..self.wpq.banks() {
                // Start up to the engine's pipeline depth per bank: deeper
                // entries stay live (and coalescible) until a slot frees.
                while self.inflight[bank].len() < self.drain_depth {
                    let Some(entry) = self.wpq.fetch_oldest(bank) else {
                        break;
                    };
                    let ready = self.ready_times[bank]
                        .pop_front()
                        .expect("ready_times tracks queued entries");
                    // An entry ready before its bank finished the previous
                    // drain waited on the bank — the contention the banked
                    // model exists to relieve. At one bank that wait is the
                    // old global serialization and stays untraced, keeping
                    // single-bank trace streams byte-identical.
                    let busy = self.wpq.busy_until(bank);
                    if self.trace.is_enabled() && busy > ready && self.wpq.banks() > 1 {
                        self.trace.span(
                            EventKind::BankBusy,
                            ready,
                            busy,
                            bank as u64,
                            busy - ready,
                        );
                    }
                    let done = self.drain_one(entry.slot, entry.addr, &entry.payload, ready);
                    // Clamp monotone against the bank's previous drain so
                    // ring clearing stays in order even when a counter-cache
                    // miss inflates one entry's completion. Other banks'
                    // clocks are untouched — that independence is the
                    // memory-level parallelism.
                    let clamped = self.wpq.note_drain_done(bank, done);
                    self.inflight[bank].push_back((entry.slot, clamped));
                    // Mid-drain fault: the entry is applied to NVM but not
                    // yet cleared from the WPQ, so the ADR dump will carry
                    // it again and recovery replays on top of the partial
                    // application.
                    if self.fault_fires(InjectionPoint::MasuDrain) {
                        self.pending_power_failure = Some(InjectionPoint::MasuDrain);
                        return;
                    }
                }
            }
            // Clear (strictly in each bank's ring order) what completed.
            let mut cleared = false;
            for bank in 0..self.wpq.banks() {
                while let Some(&(slot, done)) = self.inflight[bank].front() {
                    if done > now {
                        break;
                    }
                    self.wpq.clear_at(done, slot);
                    if let Some(misu) = self.misu.as_mut() {
                        misu.on_clear(slot);
                    }
                    self.inflight[bank].pop_front();
                    cleared = true;
                }
            }
            if !cleared {
                return;
            }
        }
    }

    /// When the oldest in-flight drain of `bank` completes (used to wait on
    /// a full shard). The shard being full guarantees an in-flight entry
    /// exists.
    fn next_slot_free_at(&self, bank: usize) -> Cycle {
        self.inflight[bank]
            .front()
            .map(|&(_, done)| done)
            .expect("a full WPQ bank always has an in-flight drain")
    }

    /// Persists one cacheline: the core has executed a flush (clwb+fence)
    /// and blocks until the line is accepted into the persistence domain.
    ///
    /// Returns the cycle at which the persist completes. WPQ-full
    /// conditions retry internally and are counted (Table 2's retry
    /// events).
    ///
    /// # Panics
    ///
    /// Panics if the system is crashed or the address is not 64-byte
    /// aligned / outside the protected region.
    pub fn persist_write(&mut self, now: Cycle, addr: u64, data: &Line) -> Cycle {
        self.try_persist_write(now, addr, data)
            .expect("persist interrupted by an injected power failure")
    }

    /// Fallible variant of [`Self::persist_write`] for fault-injection runs:
    /// an armed [`FaultPlan`] firing mid-persist crashes the system at that
    /// exact microarchitectural instant and surfaces as
    /// [`SecurityError::PowerInterrupted`]. With no plan armed this never
    /// returns an error.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::PowerInterrupted`] when an injected power
    /// failure fired; the system is then crashed and must be recovered.
    ///
    /// # Panics
    ///
    /// Same alignment/region/crashed panics as [`Self::persist_write`].
    pub fn try_persist_write(
        &mut self,
        now: Cycle,
        addr: u64,
        data: &Line,
    ) -> Result<Cycle, SecurityError> {
        assert!(!self.crashed, "persist on a crashed system");
        let addr = LineAddr::new(addr).expect("persist address must be line-aligned");
        assert!(
            self.layout.is_data_addr(addr),
            "address outside protected region"
        );
        self.persists += 1;
        if self.fault_fires(InjectionPoint::PersistStart) {
            self.crash(now);
            return Err(SecurityError::PowerInterrupted {
                point: InjectionPoint::PersistStart,
            });
        }
        self.advance(now);
        self.take_power_failure(now)?;
        if self.trace.is_enabled() {
            self.trace
                .instant(EventKind::PersistStart, now, addr.as_u64(), 0);
        }
        let bank = self.wpq.bank_of(addr);
        let mut t = now;

        // Pre-WPQ security (baseline): the whole pipeline runs before the
        // line may enter the persistence domain.
        let payload_pre = match self.config.kind {
            ControllerKind::PreWpqSecure => {
                let masu = self.masu.as_mut().expect("baseline has a Ma-SU");
                let (done, ciphertext) = masu.secure_write(t, addr, data, &mut self.nvm, false);
                t = done;
                self.advance(t);
                self.take_power_failure(t)?;
                Some(ciphertext)
            }
            _ => None,
        };

        loop {
            // Dolos Post design: the Mi-SU may be busy with its one allowed
            // deferred MAC; the write retries when it is.
            if let (ControllerKind::Dolos(_), Some(misu)) = (self.config.kind, self.misu.as_mut()) {
                if misu.is_busy(t) {
                    let until = misu.busy_until();
                    if self.trace.is_enabled() {
                        self.trace
                            .span(EventKind::FenceStall, t, until, addr.as_u64(), 1);
                    }
                    t = until;
                    self.advance(t);
                    self.take_power_failure(t)?;
                    continue;
                }
            }

            // Pick the slot (coalesce or allocate) so the Mi-SU can use the
            // slot's pre-generated pad.
            let slot = match self.wpq.coalesce_slot(addr) {
                Some(slot) => Some(slot),
                None => self.wpq.next_insert_slot(bank),
            };
            let Some(slot) = slot else {
                // The address's bank is full: one retry event, then wait
                // for that bank's drain (other banks may still be idle, but
                // an address cannot change banks).
                self.retries += 1;
                let free_at = self.next_slot_free_at(bank);
                if self.trace.is_enabled() {
                    self.trace
                        .span(EventKind::FenceStall, t, t.max(free_at), addr.as_u64(), 0);
                }
                t = t.max(free_at);
                self.advance(t);
                self.take_power_failure(t)?;
                continue;
            };

            // Power cut as the Mi-SU starts MAC'ing the line: the write is
            // lost before any Mi-SU state (pad, leaf MAC, root) is touched,
            // so the dump stays consistent with the persistent registers.
            // (Dolos-only: other kinds have no Mi-SU instant to cut at.)
            if matches!(self.config.kind, ControllerKind::Dolos(_))
                && self.fault_fires(InjectionPoint::MisuProtect)
            {
                self.crash(t);
                return Err(SecurityError::PowerInterrupted {
                    point: InjectionPoint::MisuProtect,
                });
            }
            let (done, payload, mac) = match self.config.kind {
                ControllerKind::Dolos(_) => {
                    let misu = self.misu.as_mut().expect("dolos has a Mi-SU");
                    misu.protect(t, slot, addr, data)
                }
                ControllerKind::PreWpqSecure => (t, payload_pre.expect("secured above"), None),
                _ => (t, *data, None),
            };
            let outcome = self.wpq.try_insert_at(t, addr, payload, mac);
            match outcome {
                InsertOutcome::Inserted { slot: s } => {
                    debug_assert_eq!(s, slot);
                    self.ready_times[bank].push_back(done);
                    self.persist_latency.record(done - now);
                    self.persist_histogram.record(done - now);
                    if self.trace.is_enabled() {
                        self.trace.span(
                            EventKind::PersistAck,
                            now,
                            done,
                            addr.as_u64(),
                            done - now,
                        );
                    }
                    // The persist completed: from here the write must
                    // survive any power failure.
                    if self.fault_fires(InjectionPoint::WpqInsert) {
                        self.crash(t);
                        return Err(SecurityError::PowerInterrupted {
                            point: InjectionPoint::WpqInsert,
                        });
                    }
                    self.advance(done);
                    self.take_power_failure(done)?;
                    return Ok(done);
                }
                InsertOutcome::Coalesced { slot: s } => {
                    debug_assert_eq!(s, slot);
                    self.persist_latency.record(done - now);
                    self.persist_histogram.record(done - now);
                    if self.trace.is_enabled() {
                        self.trace.span(
                            EventKind::PersistAck,
                            now,
                            done,
                            addr.as_u64(),
                            done - now,
                        );
                    }
                    if self.fault_fires(InjectionPoint::WpqInsert) {
                        self.crash(t);
                        return Err(SecurityError::PowerInterrupted {
                            point: InjectionPoint::WpqInsert,
                        });
                    }
                    self.advance(done);
                    self.take_power_failure(done)?;
                    return Ok(done);
                }
                InsertOutcome::Full => {
                    // Raced with our own slot choice: treat as a retry.
                    self.retries += 1;
                    let free_at = self.next_slot_free_at(bank);
                    if self.trace.is_enabled() {
                        self.trace
                            .span(EventKind::FenceStall, t, t.max(free_at), addr.as_u64(), 0);
                    }
                    t = t.max(free_at);
                    self.advance(t);
                    self.take_power_failure(t)?;
                }
            }
        }
    }

    /// Reads one cacheline, serving WPQ hits from the tag array (§4.5).
    ///
    /// # Panics
    ///
    /// Panics if the system is crashed, the address is unaligned or outside
    /// the protected region, or (test invariant) integrity verification
    /// fails — use [`SecureMemorySystem::try_read`] to observe attacks.
    pub fn read(&mut self, now: Cycle, addr: u64) -> (Cycle, Line) {
        self.try_read(now, addr)
            .expect("integrity verification failed")
    }

    /// Reads one cacheline, returning integrity failures as errors.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::DataMacMismatch`] when the stored data fails
    /// its Bonsai MAC check.
    ///
    /// # Panics
    ///
    /// Panics if the system is crashed or the address is invalid.
    pub fn try_read(&mut self, now: Cycle, addr: u64) -> Result<(Cycle, Line), SecurityError> {
        assert!(!self.crashed, "read on a crashed system");
        let addr = LineAddr::new(addr).expect("read address must be line-aligned");
        assert!(
            self.layout.is_data_addr(addr),
            "address outside protected region"
        );
        self.advance(now);
        if let Some(entry) = self
            .config
            .coalescing
            .then(|| self.wpq.lookup(addr))
            .flatten()
        {
            let payload = entry.payload;
            let slot = entry.slot;
            self.read_wpq_hits += 1;
            let data = match self.config.kind {
                ControllerKind::Dolos(_) => self
                    .misu
                    .as_ref()
                    .expect("dolos has a Mi-SU")
                    .decrypt(slot, &payload),
                ControllerKind::PreWpqSecure => self
                    .masu
                    .as_mut()
                    .expect("baseline has a Ma-SU")
                    .decrypt_current(now, addr, &payload, &mut self.nvm),
                _ => payload,
            };
            // Tag-array hit plus one XOR: a single cycle (§4.5).
            return Ok((now + 1, data));
        }
        match self.masu.as_mut() {
            Some(masu) => masu.read(now, addr, &mut self.nvm),
            None => {
                // Never-written lines short-circuit, mirroring the secure
                // paths (which skip verification for lines with no MAC).
                if self.nvm.peek(addr) == [0u8; 64] {
                    return Ok((now + 1, [0u8; 64]));
                }
                let (done, data) = self.nvm.read_line(now, addr);
                Ok((done, data))
            }
        }
    }

    /// Drains the WPQ completely and waits for the background engine — used
    /// by tests and between workload phases. Returns the quiescent time.
    pub fn quiesce(&mut self, now: Cycle) -> Cycle {
        self.try_quiesce(now)
            .expect("quiesce interrupted by an injected power failure")
    }

    /// Fallible variant of [`Self::quiesce`] for fault-injection runs.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::PowerInterrupted`] when an armed
    /// [`FaultPlan`] fired inside the drain engine; the system is then
    /// crashed.
    pub fn try_quiesce(&mut self, now: Cycle) -> Result<Cycle, SecurityError> {
        let mut t = now;
        loop {
            self.advance(t);
            self.take_power_failure(t)?;
            // Wait for the last completion across every bank; advancing to
            // it clears everything earlier, then the loop re-checks for
            // entries that started meanwhile.
            let latest = self
                .inflight
                .iter()
                .filter_map(|q| q.back().map(|&(_, done)| done))
                .max();
            match latest {
                Some(done) => t = done,
                None if self.wpq.is_empty() => return Ok(t),
                None => unreachable!("advance starts work while entries remain"),
            }
        }
    }

    /// Power failure at `now`: ADR flushes the WPQ to NVM, volatile state is
    /// lost, and the system refuses operations until [`Self::recover`].
    ///
    /// The ADR path does exactly what the active design affords: Dolos dumps
    /// already-protected entries (plus Mi-SU MACs); the baseline writes its
    /// already-secured ciphertext to the entries' home addresses; the
    /// deferred/ideal models complete their writes on reserve power.
    pub fn crash(&mut self, now: Cycle) {
        assert!(!self.crashed, "already crashed");
        self.advance(now);
        let occupied = self.wpq.occupied_in_order();
        match self.config.kind {
            ControllerKind::Dolos(_) => {
                let layout = self.layout;
                let misu = self.misu.as_mut().expect("dolos has a Mi-SU");
                misu.drain_to_nvm(&occupied, &mut self.nvm, &layout);
            }
            ControllerKind::PreWpqSecure => {
                for entry in &occupied {
                    self.nvm.poke(entry.addr, &entry.payload);
                }
            }
            ControllerKind::IdealNonSecure => {
                for entry in &occupied {
                    self.nvm.poke(entry.addr, &entry.payload);
                }
            }
            ControllerKind::DeferredSecure => {
                // Figure 5-c must run the full pipeline on reserve power —
                // the very thing the paper argues exceeds the ADR budget. We
                // model the functional effect regardless.
                for entry in &occupied {
                    let masu = self.masu.as_mut().expect("deferred has a Ma-SU");
                    masu.process_write(now, entry.addr, &entry.payload, &mut self.nvm);
                }
            }
        }
        if let Some(masu) = self.masu.as_mut() {
            masu.crash();
        }
        // `clear_all` also rewinds every bank's busy-until clock, so drains
        // after recovery start from a fresh per-bank serialization point.
        self.wpq.clear_all();
        for queue in &mut self.ready_times {
            queue.clear();
        }
        for queue in &mut self.inflight {
            queue.clear();
        }
        self.nvm.power_cycle();
        self.crashed = true;
    }

    /// Boot-time recovery after a crash.
    ///
    /// Recovery is restartable: a nested power failure (an armed
    /// [`FaultPlan`] at [`InjectionPoint::RecoveryReplay`]) aborts mid-replay
    /// with the system still crashed, and a subsequent `recover` call
    /// verifies the same dump under the same Mi-SU epoch and replays it
    /// again — replay is idempotent, so partially applied entries are safe.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::NotCrashed`] when the system has not
    /// crashed, [`SecurityError::PowerInterrupted`] on a nested injected
    /// crash, and any other [`SecurityError`] if an integrity check fails
    /// (the threat model's attacks being detected).
    pub fn recover(&mut self) -> Result<RecoveryReport, SecurityError> {
        if !self.crashed {
            return Err(SecurityError::NotCrashed);
        }
        let mut report = RecoveryReport {
            wpq_entries_replayed: 0,
            masu: None,
            estimated_misu_cycles: 0,
            measured_masu_cycles: 0,
        };
        if let Some(masu) = self.masu.as_mut() {
            let masu_report = masu.recover(&mut self.nvm)?;
            report.measured_masu_cycles = masu_report.cycles;
            report.masu = Some(masu_report);
        }
        if let Some(misu) = self.misu.as_ref() {
            report.estimated_misu_cycles = misu.estimated_recovery_cycles();
            let replay = misu.read_dump(&self.nvm, &self.layout)?;
            report.wpq_entries_replayed = replay.len();
            for (addr, plaintext) in replay {
                // Nested crash between replayed entries: volatile recovery
                // progress is lost, the dump (and the Mi-SU epoch) stays as
                // it was, and the system remains crashed.
                if self.fault_fires(InjectionPoint::RecoveryReplay) {
                    if let Some(masu) = self.masu.as_mut() {
                        masu.crash();
                    }
                    self.nvm.power_cycle();
                    return Err(SecurityError::PowerInterrupted {
                        point: InjectionPoint::RecoveryReplay,
                    });
                }
                let masu = self.masu.as_mut().expect("dolos has a Ma-SU");
                masu.process_write(Cycle::ZERO, addr, &plaintext, &mut self.nvm);
            }
            // All entries are home: only now advance the pad/MAC epoch.
            self.misu.as_mut().expect("checked above").finish_recovery();
        }
        self.crashed = false;
        Ok(report)
    }

    /// Splits the masu/nvm borrow for the audit module.
    pub(crate) fn audit_parts(&mut self) -> Result<crate::audit::AuditReport, SecurityError> {
        match self.masu.as_mut() {
            Some(masu) => masu.audit(&mut self.nvm),
            None => Ok(crate::audit::AuditReport::default()),
        }
    }

    /// Number of persist operations served.
    pub fn persists(&self) -> u64 {
        self.persists
    }

    /// Number of WPQ-insertion retry events (Table 2's metric).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Retry events per kilo write requests.
    pub fn retries_per_kwr(&self) -> f64 {
        if self.persists == 0 {
            0.0
        } else {
            self.retries as f64 * 1000.0 / self.persists as f64
        }
    }

    /// Smallest critical-path persist latency observed so far, in cycles,
    /// or `None` before the first completed persist.
    ///
    /// This is the observation hook the conformance harness keys its
    /// metamorphic latency ordering on: the minimum isolates the scheme's
    /// intrinsic critical path (0 / 160 / 320 / full-pipeline cycles) from
    /// queueing and cache-state noise that inflates the mean.
    pub fn persist_latency_min(&self) -> Option<u64> {
        self.persist_latency.min()
    }

    /// Snapshots every statistic of the system.
    pub fn stats(&self) -> StatSet {
        let mut s = self.wpq.stats();
        s.merge(&self.nvm.stats());
        if let Some(masu) = &self.masu {
            s.merge(&masu.stats());
        }
        if let Some(misu) = &self.misu {
            s.set("misu.busy_rejections", misu.busy_rejections() as f64);
            s.set("misu.persistent_counter", misu.persistent_counter() as f64);
        }
        s.set("ctrl.persists", self.persists as f64);
        s.set("ctrl.retries", self.retries as f64);
        s.set("ctrl.retries_per_kwr", self.retries_per_kwr());
        s.set("ctrl.read_wpq_hits", self.read_wpq_hits as f64);
        s.set("ctrl.persist_latency_mean", self.persist_latency.mean());
        s.set(
            "ctrl.persist_latency_min",
            self.persist_latency.min().unwrap_or(0) as f64,
        );
        s.set(
            "ctrl.persist_latency_max",
            self.persist_latency.max().unwrap_or(0) as f64,
        );
        s.set(
            "ctrl.persist_latency_p50",
            self.persist_histogram.percentile(0.5) as f64,
        );
        s.set(
            "ctrl.persist_latency_p99",
            self.persist_histogram.percentile(0.99) as f64,
        );
        s
    }
}

#[cfg(test)]
pub(crate) mod reference_drain {
    //! The pre-bank single-queue drain scheduler, kept as an executable
    //! reference model. The lockstep tests run seeded scenarios through
    //! this model and through a [`BankSet`] with `banks = 1` driven by the
    //! production scheduling rules, asserting identical retire sequences,
    //! occupancy, and statistics.

    use std::collections::VecDeque;

    use dolos_nvm::addr::LineAddr;
    use dolos_nvm::wpq::{InsertOutcome, WriteQueue};
    use dolos_nvm::{BankSet, Line};
    use dolos_sim::stats::StatSet;
    use dolos_sim::Cycle;

    /// Deterministic synthetic drain completion, standing in for the Ma-SU
    /// pipeline: a pure function of the entry's address and ready time.
    pub fn synthetic_done(addr: LineAddr, ready: Cycle) -> Cycle {
        ready + 100 + (addr.line_index() % 7) * 30
    }

    /// The old global scheduler: one queue, one monotone completion clamp,
    /// one depth-limited in-flight window.
    pub struct ReferenceDrain {
        wpq: WriteQueue,
        inflight: VecDeque<(usize, Cycle)>,
        ready: VecDeque<Cycle>,
        last_done: Cycle,
        depth: usize,
        /// Cleared (slot, cycle) pairs in retirement order.
        pub retired: Vec<(usize, u64)>,
    }

    impl ReferenceDrain {
        pub fn new(capacity: usize, depth: usize) -> Self {
            Self {
                wpq: WriteQueue::new(capacity),
                inflight: VecDeque::new(),
                ready: VecDeque::new(),
                last_done: Cycle::ZERO,
                depth,
                retired: Vec::new(),
            }
        }

        pub fn occupancy(&self) -> usize {
            self.wpq.len()
        }

        pub fn stats(&self) -> StatSet {
            self.wpq.stats()
        }

        /// Inserts (or coalesces) a write; `false` when the queue is full.
        pub fn insert(&mut self, now: Cycle, addr: LineAddr, payload: Line) -> bool {
            match self.wpq.try_insert_at(now, addr, payload, None) {
                InsertOutcome::Inserted { .. } => {
                    self.ready.push_back(now);
                    true
                }
                InsertOutcome::Coalesced { .. } => true,
                InsertOutcome::Full => false,
            }
        }

        /// The old fill/clear fixpoint, with the drain pipeline abstracted
        /// to [`synthetic_done`].
        pub fn advance(&mut self, now: Cycle) {
            loop {
                while self.inflight.len() < self.depth {
                    let Some(entry) = self.wpq.fetch_oldest() else {
                        break;
                    };
                    let ready = self.ready.pop_front().expect("ready tracks entries");
                    let done = synthetic_done(entry.addr, ready);
                    self.last_done = self.last_done.max(done);
                    self.inflight.push_back((entry.slot, self.last_done));
                }
                let mut cleared = false;
                while let Some(&(slot, done)) = self.inflight.front() {
                    if done > now {
                        break;
                    }
                    self.wpq.clear_at(done, slot);
                    self.retired.push((slot, done.as_u64()));
                    self.inflight.pop_front();
                    cleared = true;
                }
                if !cleared {
                    return;
                }
            }
        }

        pub fn quiesce(&mut self, now: Cycle) -> Cycle {
            let mut t = now;
            loop {
                self.advance(t);
                match self.inflight.back() {
                    Some(&(_, done)) => t = done,
                    None if self.wpq.is_empty() => return t,
                    None => unreachable!("advance starts work while entries remain"),
                }
            }
        }
    }

    /// The banked scheduler over a [`BankSet`], mirroring the production
    /// `advance` fixpoint with the same synthetic drain model.
    pub struct BankedDrain {
        set: BankSet,
        inflight: Vec<VecDeque<(usize, Cycle)>>,
        ready: Vec<VecDeque<Cycle>>,
        depth: usize,
        /// Cleared (slot, cycle) pairs in retirement order.
        pub retired: Vec<(usize, u64)>,
    }

    impl BankedDrain {
        pub fn new(banks: usize, per_bank_capacity: usize, depth: usize) -> Self {
            Self {
                set: BankSet::new(banks, per_bank_capacity),
                inflight: vec![VecDeque::new(); banks],
                ready: vec![VecDeque::new(); banks],
                depth,
                retired: Vec::new(),
            }
        }

        pub fn occupancy(&self) -> usize {
            self.set.len()
        }

        pub fn stats(&self) -> StatSet {
            self.set.stats()
        }

        /// Inserts (or coalesces) a write; `false` when its bank is full.
        pub fn insert(&mut self, now: Cycle, addr: LineAddr, payload: Line) -> bool {
            let bank = self.set.bank_of(addr);
            match self.set.try_insert_at(now, addr, payload, None) {
                InsertOutcome::Inserted { .. } => {
                    self.ready[bank].push_back(now);
                    true
                }
                InsertOutcome::Coalesced { .. } => true,
                InsertOutcome::Full => false,
            }
        }

        pub fn advance(&mut self, now: Cycle) {
            loop {
                for bank in 0..self.set.banks() {
                    while self.inflight[bank].len() < self.depth {
                        let Some(entry) = self.set.fetch_oldest(bank) else {
                            break;
                        };
                        let ready = self.ready[bank].pop_front().expect("ready tracks entries");
                        let done = synthetic_done(entry.addr, ready);
                        let clamped = self.set.note_drain_done(bank, done);
                        self.inflight[bank].push_back((entry.slot, clamped));
                    }
                }
                let mut cleared = false;
                for bank in 0..self.set.banks() {
                    while let Some(&(slot, done)) = self.inflight[bank].front() {
                        if done > now {
                            break;
                        }
                        self.set.clear_at(done, slot);
                        self.retired.push((slot, done.as_u64()));
                        self.inflight[bank].pop_front();
                        cleared = true;
                    }
                }
                if !cleared {
                    return;
                }
            }
        }

        pub fn quiesce(&mut self, now: Cycle) -> Cycle {
            let mut t = now;
            loop {
                self.advance(t);
                let latest = self
                    .inflight
                    .iter()
                    .filter_map(|q| q.back().map(|&(_, done)| done))
                    .max();
                match latest {
                    Some(done) => t = done,
                    None if self.set.is_empty() => return t,
                    None => unreachable!("advance starts work while entries remain"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MiSuKind, UpdateScheme};

    fn line(v: u8) -> Line {
        [v; 64]
    }

    #[test]
    fn ideal_persists_in_one_cycle() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::ideal());
        let done = sys.persist_write(Cycle::ZERO, 0, &line(1));
        assert_eq!(done.as_u64(), 0);
        let (_, data) = sys.read(done, 0);
        assert_eq!(data, line(1));
    }

    #[test]
    fn baseline_pays_full_security_before_persist() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::baseline());
        let done = sys.persist_write(Cycle::ZERO, 0, &line(1));
        // Counter miss (600) + MT-node miss (650) + AES (40) + tree (1600).
        assert_eq!(done.as_u64(), 2890);
    }

    #[test]
    fn dolos_persists_at_misu_latency() {
        for (kind, expected) in [
            (MiSuKind::Full, 320),
            (MiSuKind::Partial, 160),
            (MiSuKind::Post, 0),
        ] {
            let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(kind));
            let done = sys.persist_write(Cycle::ZERO, 0, &line(1));
            assert_eq!(done.as_u64(), expected, "{kind:?}");
        }
    }

    #[test]
    fn persist_latency_min_exposes_the_intrinsic_critical_path() {
        for (config, expected) in [
            (ControllerConfig::dolos(MiSuKind::Full), 320),
            (ControllerConfig::dolos(MiSuKind::Partial), 160),
            (ControllerConfig::dolos(MiSuKind::Post), 0),
            (ControllerConfig::ideal(), 0),
            (ControllerConfig::baseline(), 2890),
        ] {
            let mut sys = SecureMemorySystem::new(config);
            assert_eq!(
                sys.persist_latency_min(),
                None,
                "{}",
                sys.config().kind.name()
            );
            sys.persist_write(Cycle::ZERO, 0, &line(1));
            assert_eq!(
                sys.persist_latency_min(),
                Some(expected),
                "{}",
                sys.config().kind.name()
            );
            assert_eq!(
                sys.stats().get_or_zero("ctrl.persist_latency_min"),
                expected as f64
            );
        }
    }

    #[test]
    fn dolos_read_back_through_wpq_and_after_drain() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        let done = sys.persist_write(Cycle::ZERO, 0x40, &line(9));
        // Immediately: served from the WPQ tag array.
        let (t, data) = sys.read(done, 0x40);
        assert_eq!(data, line(9));
        assert_eq!(t - done, 1);
        // After quiescing: served from NVM through the Ma-SU.
        let quiet = sys.quiesce(done);
        let (_, data) = sys.read(quiet, 0x40);
        assert_eq!(data, line(9));
        assert!(sys.stats().get_or_zero("ctrl.read_wpq_hits") >= 1.0);
    }

    #[test]
    fn wpq_fills_and_retries_under_burst() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Post));
        let mut t = Cycle::ZERO;
        for i in 0..64u64 {
            t = sys.persist_write(t, i * 64, &line(i as u8));
        }
        assert!(
            sys.retries() > 0,
            "a 10-entry WPQ must fill under a 64-line burst"
        );
        let quiet = sys.quiesce(t);
        for i in 0..64u64 {
            let (_, data) = sys.read(quiet, i * 64);
            assert_eq!(data, line(i as u8));
        }
    }

    #[test]
    fn coalescing_merges_same_address_writes() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        let mut t = Cycle::ZERO;
        // Backlog the drain pipeline with distinct addresses, then rewrite
        // the most recent one: it is still live and must coalesce.
        for i in 0..12u64 {
            t = sys.persist_write(t, i * 64, &line(i as u8));
        }
        t = sys.persist_write(t, 11 * 64, &line(0xEE));
        let s = sys.stats();
        assert!(s.get_or_zero("wpq.coalesces") > 0.0, "stats: {s}");
        let (_, data) = sys.read(t, 11 * 64);
        assert_eq!(data, line(0xEE));
        let quiet = sys.quiesce(t);
        let (_, data) = sys.read(quiet, 11 * 64);
        assert_eq!(data, line(0xEE));
    }

    #[test]
    fn drain_survives_pipeline_deeper_than_usable_wpq() {
        // Regression guard for the drain-refill rule. The old `advance`
        // refilled at most one entry per cleared slot and only when the
        // pipeline had been *exactly* full before the pop
        // (`inflight.len() + 1 == drain_depth`). A Post design with a small
        // physical WPQ has fewer usable entries than the pipeline is deep,
        // so that "exactly full" condition is unsatisfiable — every drain
        // start had to be rescued by the next call's fill loop. The fixpoint
        // loop makes the refill unconditional; this test pins the liveness
        // contract: an arbitrarily long burst fully drains and every line
        // is readable from NVM afterwards.
        let mut config = ControllerConfig::dolos(MiSuKind::Post);
        config.physical_wpq_entries = 8; // usable (2) < drain depth (11)
        let mut sys = SecureMemorySystem::new(config);
        let mut t = Cycle::ZERO;
        for i in 0..48u64 {
            t = sys.persist_write(t, i * 64, &line(i as u8 + 1));
        }
        let quiet = sys.quiesce(t);
        for i in 0..48u64 {
            let (_, data) = sys.read(quiet, i * 64);
            assert_eq!(data, line(i as u8 + 1), "line {i} lost in the drain");
        }
        assert!(sys.retries() > 0, "a 2-entry WPQ must retry under a burst");
    }

    #[test]
    fn burst_drain_timing_is_unchanged_by_refill_fix() {
        // Cycle-exact pin of the quiesce time for a backlogged burst, one
        // per design kind. The refill restructure must start the same
        // entries at the same ready times in the same order — any timing
        // drift (double-starting, reordering, early/late refill) moves
        // these numbers.
        for (config, expected) in [
            (ControllerConfig::baseline(), 53930u64),
            (ControllerConfig::deferred(), 53730),
            (ControllerConfig::dolos(MiSuKind::Full), 54051),
            (ControllerConfig::dolos(MiSuKind::Partial), 53891),
            (ControllerConfig::dolos(MiSuKind::Post), 53731),
        ] {
            let name = config.kind.name();
            let mut sys = SecureMemorySystem::new(config);
            let mut t = Cycle::ZERO;
            for i in 0..32u64 {
                t = sys.persist_write(t, (i % 24) * 64, &line(i as u8));
            }
            let quiet = sys.quiesce(t);
            assert_eq!(quiet.as_u64(), expected, "{name} quiesce time drifted");
        }
    }

    #[test]
    fn banked_scheduler_locksteps_with_the_single_queue_reference() {
        use super::reference_drain::{BankedDrain, ReferenceDrain};
        for seed in [1u64, 7, 99, 24301] {
            let mut reference = ReferenceDrain::new(13, 4);
            let mut banked = BankedDrain::new(1, 13, 4);
            let mut state = seed;
            let mut t = Cycle::ZERO;
            for step in 0..400u32 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = LineAddr::from_index((state >> 33) % 48);
                let payload = [(state >> 17) as u8; 64];
                let a = reference.insert(t, addr, payload);
                let b = banked.insert(t, addr, payload);
                assert_eq!(a, b, "seed {seed} step {step} insert outcome");
                t = t + 1 + (state % 200);
                reference.advance(t);
                banked.advance(t);
                assert_eq!(
                    reference.occupancy(),
                    banked.occupancy(),
                    "seed {seed} step {step} occupancy"
                );
            }
            assert_eq!(reference.quiesce(t), banked.quiesce(t), "seed {seed}");
            assert_eq!(reference.retired, banked.retired, "seed {seed} retires");
            assert_eq!(
                reference.stats().to_string(),
                banked.stats().to_string(),
                "seed {seed} stats"
            );
        }
    }

    #[test]
    fn banked_controller_round_trips_across_bank_counts() {
        for banks in [1usize, 2, 4, 8] {
            let config = ControllerConfig::dolos(MiSuKind::Partial).with_banks(banks);
            let mut sys = SecureMemorySystem::new(config);
            let mut t = Cycle::ZERO;
            for i in 0..48u64 {
                t = sys.persist_write(t, i * 64, &line(i as u8 + 1));
            }
            let quiet = sys.quiesce(t);
            for i in 0..48u64 {
                let (_, data) = sys.read(quiet, i * 64);
                assert_eq!(data, line(i as u8 + 1), "banks={banks} line {i}");
            }
        }
    }

    #[test]
    fn banks_overlap_drain_bound_bursts() {
        // The fig16 drain-bound condition: Post puts nothing in the persist
        // critical path, so throughput is gated entirely by the background
        // Ma-SU update engine. Four banks must overlap those updates for at
        // least the 1.2x the issue's acceptance bar demands (the measured
        // ratio is far higher).
        let quiesce_for = |banks: usize| {
            let config = ControllerConfig::dolos(MiSuKind::Post)
                .with_scheme(UpdateScheme::LazyToc)
                .with_banks(banks);
            let mut sys = SecureMemorySystem::new(config);
            let mut t = Cycle::ZERO;
            for i in 0..32u64 {
                t = sys.persist_write(t, i * 64, &line(i as u8 + 1));
            }
            let quiet = sys.quiesce(t);
            for i in 0..32u64 {
                let (_, data) = sys.read(quiet, i * 64);
                assert_eq!(data, line(i as u8 + 1), "banks={banks} line {i}");
            }
            quiet.as_u64()
        };
        let single = quiesce_for(1);
        let banked = quiesce_for(4);
        assert!(
            single * 5 >= banked * 6,
            "4 banks must beat 1 bank by >= 1.2x on a drain-bound burst: {single} vs {banked}"
        );
    }

    #[test]
    fn crash_recover_round_trips_all_kinds() {
        let configs = [
            ControllerConfig::ideal(),
            ControllerConfig::baseline(),
            ControllerConfig::deferred(),
            ControllerConfig::dolos(MiSuKind::Full),
            ControllerConfig::dolos(MiSuKind::Partial),
            ControllerConfig::dolos(MiSuKind::Post),
        ];
        for config in configs {
            let name = config.kind.name();
            let mut sys = SecureMemorySystem::new(config);
            let mut t = Cycle::ZERO;
            for i in 0..32u64 {
                t = sys.persist_write(t, i * 64, &line(i as u8 + 1));
            }
            // Crash immediately: many writes still sit in the WPQ.
            sys.crash(t);
            assert!(sys.is_crashed());
            let report = sys.recover().unwrap_or_else(|e| panic!("{name}: {e}"));
            if matches!(sys.config().kind, ControllerKind::Dolos(_)) {
                assert!(report.wpq_entries_replayed > 0, "{name} should replay");
            }
            for i in 0..32u64 {
                let (_, data) = sys.read(Cycle::ZERO, i * 64);
                assert_eq!(data, line(i as u8 + 1), "{name} line {i}");
            }
        }
    }

    #[test]
    fn banked_crash_recovery_replays_every_bank() {
        for banks in [2usize, 4] {
            let config = ControllerConfig::dolos(MiSuKind::Full).with_banks(banks);
            let mut sys = SecureMemorySystem::new(config);
            let mut t = Cycle::ZERO;
            for i in 0..24u64 {
                t = sys.persist_write(t, i * 64, &line(i as u8 + 1));
            }
            sys.crash(t);
            let report = sys.recover().expect("banked recovery");
            assert!(report.wpq_entries_replayed > 0, "banks={banks}");
            for i in 0..24u64 {
                let (_, data) = sys.read(Cycle::ZERO, i * 64);
                assert_eq!(data, line(i as u8 + 1), "banks={banks} line {i}");
            }
        }
    }

    #[test]
    fn tampered_wpq_dump_is_detected_at_recovery() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        let t = sys.persist_write(Cycle::ZERO, 0, &line(5));
        sys.crash(t);
        let dump0 = sys.layout().wpq_dump_addr(0);
        sys.nvm_mut().tamper(dump0, |l| l[0] ^= 0xFF);
        assert!(sys.recover().is_err());
    }

    #[test]
    fn tampered_nvm_data_is_detected_on_read() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Full));
        let t = sys.persist_write(Cycle::ZERO, 0x40, &line(5));
        let quiet = sys.quiesce(t);
        sys.nvm_mut()
            .tamper(LineAddr::new(0x40).unwrap(), |l| l[3] ^= 1);
        assert!(matches!(
            sys.try_read(quiet, 0x40),
            Err(SecurityError::DataMacMismatch { .. })
        ));
    }

    #[test]
    fn post_design_counts_busy_rejections() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Post));
        // Two back-to-back writes at the same instant: the second finds the
        // deferred MAC in flight.
        sys.persist_write(Cycle::ZERO, 0, &line(1));
        sys.persist_write(Cycle::ZERO, 64, &line(2));
        assert!(sys.stats().get_or_zero("misu.busy_rejections") >= 1.0);
    }

    #[test]
    fn lazy_scheme_round_trips() {
        let config = ControllerConfig::dolos(MiSuKind::Partial).with_scheme(UpdateScheme::LazyToc);
        let mut sys = SecureMemorySystem::new(config);
        let mut t = Cycle::ZERO;
        for i in 0..16u64 {
            t = sys.persist_write(t, i * 64, &line(i as u8));
        }
        sys.crash(t);
        sys.recover().expect("lazy recovery");
        for i in 0..16u64 {
            let (_, data) = sys.read(Cycle::ZERO, i * 64);
            assert_eq!(data, line(i as u8));
        }
    }

    #[test]
    fn deferred_drains_behind_the_wpq() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::deferred());
        let done = sys.persist_write(Cycle::ZERO, 0, &line(1));
        assert_eq!(done.as_u64(), 0, "no security in the critical path");
        let quiet = sys.quiesce(done);
        assert!(
            quiet.as_u64() >= 1600,
            "the pipeline still ran in background"
        );
        let (_, data) = sys.read(quiet, 0);
        assert_eq!(data, line(1));
    }

    #[test]
    fn retries_per_kwr_is_normalized() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::ideal());
        assert_eq!(sys.retries_per_kwr(), 0.0);
        sys.persist_write(Cycle::ZERO, 0, &line(1));
        assert_eq!(sys.retries_per_kwr(), 0.0);
    }

    #[test]
    #[should_panic(expected = "crashed")]
    fn persist_after_crash_panics() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::ideal());
        sys.crash(Cycle::ZERO);
        sys.persist_write(Cycle::ZERO, 0, &line(1));
    }

    #[test]
    fn recover_without_crash_is_an_error() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        assert_eq!(sys.recover(), Err(SecurityError::NotCrashed));
    }

    #[test]
    fn armed_fault_crashes_at_wpq_insert_and_write_survives() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        sys.arm_fault(FaultPlan::new(InjectionPoint::WpqInsert, 3));
        let mut t = Cycle::ZERO;
        let mut interrupted_at = None;
        for i in 0..8u64 {
            match sys.try_persist_write(t, i * 64, &line(i as u8 + 1)) {
                Ok(done) => t = done,
                Err(SecurityError::PowerInterrupted { point }) => {
                    assert_eq!(point, InjectionPoint::WpqInsert);
                    interrupted_at = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        // Fired on the 4th insert (0-based occurrence 3).
        assert_eq!(interrupted_at, Some(3));
        assert!(sys.is_crashed());
        sys.recover().expect("clean recovery");
        // Every write whose insert happened — including the interrupted
        // one, whose persist completed — must be durable.
        for i in 0..4u64 {
            let (_, data) = sys.read(Cycle::ZERO, i * 64);
            assert_eq!(data, line(i as u8 + 1), "line {i}");
        }
    }

    #[test]
    fn fault_lost_at_misu_protect_is_legal_and_rest_survive() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        sys.arm_fault(FaultPlan::new(InjectionPoint::MisuProtect, 2));
        let mut t = Cycle::ZERO;
        let mut completed = Vec::new();
        for i in 0..6u64 {
            match sys.try_persist_write(t, i * 64, &line(i as u8 + 1)) {
                Ok(done) => {
                    t = done;
                    completed.push(i);
                }
                Err(SecurityError::PowerInterrupted { point }) => {
                    assert_eq!(point, InjectionPoint::MisuProtect);
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(completed, vec![0, 1]);
        sys.recover()
            .expect("half-spent Mi-SU state must not poison recovery");
        for &i in &completed {
            let (_, data) = sys.read(Cycle::ZERO, i * 64);
            assert_eq!(data, line(i as u8 + 1));
        }
        sys.audit().expect("clean audit after protect-point crash");
    }

    #[test]
    fn nested_crash_during_recovery_is_restartable() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        let mut t = Cycle::ZERO;
        for i in 0..8u64 {
            t = sys.persist_write(t, i * 64, &line(i as u8 + 1));
        }
        sys.crash(t);
        // Power fails again after two entries have been replayed.
        sys.arm_fault(FaultPlan::new(InjectionPoint::RecoveryReplay, 2));
        assert_eq!(
            sys.recover(),
            Err(SecurityError::PowerInterrupted {
                point: InjectionPoint::RecoveryReplay,
            })
        );
        assert!(sys.is_crashed(), "nested crash leaves the system down");
        // Second boot: same dump, same epoch, full replay.
        sys.recover().expect("recovery must be restartable");
        for i in 0..8u64 {
            let (_, data) = sys.read(Cycle::ZERO, i * 64);
            assert_eq!(data, line(i as u8 + 1), "line {i}");
        }
        sys.audit().expect("clean audit after nested crash");
    }

    #[test]
    fn fault_in_drain_engine_surfaces_and_recovers() {
        let mut sys = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        sys.arm_fault(FaultPlan::new(InjectionPoint::MasuDrain, 4));
        let mut t = Cycle::ZERO;
        let mut wrote = 0u64;
        let mut interrupted = false;
        for i in 0..32u64 {
            match sys.try_persist_write(t, i * 64, &line(i as u8 + 1)) {
                Ok(done) => {
                    t = done;
                    wrote = i + 1;
                }
                Err(SecurityError::PowerInterrupted { point }) => {
                    assert_eq!(point, InjectionPoint::MasuDrain);
                    interrupted = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(interrupted, "a 32-line burst must reach the 5th drain");
        sys.recover()
            .expect("replay over a partially applied drain must be clean");
        for i in 0..wrote {
            let (_, data) = sys.read(Cycle::ZERO, i * 64);
            assert_eq!(data, line(i as u8 + 1), "line {i}");
        }
        sys.audit().expect("clean audit after mid-drain crash");
    }

    #[test]
    fn disarmed_plans_leave_timing_untouched() {
        let mut plain = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        let mut armed = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
        // A plan that never fires (occurrence far beyond the run).
        armed.arm_fault(FaultPlan::new(InjectionPoint::WpqInsert, 1 << 40));
        let mut tp = Cycle::ZERO;
        let mut ta = Cycle::ZERO;
        for i in 0..32u64 {
            tp = plain.persist_write(tp, i * 64, &line(i as u8));
            ta = armed
                .try_persist_write(ta, i * 64, &line(i as u8))
                .expect("never fires");
            assert_eq!(tp, ta, "write {i}");
        }
        assert_eq!(plain.quiesce(tp), armed.try_quiesce(ta).unwrap());
    }
}
