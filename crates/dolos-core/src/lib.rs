//! The Dolos secure persistent-memory controller (the paper's contribution).
//!
//! Dolos splits memory security in two so persist operations complete at WPQ
//! insertion instead of after a full crypto pipeline:
//!
//! * [`misu`] — the **Minor Security Unit**: pre-generated CTR pads and 0–2
//!   MACs protect only the WPQ so its contents can be dumped verbatim under
//!   the standard ADR energy budget. Three design options ([`MiSuKind`])
//!   trade critical-path MACs against usable WPQ entries.
//! * [`masu`] — the **Major Security Unit**: the conventional secure-NVM
//!   pipeline (counter-mode AES, Bonsai MACs, integrity tree, Anubis shadow
//!   tracking, Osiris counter recovery), run after eviction from the WPQ.
//! * [`controller`] — [`SecureMemorySystem`], which composes the two units
//!   with the WPQ and NVM into any of the Figure 5 architectures, including
//!   the Pre-WPQ-Secure baseline the paper compares against.
//!
//! # Examples
//!
//! ```
//! use dolos_core::{ControllerConfig, MiSuKind, SecureMemorySystem};
//! use dolos_sim::Cycle;
//!
//! // Baseline: ~2.9k cycles before the first persist completes.
//! let mut baseline = SecureMemorySystem::new(ControllerConfig::baseline());
//! let baseline_done = baseline.persist_write(Cycle::ZERO, 0, &[1; 64]);
//!
//! // Dolos Partial: one Mi-SU MAC.
//! let mut dolos = SecureMemorySystem::new(ControllerConfig::dolos(MiSuKind::Partial));
//! let dolos_done = dolos.persist_write(Cycle::ZERO, 0, &[1; 64]);
//!
//! assert!(dolos_done.as_u64() * 10 < baseline_done.as_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod controller;
pub mod error;
pub mod inject;
pub mod masu;
pub mod misu;

pub use audit::AuditReport;
pub use config::{ControllerConfig, ControllerKind, MiSuKind, UpdateScheme};
pub use controller::{RecoveryReport, SecureMemorySystem};
pub use dolos_sim::trace::{TraceEvent, TraceMode};
pub use error::SecurityError;
pub use inject::{FaultPlan, InjectionPoint};
pub use masu::MajorSecurityUnit;
pub use misu::MinorSecurityUnit;
