//! Per-file lints plus the suppression mechanism shared by every lint.
//!
//! Each local lint walks the token stream of one file (test regions
//! excluded) and emits [`Finding`]s; the interprocedural lints in
//! [`crate::interproc`] add workspace-level findings later. Any finding can
//! be silenced with a line comment on the same line or the line above:
//!
//! ```text
//! // audit:allow(<lint>) -- <reason>
//! ```
//!
//! The reason is mandatory — an allow without a written justification is
//! itself a finding — and every suppression must match a real finding, so
//! stale allows fail the audit instead of rotting in place.

use crate::config::{Config, KNOWN_LINTS, LINT_NONDETERMINISM, LINT_PANIC_PATH, LINT_WALL_CLOCK};
use crate::lexer::{in_regions, lex, test_regions, Comment, Token, TokenKind};
use crate::report::Finding;

/// One source file presented to the audit.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative, `/`-separated path (e.g. `crates/dolos-core/src/masu.rs`).
    pub path: String,
    /// The crate the file belongs to (e.g. `dolos-core`).
    pub krate: String,
    /// File contents.
    pub text: String,
}

/// Collections whose iteration order depends on the process hasher seed.
const HASHER_SEEDED: [&str; 4] = ["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Identifiers that read host wall-clock time or ambient entropy.
const AMBIENT_HOST_STATE: [&str; 5] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// Macros that abort instead of returning an error.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// One `audit:allow` suppression extracted from a file.
#[derive(Debug)]
pub(crate) struct Suppression {
    /// The lint being allowed.
    pub lint: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Whether a finding consumed it (unused suppressions are findings).
    pub used: bool,
}

/// Phase-A output for one file: raw (pre-suppression) local findings plus
/// everything the later phases need.
#[derive(Debug)]
pub(crate) struct FileAnalysis {
    /// Suppression-hygiene findings (malformed/unknown/reason-less allows)
    /// that bypass suppression entirely.
    pub pre_findings: Vec<Finding>,
    /// Local lint findings before suppression.
    pub raw: Vec<Finding>,
    /// `(line, what)` for unsuppressed-candidate panic sites.
    pub panic_lines: Vec<(u32, String)>,
    /// Whether the file is in the strict panic set (sites become findings).
    pub strict: bool,
    /// Valid suppressions, to be threaded through every finding phase.
    pub suppressions: Vec<Suppression>,
}

/// Runs phase A on one file: lex, strip test regions, parse suppressions,
/// run the local lints. Returns the analysis plus the filtered token
/// stream (for the call-graph phase).
pub(crate) fn analyze_file(file: &SourceFile, config: &Config) -> (FileAnalysis, Vec<Token>) {
    let lexed = lex(&file.text);
    let regions = test_regions(&lexed.tokens);
    let mut pre_findings = Vec::new();
    let suppressions = parse_suppressions(&lexed.comments, &regions, &file.path, &mut pre_findings);
    let tokens: Vec<Token> = lexed
        .tokens
        .into_iter()
        .filter(|t| !in_regions(&regions, t.line))
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    if config.deterministic_crates.contains(&file.krate) {
        lint_nondeterminism(&tokens, &file.path, &mut raw);
    }
    if !config.clock_exempt_crates.contains(&file.krate) {
        lint_wall_clock(&tokens, &file.path, &mut raw);
    }
    let strict = Config::path_matches(&file.path, &config.strict_panic_files);
    let panic_lines = panic_site_lines(&tokens);
    if strict {
        for (line, what) in &panic_lines {
            raw.push(Finding {
                file: file.path.clone(),
                line: *line,
                lint: LINT_PANIC_PATH.into(),
                message: format!(
                    "`{what}` on a recovery/crash-oracle path; return a typed \
                     error (SecurityError / oracle verdict) instead of aborting"
                ),
            });
        }
    }
    (
        FileAnalysis {
            pre_findings,
            raw,
            panic_lines,
            strict,
            suppressions,
        },
        tokens,
    )
}

/// Extracts `audit:allow` suppressions, reporting malformed ones. Comments
/// inside `#[cfg(test)]` regions are ignored — test code is not linted, so a
/// suppression there could only ever be stale.
fn parse_suppressions(
    comments: &[Comment],
    regions: &[(u32, u32)],
    path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("audit:allow") else {
            continue;
        };
        if in_regions(regions, c.line) {
            continue;
        }
        let mut fail = |message: String| {
            findings.push(Finding {
                file: path.to_string(),
                line: c.line,
                lint: crate::config::LINT_SUPPRESSION.into(),
                message,
            });
        };
        let Some((lint, after)) = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(l, a)| (l.trim(), a.trim()))
        else {
            fail("malformed suppression; use `audit:allow(<lint>) -- <reason>`".into());
            continue;
        };
        if !KNOWN_LINTS.contains(&lint) {
            fail(format!(
                "unknown lint `{lint}`; known lints: {}",
                KNOWN_LINTS.join(", ")
            ));
            continue;
        }
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or_default();
        if reason.is_empty() {
            fail(format!(
                "suppression of `{lint}` has no reason; append `-- <why this \
                 site is exempt>`"
            ));
            continue;
        }
        out.push(Suppression {
            lint: lint.to_string(),
            line: c.line,
            reason: reason.to_string(),
            used: false,
        });
    }
    out
}

/// Marks the first matching suppression used; returns whether one matched.
/// A suppression covers its own line (trailing comment) and the next line.
pub(crate) fn try_suppress(suppressions: &mut [Suppression], lint: &str, line: u32) -> bool {
    for s in suppressions.iter_mut() {
        if s.lint == lint && (s.line == line || s.line + 1 == line) {
            s.used = true;
            return true;
        }
    }
    false
}

fn lint_nondeterminism(tokens: &[Token], path: &str, out: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokenKind::Ident && HASHER_SEEDED.contains(&t.text.as_str()) {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                lint: LINT_NONDETERMINISM.into(),
                message: format!(
                    "`{}` iterates in a process-random hasher order; use \
                     dolos_sim::flat::FlatMap/FlatSet (small, u64-keyed) or \
                     BTreeMap/BTreeSet in deterministic crates",
                    t.text
                ),
            });
        }
    }
}

fn lint_wall_clock(tokens: &[Token], path: &str, out: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokenKind::Ident && AMBIENT_HOST_STATE.contains(&t.text.as_str()) {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                lint: LINT_WALL_CLOCK.into(),
                message: format!(
                    "`{}` reads host wall-clock/entropy, making results a \
                     function of the machine; simulated components take time \
                     as Cycle inputs (host timing belongs in dolos-bench)",
                    t.text
                ),
            });
        }
    }
}

/// Lines holding `.unwrap()`, `.expect(`, or an aborting macro invocation.
fn panic_site_lines(tokens: &[Token]) -> Vec<(u32, String)> {
    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].kind == TokenKind::Punct && tokens[i - 1].text == ".";
        let next = tokens.get(i + 1);
        let next_is = |p: &str| next.is_some_and(|n| n.kind == TokenKind::Punct && n.text == p);
        if (t.text == "unwrap" || t.text == "expect") && prev_dot && next_is("(") {
            sites.push((t.line, format!(".{}()", t.text)));
        } else if PANIC_MACROS.contains(&t.text.as_str()) && next_is("!") {
            sites.push((t.line, format!("{}!", t.text)));
        }
    }
    sites
}
