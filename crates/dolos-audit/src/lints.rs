//! The lint registry: token-pattern rules plus the suppression mechanism.
//!
//! Each lint walks the token stream of one file (test regions excluded) and
//! emits [`Finding`]s. A finding can be silenced with a line comment on the
//! same line or the line above:
//!
//! ```text
//! // audit:allow(<lint>) -- <reason>
//! ```
//!
//! The reason is mandatory — an allow without a written justification is
//! itself a finding — and every suppression must match a real finding, so
//! stale allows fail the audit instead of rotting in place.

use crate::config::{
    Config, KNOWN_LINTS, LINT_NONDETERMINISM, LINT_PANIC_PATH, LINT_PERSISTENCE_DOMAIN,
    LINT_SUPPRESSION, LINT_WALL_CLOCK,
};
use crate::lexer::{in_regions, lex, test_regions, Comment, Token, TokenKind};
use crate::report::Finding;

/// One source file presented to the audit.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative, `/`-separated path (e.g. `crates/dolos-core/src/masu.rs`).
    pub path: String,
    /// The crate the file belongs to (e.g. `dolos-core`).
    pub krate: String,
    /// File contents.
    pub text: String,
}

/// Collections whose iteration order depends on the process hasher seed.
const HASHER_SEEDED: [&str; 4] = ["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Identifiers that read host wall-clock time or ambient entropy.
const AMBIENT_HOST_STATE: [&str; 5] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// Macros that abort instead of returning an error.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// `NvmDevice` methods that write lines without passing through the WPQ.
const DEVICE_WRITE_METHODS: [&str; 5] = [
    "poke",
    "write_line",
    "write_line_ticket",
    "restore_lines",
    "replay_snapshot",
];

/// Result of auditing one file.
#[derive(Debug, Default)]
pub struct FileAudit {
    /// Findings that survived suppression, plus suppression-hygiene findings.
    pub findings: Vec<Finding>,
    /// Unsuppressed panic sites outside strict files (ratchet budget input).
    pub panic_sites: usize,
}

#[derive(Debug)]
struct Suppression {
    lint: String,
    line: u32,
    used: bool,
}

/// Runs every applicable lint over one file.
pub fn audit_file(file: &SourceFile, config: &Config) -> FileAudit {
    let lexed = lex(&file.text);
    let regions = test_regions(&lexed.tokens);
    let mut out = FileAudit::default();
    let mut suppressions =
        parse_suppressions(&lexed.comments, &regions, &file.path, &mut out.findings);

    let mut raw: Vec<Finding> = Vec::new();
    let tokens: Vec<&Token> = lexed
        .tokens
        .iter()
        .filter(|t| !in_regions(&regions, t.line))
        .collect();

    if config.deterministic_crates.contains(&file.krate) {
        lint_nondeterminism(&tokens, &file.path, &mut raw);
    }
    if !config.clock_exempt_crates.contains(&file.krate) {
        lint_wall_clock(&tokens, &file.path, &mut raw);
    }
    let strict = Config::path_matches(&file.path, &config.strict_panic_files);
    let panic_lines = panic_site_lines(&tokens);
    if strict {
        for (line, what) in &panic_lines {
            raw.push(Finding {
                file: file.path.clone(),
                line: *line,
                lint: LINT_PANIC_PATH.into(),
                message: format!(
                    "`{what}` on a recovery/crash-oracle path; return a typed \
                     error (SecurityError / oracle verdict) instead of aborting"
                ),
            });
        }
    }
    if !Config::path_matches(&file.path, &config.sanctioned_persistence_files) {
        lint_persistence_domain(&tokens, &file.path, &mut raw);
    }

    // Apply suppressions to the raw findings.
    for finding in raw {
        if !try_suppress(&mut suppressions, &finding.lint, finding.line) {
            out.findings.push(finding);
        }
    }
    // Panic sites outside strict files are counted, not reported: the
    // ratchet compares the workspace total against the budget. A site can
    // still be excluded from the count with an explicit allow.
    if !strict {
        out.panic_sites = panic_lines
            .iter()
            .filter(|(line, _)| !try_suppress(&mut suppressions, LINT_PANIC_PATH, *line))
            .count();
    }

    for s in &suppressions {
        if !s.used {
            out.findings.push(Finding {
                file: file.path.clone(),
                line: s.line,
                lint: LINT_SUPPRESSION.into(),
                message: format!(
                    "audit:allow({}) matched no finding on this or the next \
                     line; delete the stale suppression",
                    s.lint
                ),
            });
        }
    }
    out
}

/// Extracts `audit:allow` suppressions, reporting malformed ones. Comments
/// inside `#[cfg(test)]` regions are ignored — test code is not linted, so a
/// suppression there could only ever be stale.
fn parse_suppressions(
    comments: &[Comment],
    regions: &[(u32, u32)],
    path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("audit:allow") else {
            continue;
        };
        if in_regions(regions, c.line) {
            continue;
        }
        let mut fail = |message: String| {
            findings.push(Finding {
                file: path.to_string(),
                line: c.line,
                lint: LINT_SUPPRESSION.into(),
                message,
            });
        };
        let Some((lint, after)) = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(l, a)| (l.trim(), a.trim()))
        else {
            fail("malformed suppression; use `audit:allow(<lint>) -- <reason>`".into());
            continue;
        };
        if !KNOWN_LINTS.contains(&lint) {
            fail(format!(
                "unknown lint `{lint}`; known lints: {}",
                KNOWN_LINTS.join(", ")
            ));
            continue;
        }
        let reason = after.strip_prefix("--").map(str::trim).unwrap_or_default();
        if reason.is_empty() {
            fail(format!(
                "suppression of `{lint}` has no reason; append `-- <why this \
                 site is exempt>`"
            ));
            continue;
        }
        out.push(Suppression {
            lint: lint.to_string(),
            line: c.line,
            used: false,
        });
    }
    out
}

/// Marks the first matching suppression used; returns whether one matched.
/// A suppression covers its own line (trailing comment) and the next line.
fn try_suppress(suppressions: &mut [Suppression], lint: &str, line: u32) -> bool {
    for s in suppressions.iter_mut() {
        if s.lint == lint && (s.line == line || s.line + 1 == line) {
            s.used = true;
            return true;
        }
    }
    false
}

fn lint_nondeterminism(tokens: &[&Token], path: &str, out: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokenKind::Ident && HASHER_SEEDED.contains(&t.text.as_str()) {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                lint: LINT_NONDETERMINISM.into(),
                message: format!(
                    "`{}` iterates in a process-random hasher order; use \
                     dolos_sim::flat::FlatMap/FlatSet (small, u64-keyed) or \
                     BTreeMap/BTreeSet in deterministic crates",
                    t.text
                ),
            });
        }
    }
}

fn lint_wall_clock(tokens: &[&Token], path: &str, out: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokenKind::Ident && AMBIENT_HOST_STATE.contains(&t.text.as_str()) {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                lint: LINT_WALL_CLOCK.into(),
                message: format!(
                    "`{}` reads host wall-clock/entropy, making results a \
                     function of the machine; simulated components take time \
                     as Cycle inputs (host timing belongs in dolos-bench)",
                    t.text
                ),
            });
        }
    }
}

/// Lines holding `.unwrap()`, `.expect(`, or an aborting macro invocation.
fn panic_site_lines(tokens: &[&Token]) -> Vec<(u32, String)> {
    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].kind == TokenKind::Punct && tokens[i - 1].text == ".";
        let next = tokens.get(i + 1);
        let next_is = |p: &str| next.is_some_and(|n| n.kind == TokenKind::Punct && n.text == p);
        if (t.text == "unwrap" || t.text == "expect") && prev_dot && next_is("(") {
            sites.push((t.line, format!(".{}()", t.text)));
        } else if PANIC_MACROS.contains(&t.text.as_str()) && next_is("!") {
            sites.push((t.line, format!("{}!", t.text)));
        }
    }
    sites
}

fn lint_persistence_domain(tokens: &[&Token], path: &str, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !DEVICE_WRITE_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].kind == TokenKind::Punct && tokens[i - 1].text == ".";
        let next_paren = tokens
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
        if prev_dot && next_paren {
            out.push(Finding {
                file: path.to_string(),
                line: t.line,
                lint: LINT_PERSISTENCE_DOMAIN.into(),
                message: format!(
                    "direct NvmDevice::{} call bypasses the WPQ persistence \
                     domain; route the write through the controller, or move \
                     it into a sanctioned drain/dump/recovery site",
                    t.text
                ),
            });
        }
    }
}
