//! `dolos-audit`: a dependency-free static analyzer for the Dolos workspace.
//!
//! The simulator's headline guarantee is that every result — benchmark
//! cycle counts, chaos campaign verdicts, recovery replays — is a pure
//! function of its inputs. The type system cannot see the ways that
//! guarantee quietly erodes: a `HashMap` whose iteration order varies with
//! the process hasher seed (the exact bug once hit in Ma-SU recovery
//! replay), an `Instant::now()` that couples results to the host, an
//! `.unwrap()` on a recovery path that turns a modelled crash into a real
//! one, or an `NvmDevice` write that slips past the write-pending queue.
//!
//! This crate enforces those invariants at the source level: a hand-rolled
//! comment- and string-aware lexer ([`lexer`]) feeds token-pattern lints
//! ([`lints`]) configured by a central policy ([`config`]). Run it with:
//!
//! ```text
//! cargo run -p dolos-audit -- check [--json] [--root <path>]
//! ```
//!
//! Intentional exceptions are annotated in place and must carry a reason:
//!
//! ```text
//! // audit:allow(<lint>) -- <why this site is exempt>
//! ```
//!
//! Suppressions that stop matching anything fail the audit, so the
//! exception list can only shrink alongside the code it describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod walk;

use config::{Config, LINT_PANIC_PATH};
use lints::{audit_file, SourceFile};
use report::{Finding, Report};

/// Audits a set of files under one policy.
pub fn audit_files(files: &[SourceFile], config: &Config) -> Report {
    let mut findings = Vec::new();
    let mut panic_sites = 0usize;
    for file in files {
        let out = audit_file(file, config);
        findings.extend(out.findings);
        panic_sites += out.panic_sites;
    }
    if panic_sites > config.panic_budget {
        findings.push(Finding {
            file: "(workspace)".into(),
            line: 0,
            lint: LINT_PANIC_PATH.into(),
            message: format!(
                "{panic_sites} unsuppressed unwrap/expect/panic sites outside \
                 strict files exceed the ratchet budget of {}; remove sites or \
                 annotate them with `audit:allow(panic-path) -- <reason>` (the \
                 budget only ratchets down)",
                config.panic_budget
            ),
        });
    }
    findings.sort();
    Report {
        findings,
        files_scanned: files.len(),
        panic_sites,
    }
}

/// Audits one source string under a synthetic path/crate (fixture helper).
pub fn audit_source(path: &str, krate: &str, text: &str, config: &Config) -> Report {
    audit_files(
        &[SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            text: text.to_string(),
        }],
        config,
    )
}

/// Runs the workspace audit rooted at `root` with the standard policy.
pub fn check_workspace(root: &std::path::Path) -> std::io::Result<Report> {
    let files = walk::collect_workspace(root)?;
    Ok(audit_files(&files, &Config::workspace()))
}
