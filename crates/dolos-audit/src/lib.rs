//! `dolos-audit`: a dependency-free static analyzer for the Dolos workspace.
//!
//! The simulator's headline guarantee is that every result — benchmark
//! cycle counts, chaos campaign verdicts, recovery replays — is a pure
//! function of its inputs, and the paper's security/performance arguments
//! are *structural*: key material stays inside the crypto engines, the
//! persist critical path allocates nothing, and every NVM write flows
//! through the WPQ. The type system cannot see the ways those guarantees
//! quietly erode; this crate enforces them at the source level.
//!
//! The analyzer runs in three phases:
//!
//! 1. **Per-file** — a hand-rolled comment- and string-aware lexer
//!    ([`lexer`]) feeds token-pattern lints ([`lints`]): nondeterminism,
//!    wall-clock, panic-path.
//! 2. **Workspace** — a dependency-free item parser ([`items`]) recovers
//!    `mod`/`impl`/`fn` structure from the same tokens; a conservative
//!    name-based call graph with reachability ([`graph`]) powers the
//!    interprocedural lints ([`interproc`]): secret-flow, hot-alloc, and
//!    the call-graph form of persistence-domain.
//! 3. **Suppression & budgets** — findings from both phases pass through
//!    in-source `audit:allow` suppressions, stale allows become findings,
//!    and per-crate panic ratchets are enforced.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p dolos-audit -- check [--json] [--root <path>]
//! cargo run -p dolos-audit -- list-lints
//! ```
//!
//! Intentional exceptions are annotated in place and must carry a reason:
//!
//! ```text
//! // audit:allow(<lint>) -- <why this site is exempt>
//! ```
//!
//! Suppressions that stop matching anything fail the audit, so the
//! exception list can only shrink alongside the code it describes. The
//! `--json` report (schema version 2) carries the full suppression
//! inventory so CI can diff the exception list across PRs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod interproc;
pub mod items;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod walk;

use std::collections::BTreeMap;

use config::{Config, LINT_PANIC_PATH, LINT_SUPPRESSION};
use graph::{Graph, GraphFile};
use lints::{analyze_file, try_suppress, SourceFile};
use report::{Finding, Report, SuppressedSite};

/// Audits a set of files under one policy.
pub fn audit_files(files: &[SourceFile], config: &Config) -> Report {
    // Phase A: per-file lexing, local lints, suppression extraction.
    let mut analyses = Vec::with_capacity(files.len());
    let mut graph_files = Vec::with_capacity(files.len());
    for file in files {
        let (analysis, tokens) = analyze_file(file, config);
        analyses.push(analysis);
        graph_files.push(GraphFile::new(&file.krate, &file.path, tokens));
    }

    // Phase B: item graph + interprocedural lints.
    let graph = Graph::build(&graph_files, &config.crate_deps);
    let mut interproc_by_file: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    for finding in interproc::run(&graph_files, &graph, config) {
        interproc_by_file
            .entry(match files.iter().find(|f| f.path == finding.file) {
                Some(f) => f.path.as_str(),
                None => "",
            })
            .or_default()
            .push(finding);
    }

    // Phase C: suppressions, panic budgets, inventory.
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut panic_sites = 0usize;
    let mut sites_by_crate: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, file) in files.iter().enumerate() {
        let analysis = &mut analyses[i];
        findings.append(&mut analysis.pre_findings);
        let raw = std::mem::take(&mut analysis.raw);
        let inter = interproc_by_file
            .remove(file.path.as_str())
            .unwrap_or_default();
        for finding in raw.into_iter().chain(inter) {
            if !try_suppress(&mut analysis.suppressions, &finding.lint, finding.line) {
                findings.push(finding);
            }
        }
        // Panic sites outside strict files are counted, not reported: the
        // ratchet compares each crate's total against its budget. A site
        // can still be excluded from the count with an explicit allow.
        if !analysis.strict {
            let count = analysis
                .panic_lines
                .iter()
                .filter(|(line, _)| {
                    !try_suppress(&mut analysis.suppressions, LINT_PANIC_PATH, *line)
                })
                .count();
            panic_sites += count;
            *sites_by_crate.entry(file.krate.as_str()).or_default() += count;
        }
        for s in &analysis.suppressions {
            if s.used {
                suppressed.push(SuppressedSite {
                    file: file.path.clone(),
                    line: s.line,
                    lint: s.lint.clone(),
                    reason: s.reason.clone(),
                });
            } else {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: s.line,
                    lint: LINT_SUPPRESSION.into(),
                    message: format!(
                        "audit:allow({}) matched no finding on this or the next \
                         line; delete the stale suppression",
                        s.lint
                    ),
                });
            }
        }
    }
    for (krate, count) in &sites_by_crate {
        let budget = config.panic_budget_for(krate);
        if *count > budget {
            findings.push(Finding {
                file: "(workspace)".into(),
                line: 0,
                lint: LINT_PANIC_PATH.into(),
                message: format!(
                    "{count} unsuppressed unwrap/expect/panic sites in `{krate}` \
                     exceed its ratchet budget of {budget}; remove sites or \
                     annotate them with `audit:allow(panic-path) -- <reason>` \
                     (budgets only ratchet down)"
                ),
            });
        }
    }
    findings.sort();
    suppressed.sort();
    Report {
        findings,
        files_scanned: files.len(),
        panic_sites,
        suppressed,
    }
}

/// Audits one source string under a synthetic path/crate (fixture helper).
pub fn audit_source(path: &str, krate: &str, text: &str, config: &Config) -> Report {
    audit_files(
        &[SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            text: text.to_string(),
        }],
        config,
    )
}

/// Audits several `(path, krate, text)` sources together (fixture helper
/// for cross-file reachability cases).
pub fn audit_sources(sources: &[(&str, &str, &str)], config: &Config) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, krate, text)| SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            text: text.to_string(),
        })
        .collect();
    audit_files(&files, config)
}

/// Runs the workspace audit rooted at `root` with the standard policy.
pub fn check_workspace(root: &std::path::Path) -> std::io::Result<Report> {
    let files = walk::collect_workspace(root)?;
    let mut config = Config::workspace();
    config.crate_deps = walk::crate_dependencies(root)?;
    Ok(audit_files(&files, &config))
}
