//! Workspace file discovery.
//!
//! Enumerates the root package's `src/` plus every `crates/<name>/src/`
//! tree, skipping `tests/`, `benches/`, and `examples/` directories (the
//! lints target shipped code; test modules inside `src` are excluded at the
//! token level via `#[cfg(test)]` region detection instead). Files come back
//! sorted by path so reports and the ratchet count are order-stable.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::lints::SourceFile;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["tests", "benches", "examples", "target"];

/// Collects every auditable `.rs` file under `root` (a workspace root).
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_dir(&root_src, "dolos", root, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<_> = fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let krate = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let src = dir.join("src");
            if src.is_dir() {
                collect_dir(&src, &krate, root, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Parses the workspace `Cargo.toml`s into a direct-dependency map
/// (`crate -> workspace deps`), used to scope call-graph edges. The parse
/// is deliberately minimal — no TOML library — and only records `dolos*`
/// dependency keys, which is all the graph needs.
pub fn crate_dependencies(root: &Path) -> io::Result<BTreeMap<String, BTreeSet<String>>> {
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<_> = fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path().join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        crate_dirs.sort();
        manifests.extend(crate_dirs);
    }
    let mut map = BTreeMap::new();
    for manifest in manifests {
        let text = match fs::read_to_string(&manifest) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let mut name: Option<String> = None;
        let mut deps = BTreeSet::new();
        let mut section = String::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = header.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            if section == "package" && key == "name" {
                name = Some(value.trim().trim_matches('"').to_string());
            }
            // `dolos-x = { path = ".." }` under any dependencies table,
            // including `dolos-x.path = ".."` dotted keys.
            let dep_key = key.split('.').next().unwrap_or(key);
            if section.ends_with("dependencies") && dep_key.starts_with("dolos") {
                deps.insert(dep_key.to_string());
            }
        }
        if let Some(name) = name {
            map.insert(name, deps);
        }
    }
    Ok(map)
}

fn collect_dir(
    dir: &Path,
    krate: &str,
    root: &Path,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if name.as_deref().is_some_and(|n| SKIP_DIRS.contains(&n)) {
                continue;
            }
            collect_dir(&path, krate, root, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile {
                path: rel,
                krate: krate.to_string(),
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}
