//! Workspace function table, conservative call graph, and reachability.
//!
//! Built on [`crate::items`]: every `fn` in the workspace becomes a node;
//! call sites are extracted from its body tokens and resolved *by name* —
//! there is no type inference, so a method call `.update(...)` resolves to
//! every in-scope function named `update`. Two things keep that
//! conservatism from drowning the lints in false edges:
//!
//! 1. **Receiver scoping**: `Type::name(...)` resolves only within `Type`'s
//!    impls, and `self.m(...)` prefers methods of the caller's own impl
//!    type when any exist.
//! 2. **Crate scoping**: an edge from crate A to crate B only exists when A
//!    depends on B (transitively, per the workspace `Cargo.toml`s). Without
//!    this, `dolos-core` calling `.update(...)` would acquire a bogus edge
//!    into `dolos-whisper`'s trace generator. An *empty* dependency map
//!    (the fixture default) disables the filter entirely — maximally
//!    conservative.
//!
//! Unresolvable calls (`Vec::new`, `Some(..)`, std methods) produce no
//! edges but their [`Call`] records remain visible to lints — the hot-alloc
//! lint matches allocation calls on the records themselves, not on edges.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{parse_items, parse_params, FileItems, FnItem};
use crate::lexer::{Token, TokenKind};

/// One file presented to the graph builder.
#[derive(Debug)]
pub struct GraphFile {
    /// The crate the file belongs to (e.g. `dolos-core`).
    pub krate: String,
    /// Repo-relative, `/`-separated path.
    pub path: String,
    /// The file's full token stream.
    pub tokens: Vec<Token>,
    /// Items recovered from those tokens.
    pub items: FileItems,
}

impl GraphFile {
    /// Lexes nothing — wraps an already-lexed token stream, parsing items.
    pub fn new(krate: &str, path: &str, tokens: Vec<Token>) -> Self {
        let items = parse_items(&tokens);
        Self {
            krate: krate.to_string(),
            path: path.to_string(),
            tokens,
            items,
        }
    }
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `name(...)` with no receiver or path qualifier.
    Bare(String),
    /// `recv.name(...)`; the receiver's dot-chain identifiers are in
    /// [`Call::recv`].
    Method(String),
    /// `Type::name(...)` (`Self` already substituted with the impl type).
    Typed(String, String),
}

impl Callee {
    /// The bare function name being called.
    pub fn name(&self) -> &str {
        match self {
            Callee::Bare(n) | Callee::Method(n) | Callee::Typed(_, n) => n,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// What the site names.
    pub callee: Callee,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// Token index range (into the owning file's stream) strictly inside
    /// the call's parentheses.
    pub args: (usize, usize),
    /// For method calls: the dot-chain identifiers of the receiver, in
    /// source order (`self.aes.encrypt(..)` → `["self", "aes"]`). Empty
    /// when the receiver is a compound expression.
    pub recv: Vec<String>,
    /// Node ids this call resolves to (empty for std/unknown targets).
    pub targets: Vec<usize>,
}

/// One macro invocation inside a function body.
#[derive(Debug, Clone)]
pub struct MacroUse {
    /// The macro name (`format`, `vec`, `assert`, ...).
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index range strictly inside the macro's delimiters.
    pub args: (usize, usize),
}

/// One function in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the `GraphFile` slice the graph was built from.
    pub file: usize,
    /// The owning crate.
    pub krate: String,
    /// The owning file path.
    pub path: String,
    /// The parsed item (name, impl context, token ranges).
    pub item: FnItem,
    /// `(name, type_identifiers)` per named parameter (`self` excluded).
    pub params: Vec<(String, Vec<String>)>,
    /// Call sites in this function's own body (nested fns excluded).
    pub calls: Vec<Call>,
    /// Macro invocations in this function's own body.
    pub macros: Vec<MacroUse>,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph {
    /// All function nodes, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// Deduplicated resolved callee node ids per node.
    pub edges: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Reachability from a root set: membership plus BFS parent pointers.
#[derive(Debug)]
pub struct Reach {
    /// `reached[n]` — node `n` is reachable from some root.
    pub reached: Vec<bool>,
    /// `from[n]` — the BFS predecessor of `n` (`None` for roots/unreached).
    pub from: Vec<Option<usize>>,
}

/// Keywords that can directly precede a `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 21] = [
    "if", "while", "match", "for", "in", "return", "loop", "as", "let", "else", "move", "ref",
    "break", "continue", "where", "unsafe", "await", "fn", "self", "Self", "mut",
];

impl Graph {
    /// Builds the graph over a set of files with a crate-dependency map
    /// (`crate -> direct dependencies`; empty map = allow every edge).
    pub fn build(files: &[GraphFile], crate_deps: &BTreeMap<String, BTreeSet<String>>) -> Graph {
        let mut nodes = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let owner = token_owners(file, nodes.len());
            let base = nodes.len();
            for item in &file.items.fns {
                nodes.push(FnNode {
                    file: fi,
                    krate: file.krate.clone(),
                    path: file.path.clone(),
                    item: item.clone(),
                    params: parse_params(&file.tokens, item.signature),
                    calls: Vec::new(),
                    macros: Vec::new(),
                });
            }
            for local in 0..file.items.fns.len() {
                let id = base + local;
                let (calls, macros) = extract_calls(file, &owner, id, &nodes[id].item);
                nodes[id].calls = calls;
                nodes[id].macros = macros;
            }
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(n.item.name.clone()).or_default().push(id);
        }
        let closure = dep_closure(crate_deps);

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for id in 0..nodes.len() {
            let mut resolved_per_call: Vec<Vec<usize>> = Vec::with_capacity(nodes[id].calls.len());
            let mut all: BTreeSet<usize> = BTreeSet::new();
            for call in &nodes[id].calls {
                let targets = resolve(&nodes, &by_name, &closure, id, call);
                all.extend(targets.iter().copied());
                resolved_per_call.push(targets);
            }
            for (call, targets) in nodes[id].calls.iter_mut().zip(resolved_per_call) {
                call.targets = targets;
            }
            edges[id] = all.into_iter().collect();
        }
        Graph {
            nodes,
            edges,
            by_name,
        }
    }

    /// Node ids whose function matches any `Type::name` / `name` pattern.
    pub fn resolve_roots(&self, patterns: &[String]) -> Vec<usize> {
        let mut out = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if patterns.iter().any(|p| n.item.matches(p)) {
                out.push(id);
            }
        }
        out
    }

    /// All nodes with a given bare name.
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// BFS over call edges from the given roots.
    pub fn reachable(&self, roots: &[usize]) -> Reach {
        let mut reached = vec![false; self.nodes.len()];
        let mut from = vec![None; self.nodes.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if !reached[m] {
                    reached[m] = true;
                    from[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        Reach { reached, from }
    }

    /// The qualified-name call path from a root to `node` (root first),
    /// following BFS parents. Empty if `node` is unreached.
    pub fn call_path(&self, reach: &Reach, node: usize) -> Vec<String> {
        if !reach.reached[node] {
            return Vec::new();
        }
        let mut path = vec![self.nodes[node].item.qualified()];
        let mut cur = node;
        while let Some(p) = reach.from[cur] {
            path.push(self.nodes[p].item.qualified());
            cur = p;
        }
        path.reverse();
        path
    }

    /// Identifier texts in a call/macro argument token range.
    pub fn arg_idents<'a>(
        &self,
        files: &'a [GraphFile],
        node: usize,
        range: (usize, usize),
    ) -> Vec<&'a str> {
        let tokens = &files[self.nodes[node].file].tokens;
        let (lo, hi) = range;
        let hi = hi.min(tokens.len());
        if lo >= hi {
            return Vec::new();
        }
        tokens[lo..hi]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    /// Whether the token sequence `self . <field>` (for any `field` in the
    /// given set) occurs in a call/macro argument range of `node`.
    pub fn args_mention_self_field(
        &self,
        files: &[GraphFile],
        node: usize,
        range: (usize, usize),
        fields: &BTreeSet<String>,
    ) -> Option<String> {
        let tokens = &files[self.nodes[node].file].tokens;
        let (lo, hi) = range;
        let hi = hi.min(tokens.len());
        for j in lo..hi.saturating_sub(2) {
            if tokens[j].kind == TokenKind::Ident
                && tokens[j].text == "self"
                && tokens[j + 1].kind == TokenKind::Punct
                && tokens[j + 1].text == "."
                && tokens[j + 2].kind == TokenKind::Ident
                && fields.contains(&tokens[j + 2].text)
            {
                return Some(tokens[j + 2].text.clone());
            }
        }
        None
    }
}

/// Assigns each token index to the function that owns it. Parents are
/// parsed before their nested fns, so later (inner) items overwrite: a
/// nested fn's tokens belong to the nested fn, not the enclosing one.
fn token_owners(file: &GraphFile, base: usize) -> Vec<usize> {
    let mut owner = vec![usize::MAX; file.tokens.len()];
    for (local, f) in file.items.fns.iter().enumerate() {
        // From the `fn` keyword (two tokens before the signature) through
        // the body close brace; bodiless items own just their signature.
        let start = f.signature.0.saturating_sub(2);
        let stop = if f.body == (0, 0) {
            f.signature.1
        } else {
            f.body.1
        };
        for t in owner
            .iter_mut()
            .take((stop + 1).min(file.tokens.len()))
            .skip(start)
        {
            *t = base + local;
        }
    }
    owner
}

/// Extracts the call sites and macro uses owned by node `id`.
fn extract_calls(
    file: &GraphFile,
    owner: &[usize],
    id: usize,
    item: &FnItem,
) -> (Vec<Call>, Vec<MacroUse>) {
    let mut calls = Vec::new();
    let mut macros = Vec::new();
    if item.body == (0, 0) {
        return (calls, macros);
    }
    let tokens = &file.tokens;
    // Positions inside the body interior that this fn owns (nested fn
    // tokens are excluded by ownership).
    let own: Vec<usize> = (item.body.0 + 1..item.body.1.min(tokens.len()))
        .filter(|&j| owner[j] == id)
        .collect();
    for (k, &ti) in own.iter().enumerate() {
        let t = &tokens[ti];
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next = own.get(k + 1).map(|&j| &tokens[j]);
        let next_is = |p: &str| next.is_some_and(|n| n.kind == TokenKind::Punct && n.text == p);
        if next_is("!") {
            // Macro invocation: `name ! ( .. )` / `[ .. ]` / `{ .. }`.
            if let Some(&dj) = own.get(k + 2) {
                let d = &tokens[dj];
                if d.kind == TokenKind::Punct && ["(", "[", "{"].contains(&d.text.as_str()) {
                    let close = match_delim(tokens, dj);
                    macros.push(MacroUse {
                        name: t.text.clone(),
                        line: t.line,
                        args: (dj + 1, close),
                    });
                }
            }
            continue;
        }
        if !next_is("(") {
            continue;
        }
        let open = own[k + 1];
        let close = match_delim(tokens, open);
        let prev = |back: usize| k.checked_sub(back).map(|p| &tokens[own[p]]);
        let is_p = |t: Option<&Token>, p: &str| {
            t.is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
        };
        let callee = if is_p(prev(1), ".") {
            // Method call: walk the receiver dot-chain backwards.
            let mut recv = Vec::new();
            let mut p = k as isize - 2;
            while p >= 0 {
                let rt = &tokens[own[p as usize]];
                if rt.kind != TokenKind::Ident {
                    break;
                }
                recv.push(rt.text.clone());
                if p >= 2 && is_p(Some(&tokens[own[(p - 1) as usize]]), ".") {
                    p -= 2;
                } else {
                    break;
                }
            }
            recv.reverse();
            calls.push(Call {
                callee: Callee::Method(t.text.clone()),
                line: t.line,
                args: (open + 1, close),
                recv,
                targets: Vec::new(),
            });
            continue;
        } else if is_p(prev(1), ":") && is_p(prev(2), ":") {
            match prev(3) {
                Some(ty) if ty.kind == TokenKind::Ident => {
                    let ty_name = if ty.text == "Self" {
                        item.impl_type.clone().unwrap_or_else(|| "Self".into())
                    } else {
                        ty.text.clone()
                    };
                    Callee::Typed(ty_name, t.text.clone())
                }
                // `<T as Trait>::f(..)`, turbofish tails: resolve by name.
                _ => Callee::Method(t.text.clone()),
            }
        } else {
            Callee::Bare(t.text.clone())
        };
        calls.push(Call {
            callee,
            line: t.line,
            args: (open + 1, close),
            recv: Vec::new(),
            targets: Vec::new(),
        });
    }
    (calls, macros)
}

/// Index of the token matching the delimiter at `open` (the close token
/// itself), or the last index if unbalanced.
fn match_delim(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Transitive closure of the crate dependency map.
fn dep_closure(direct: &BTreeMap<String, BTreeSet<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut closure = direct.clone();
    loop {
        let mut grew = false;
        let snapshot = closure.clone();
        for deps in closure.values_mut() {
            let mut add = BTreeSet::new();
            for d in deps.iter() {
                if let Some(transitive) = snapshot.get(d) {
                    for t in transitive {
                        if !deps.contains(t) {
                            add.insert(t.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                deps.extend(add);
                grew = true;
            }
        }
        if !grew {
            return closure;
        }
    }
}

/// Resolves one call site to candidate node ids.
fn resolve(
    nodes: &[FnNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    closure: &BTreeMap<String, BTreeSet<String>>,
    caller: usize,
    call: &Call,
) -> Vec<usize> {
    let name = call.callee.name();
    let Some(candidates) = by_name.get(name) else {
        return Vec::new();
    };
    let caller_crate = &nodes[caller].krate;
    let in_scope = |id: &usize| {
        if closure.is_empty() {
            return true;
        }
        let callee_crate = &nodes[*id].krate;
        callee_crate == caller_crate
            || closure
                .get(caller_crate)
                .is_some_and(|deps| deps.contains(callee_crate))
    };
    match &call.callee {
        Callee::Typed(ty, _) => candidates
            .iter()
            .filter(|id| nodes[**id].item.impl_type.as_deref() == Some(ty))
            .filter(|id| in_scope(id))
            .copied()
            .collect(),
        Callee::Method(_) => {
            // `self.m(..)`: prefer the caller's own impl type when it has a
            // method of that name; otherwise any in-scope fn named `m`.
            if call.recv.first().map(String::as_str) == Some("self") {
                if let Some(ty) = &nodes[caller].item.impl_type {
                    let same_impl: Vec<usize> = candidates
                        .iter()
                        .filter(|id| nodes[**id].item.impl_type.as_deref() == Some(ty.as_str()))
                        .filter(|id| in_scope(id))
                        .copied()
                        .collect();
                    // Only narrow for plain `self.m(..)`; `self.field.m(..)`
                    // dispatches on the field's type, which we don't know.
                    if call.recv.len() == 1 && !same_impl.is_empty() {
                        return same_impl;
                    }
                }
            }
            candidates
                .iter()
                .filter(|id| in_scope(id))
                .copied()
                .collect()
        }
        Callee::Bare(_) => candidates
            .iter()
            .filter(|id| nodes[**id].item.impl_type.is_none())
            .filter(|id| in_scope(id))
            .copied()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(krate: &str, path: &str, src: &str) -> GraphFile {
        GraphFile::new(krate, path, lex(src).tokens)
    }

    fn names(g: &Graph, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| g.nodes[i].item.qualified()).collect()
    }

    #[test]
    fn bare_and_typed_calls_resolve() {
        let f = file(
            "a",
            "a/src/lib.rs",
            "fn helper() {}\n\
             impl W { fn m(&self) { helper(); W::m2(); self.m2(); } fn m2(&self) {} }",
        );
        let g = Graph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let m = g.resolve_roots(&["W::m".into()]);
        assert_eq!(m.len(), 1);
        let mut callees = names(&g, &g.edges[m[0]]);
        callees.sort();
        assert_eq!(callees, vec!["W::m2", "helper"]);
    }

    #[test]
    fn self_method_prefers_own_impl() {
        let f = file(
            "a",
            "a/src/lib.rs",
            "impl A { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }",
        );
        let g = Graph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let go = g.resolve_roots(&["A::go".into()])[0];
        assert_eq!(names(&g, &g.edges[go]), vec!["A::step"]);
    }

    #[test]
    fn field_method_stays_conservative() {
        let f = file(
            "a",
            "a/src/lib.rs",
            "impl A { fn go(&self) { self.inner.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }",
        );
        let g = Graph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let go = g.resolve_roots(&["A::go".into()])[0];
        let mut callees = names(&g, &g.edges[go]);
        callees.sort();
        assert_eq!(callees, vec!["A::step", "B::step"]);
    }

    #[test]
    fn crate_scoping_blocks_non_dependency_edges() {
        let fa = file("core", "core/src/lib.rs", "fn go() { update(1); }");
        let fb = file("whisper", "whisper/src/lib.rs", "fn update(x: u32) {}");
        let fc = file("crypto", "crypto/src/lib.rs", "fn update(x: u32) {}");
        let mut deps = BTreeMap::new();
        deps.insert("core".to_string(), BTreeSet::from(["crypto".to_string()]));
        deps.insert("whisper".to_string(), BTreeSet::new());
        deps.insert("crypto".to_string(), BTreeSet::new());
        let g = Graph::build(&[fa, fb, fc], &deps);
        let go = g.resolve_roots(&["go".into()])[0];
        let callees: Vec<String> = g.edges[go]
            .iter()
            .map(|&i| g.nodes[i].krate.clone())
            .collect();
        assert_eq!(callees, vec!["crypto"]);
    }

    #[test]
    fn reachability_and_paths_cross_files() {
        let fa = file("a", "a/src/main.rs", "fn root() { mid(); }");
        let fb = file("a", "a/src/mid.rs", "fn mid() { leaf(); } fn lonely() {}");
        let fc = file("a", "a/src/leaf.rs", "fn leaf() {}");
        let g = Graph::build(&[fa, fb, fc], &BTreeMap::new());
        let roots = g.resolve_roots(&["root".into()]);
        let reach = g.reachable(&roots);
        let leaf = g.resolve_roots(&["leaf".into()])[0];
        let lonely = g.resolve_roots(&["lonely".into()])[0];
        assert!(reach.reached[leaf]);
        assert!(!reach.reached[lonely]);
        assert_eq!(g.call_path(&reach, leaf), vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn nested_fn_calls_are_not_attributed_to_parent() {
        let f = file(
            "a",
            "a/src/lib.rs",
            "fn parent() { fn child() { danger(); } child(); }\nfn danger() {}",
        );
        let g = Graph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let parent = g.resolve_roots(&["parent".into()])[0];
        let direct = names(&g, &g.edges[parent]);
        assert_eq!(direct, vec!["child"]);
        // ...but danger is still transitively reachable through child.
        let reach = g.reachable(&[parent]);
        let danger = g.resolve_roots(&["danger".into()])[0];
        assert!(reach.reached[danger]);
    }

    #[test]
    fn macros_and_method_receivers_are_recorded() {
        let f = file(
            "a",
            "a/src/lib.rs",
            "impl T { fn go(&self, key: u8) { format!(\"{:?}\", key); self.aes.encrypt(key); } }",
        );
        let g = Graph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let go = g.resolve_roots(&["T::go".into()])[0];
        let n = &g.nodes[go];
        assert_eq!(n.macros.len(), 1);
        assert_eq!(n.macros[0].name, "format");
        assert_eq!(
            g.arg_idents(std::slice::from_ref(&f), go, n.macros[0].args),
            vec!["key"]
        );
        let enc = n
            .calls
            .iter()
            .find(|c| c.callee == Callee::Method("encrypt".into()))
            .unwrap();
        assert_eq!(enc.recv, vec!["self", "aes"]);
        assert_eq!(
            g.arg_idents(std::slice::from_ref(&f), go, enc.args),
            vec!["key"]
        );
    }

    #[test]
    fn keywords_before_parens_are_not_calls() {
        let f = file(
            "a",
            "a/src/lib.rs",
            "fn go(x: u8) { if (x > 0) {} match (x, x) { _ => {} } while (x < 1) {} }",
        );
        let g = Graph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let go = g.resolve_roots(&["go".into()])[0];
        assert!(g.nodes[go].calls.is_empty());
    }

    #[test]
    fn params_are_parsed_with_type_idents() {
        let f = file(
            "a",
            "a/src/lib.rs",
            "fn go(key: &Aes128, n: usize, opt: Option<MacEngine>) {}",
        );
        let g = Graph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let go = g.resolve_roots(&["go".into()])[0];
        let p = &g.nodes[go].params;
        assert_eq!(p[0], ("key".into(), vec!["Aes128".into()]));
        assert_eq!(p[2].1, vec!["Option".to_string(), "MacEngine".to_string()]);
    }
}
