//! A minimal comment- and string-aware Rust lexer.
//!
//! The audit lints match *token* patterns, not text: `Instantiates` in a doc
//! comment must not trip the `Instant` lint, `"HashMap"` inside a string
//! literal is data, and `// audit:allow(...)` suppressions live in comments.
//! A grep cannot make those distinctions; a full parser is overkill. This
//! lexer sits in between: it understands Rust's comment forms (line, nested
//! block), string forms (plain, raw, byte, raw-byte), char literals versus
//! lifetimes, and hands back just two token kinds — identifiers and
//! punctuation — each tagged with its 1-based source line.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident,
    /// A single punctuation character (`.`, `{`, `!`, ...).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier or punctuation.
    pub kind: TokenKind,
    /// The token's text (a single char for punctuation).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One `//` line comment (block comments are skipped, not captured: the
/// `audit:allow` convention is line-comment only so a suppression is always
/// attached to a definite line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line of the comment.
    pub line: u32,
    /// Comment text with the `//` marker and surrounding whitespace removed.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Identifier and punctuation tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`, skipping comments, strings, chars, lifetimes, and numbers.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && peek(&chars, i + 1) == Some('/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            // `///` and `//!` doc comments are prose, not suppressions, but
            // capturing them uniformly is harmless: they simply never parse
            // as `audit:allow`.
            out.comments.push(Comment {
                line,
                text: text.trim_matches(['/', '!']).trim().to_string(),
            });
            i = j;
        } else if c == '/' && peek(&chars, i + 1) == Some('*') {
            i = skip_block_comment(&chars, i + 2, &mut line);
        } else if c == '"' {
            i = skip_string(&chars, i + 1, &mut line);
        } else if c == '\'' {
            i = skip_char_or_lifetime(&chars, i, &mut line);
        } else if c.is_alphabetic() || c == '_' {
            if let Some(next) = try_skip_prefixed_literal(&chars, i, &mut line) {
                i = next;
            } else {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
        } else if c.is_ascii_digit() {
            // Numbers are never matched by a lint; consume and drop. The dot
            // is deliberately excluded so `1.max(x)` still yields `.` `max`.
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
        } else {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

fn peek(chars: &[char], i: usize) -> Option<char> {
    chars.get(i).copied()
}

/// Skips a (possibly nested) block comment body; `i` points past the `/*`.
fn skip_block_comment(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut depth = 1u32;
    while i < chars.len() && depth > 0 {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '/' && peek(chars, i + 1) == Some('*') {
            depth += 1;
            i += 2;
        } else if chars[i] == '*' && peek(chars, i + 1) == Some('/') {
            depth -= 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a plain string body; `i` points past the opening quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a char literal or a lifetime starting at the `'` at `i`.
fn skip_char_or_lifetime(chars: &[char], i: usize, line: &mut u32) -> usize {
    match peek(chars, i + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote, honouring
            // nested escapes like '\'' and '\u{1F600}'.
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => return j + 1,
                    _ => j += 1,
                }
            }
            j
        }
        Some(_) if peek(chars, i + 2) == Some('\'') => i + 3, // 'x'
        Some('\n') => {
            // A stray quote before a newline; treat as punctuation-ish skip.
            *line += 1;
            i + 2
        }
        _ => {
            // Lifetime: skip the quote and the identifier after it.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            j
        }
    }
}

/// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, and `b'x'` literals,
/// which start with what looks like an identifier. Returns the index past
/// the literal, or `None` if the chars at `i` are a plain identifier.
fn try_skip_prefixed_literal(chars: &[char], i: usize, line: &mut u32) -> Option<usize> {
    let c = chars[i];
    if c == 'b' && peek(chars, i + 1) == Some('\'') {
        return Some(skip_char_or_lifetime(chars, i + 1, line));
    }
    if c == 'b' && peek(chars, i + 1) == Some('"') {
        return Some(skip_string(chars, i + 2, line));
    }
    let raw_start = if c == 'r' {
        Some(i + 1)
    } else if c == 'b' && peek(chars, i + 1) == Some('r') {
        Some(i + 2)
    } else {
        None
    }?;
    let mut hashes = 0usize;
    let mut j = raw_start;
    while peek(chars, j) == Some('#') {
        hashes += 1;
        j += 1;
    }
    if peek(chars, j) != Some('"') {
        return None; // an identifier like `r#match` or just `radius`
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"'
            && chars[j + 1..].iter().take_while(|&&h| h == '#').count() >= hashes
        {
            return Some(j + 1 + hashes);
        } else {
            j += 1;
        }
    }
    Some(j)
}

/// Line ranges (inclusive) covered by `#[cfg(test)]`-gated items.
///
/// The scan is token-based: on seeing the exact attribute `#[cfg(test)]` it
/// skips any further attributes, then brace-matches the next `{ ... }` block
/// (a `mod tests { ... }` or a gated fn/impl). An attribute followed by a
/// semicolon before any brace (e.g. a gated `use`) covers only its own lines.
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            let attr_line = tokens[i].line;
            let mut j = i + 7;
            // Skip any further attributes (e.g. `#[allow(...)]`).
            while j + 1 < tokens.len()
                && tokens[j].kind == TokenKind::Punct
                && tokens[j].text == "#"
                && tokens[j + 1].text == "["
            {
                j = skip_brackets(tokens, j + 1);
            }
            // Find the gated item's body, stopping at `;` (no body).
            let mut open = None;
            while j < tokens.len() {
                if tokens[j].kind == TokenKind::Punct {
                    if tokens[j].text == "{" {
                        open = Some(j);
                        break;
                    }
                    if tokens[j].text == ";" {
                        break;
                    }
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = match_brace(tokens, open);
                regions.push((attr_line, tokens[close.min(tokens.len() - 1)].line));
                i = close;
            } else {
                regions.push((attr_line, tokens[j.min(tokens.len() - 1)].line));
                i = j;
            }
        }
        i += 1;
    }
    regions
}

fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    let expected: [(&str, TokenKind); 7] = [
        ("#", TokenKind::Punct),
        ("[", TokenKind::Punct),
        ("cfg", TokenKind::Ident),
        ("(", TokenKind::Punct),
        ("test", TokenKind::Ident),
        (")", TokenKind::Punct),
        ("]", TokenKind::Punct),
    ];
    tokens.len() >= i + expected.len()
        && expected
            .iter()
            .zip(&tokens[i..])
            .all(|(&(text, kind), t)| t.kind == kind && t.text == text)
}

/// Given `i` at a `[`, returns the index just past its matching `]`.
fn skip_brackets(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Given `open` at a `{`, returns the index of its matching `}` (or the last
/// token if unbalanced).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Whether `line` falls inside any of the given inclusive regions.
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let b = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| *t == "HashMap").count(), 1);
    }

    #[test]
    fn doc_prose_does_not_leak_substrings() {
        // `Instantiates` must lex as one identifier, never `Instant` + tail.
        let ids = idents("/// Instantiates the workload.\nfn Instantiates_x() {}");
        assert!(ids.contains(&"Instantiates_x".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let ids = idents(src);
        // The lifetime names vanish; the code still lexes past the 'x' char.
        assert!(ids.contains(&"str".to_string()));
        assert!(!ids.contains(&"a".to_string()));
    }

    #[test]
    fn escaped_char_literals_do_not_derail() {
        let ids = idents(r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; after");
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "line1\n\"multi\nline\nstring\"\ntarget";
        let lexed = lex(src);
        let target = lexed.tokens.iter().find(|t| t.text == "target");
        assert_eq!(target.map(|t| t.line), Some(5));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("let x = 1; // audit:allow(x) -- why\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].text, "audit:allow(x) -- why");
    }

    #[test]
    fn cfg_test_region_covers_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_test_with_extra_attribute_still_matches() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n fn x() {}\n}";
        let regions = test_regions(&lex(src).tokens);
        assert_eq!(regions, vec![(1, 5)]);
    }

    #[test]
    fn cfg_test_on_braceless_item_covers_only_itself() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { x() }";
        let regions = test_regions(&lex(src).tokens);
        assert!(in_regions(&regions, 2));
        assert!(!in_regions(&regions, 3));
    }
}
