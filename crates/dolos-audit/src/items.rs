//! A lightweight item parser: `mod`/`impl`/`fn`/`struct` structure recovered
//! from the token stream.
//!
//! The token lints in [`crate::lints`] see one flat stream per file; the
//! interprocedural lints in [`crate::interproc`] need to know *which
//! function* a token belongs to, which `impl` block that function sits in,
//! and which types carry which derives and fields. This module recovers
//! exactly that much structure — no expressions, no types beyond their
//! identifier spellings — by brace-matching a single pass over the lexed
//! tokens. It is deliberately an under-parser: anything it does not
//! recognise it skips, so new syntax degrades to "fewer recorded items",
//! never to a crash or a misattributed body.

use crate::lexer::{Token, TokenKind};

/// One `fn` item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (`advance`, `pad_for`, ...).
    pub name: String,
    /// The `impl` target type, if the fn sits in an `impl` block
    /// (`SecureMemorySystem` for `impl SecureMemorySystem { fn advance }`).
    pub impl_type: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` blocks
    /// (`Debug` for `impl fmt::Debug for Aes128`).
    pub impl_trait: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[start, end)` of the signature (after the name,
    /// up to but excluding the body's `{`).
    pub signature: (usize, usize),
    /// Token index range `(open, close)` of the body braces; tokens strictly
    /// inside `open+1..close` are the body. `(0, 0)` for bodiless items
    /// (trait method declarations), which are recorded but never linted.
    pub body: (usize, usize),
}

impl FnItem {
    /// `Type::name` when in an impl block, else the bare name.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether this item matches a `Type::name` or bare-`name` pattern from
    /// a configuration list.
    pub fn matches(&self, pattern: &str) -> bool {
        match pattern.split_once("::") {
            Some((ty, name)) => self.impl_type.as_deref() == Some(ty) && self.name == name,
            None => self.impl_type.is_none() && self.name == pattern,
        }
    }
}

/// One `struct`/`enum` item with its derive list and field type spellings.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// The type's name.
    pub name: String,
    /// Traits named in `#[derive(...)]` attributes on the item.
    pub derives: Vec<String>,
    /// 1-based line of the item (or of its first derive attribute).
    pub line: u32,
    /// `(field_name, type_identifiers)` for named-field structs: every
    /// identifier appearing in the field's declared type (`Option` and
    /// `MajorSecurityUnit` for `masu: Option<MajorSecurityUnit>`). Tuple
    /// structs and enums record their payload type idents under `""`.
    pub fields: Vec<(String, Vec<String>)>,
}

/// Items recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Function items in source order (nested fns follow their parent).
    pub fns: Vec<FnItem>,
    /// Struct/enum items in source order.
    pub types: Vec<TypeItem>,
}

/// Keywords that may prefix an item and are skipped while looking for the
/// item head proper.
const MODIFIERS: [&str; 6] = ["pub", "const", "unsafe", "async", "extern", "default"];

/// Parses the items of one lexed file.
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    parse_block(tokens, 0, tokens.len(), None, None, &mut out);
    out
}

/// Parses item heads in `tokens[i..end]`, attributing fns to the given impl
/// context, recursing into `mod`/`impl`/`trait`/`fn` bodies.
fn parse_block(
    tokens: &[Token],
    mut i: usize,
    end: usize,
    impl_type: Option<&str>,
    impl_trait: Option<&str>,
    out: &mut FileItems,
) {
    let mut derives: Vec<String> = Vec::new();
    let mut attr_line: Option<u32> = None;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct && t.text == "#" {
            // Attribute: capture derive lists, remember the first line so a
            // `#[derive(Debug)]` finding points at the derive itself.
            let (next, derived) = parse_attribute(tokens, i, end);
            if !derived.is_empty() {
                attr_line.get_or_insert(t.line);
                derives.extend(derived);
            }
            i = next;
            continue;
        }
        if t.kind != TokenKind::Ident {
            // Stray punctuation between items (e.g. the `;` after a use).
            i += 1;
            continue;
        }
        match t.text.as_str() {
            m if MODIFIERS.contains(&m) => {
                // `pub(crate)` carries a paren group; skip it with the
                // modifier so the item keyword is next.
                if m == "pub" && is_punct(tokens.get(i + 1), "(") {
                    i = skip_group(tokens, i + 1, end, "(", ")");
                } else {
                    i += 1;
                }
            }
            "fn" => {
                i = parse_fn(tokens, i, end, impl_type, impl_trait, out);
                derives.clear();
                attr_line = None;
            }
            "mod" => {
                // `mod name { ... }` — recurse with the same (no) impl
                // context; `mod name;` — skip.
                let open = seek_body_open(tokens, i + 1, end);
                match open {
                    Some(open) => {
                        let close = match_brace_idx(tokens, open, end);
                        parse_block(tokens, open + 1, close, None, None, out);
                        i = close + 1;
                    }
                    None => i = seek_past(tokens, i + 1, end, ";"),
                }
                derives.clear();
                attr_line = None;
            }
            "impl" => {
                let Some(open) = seek_body_open(tokens, i + 1, end) else {
                    i = end;
                    continue;
                };
                let (ty, tr) = parse_impl_header(tokens, i + 1, open);
                let close = match_brace_idx(tokens, open, end);
                parse_block(tokens, open + 1, close, ty.as_deref(), tr.as_deref(), out);
                i = close + 1;
                derives.clear();
                attr_line = None;
            }
            "trait" => {
                // Default trait methods get fn items with no impl type.
                match seek_body_open(tokens, i + 1, end) {
                    Some(open) => {
                        let close = match_brace_idx(tokens, open, end);
                        parse_block(tokens, open + 1, close, None, None, out);
                        i = close + 1;
                    }
                    None => i = seek_past(tokens, i + 1, end, ";"),
                }
                derives.clear();
                attr_line = None;
            }
            "struct" | "enum" | "union" => {
                i = parse_type_item(tokens, i, end, &mut derives, attr_line.take(), out);
                derives.clear();
            }
            _ => {
                // `use`, `static`, `type`, `const NAME`, macro invocations,
                // expression statements inside fn bodies, ... — skip one
                // token; brace/paren groups are consumed by the callers that
                // care (fn bodies recurse through parse_block only for item
                // keywords, so expression braces just stream through).
                i += 1;
            }
        }
    }
}

/// Parses `#[...]` at `i`; returns (index past the attribute, derive names).
fn parse_attribute(tokens: &[Token], i: usize, end: usize) -> (usize, Vec<String>) {
    let Some(open) = tokens.get(i + 1).filter(|t| t.text == "[") else {
        return (i + 1, Vec::new());
    };
    let _ = open;
    let close = skip_group(tokens, i + 1, end, "[", "]");
    let mut derived = Vec::new();
    // `#[derive(A, B)]`: idents inside the parens after `derive`.
    if tokens.get(i + 2).is_some_and(|t| t.text == "derive") && is_punct(tokens.get(i + 3), "(") {
        derived = ident_texts(tokens, i + 4, close.saturating_sub(1));
    }
    (close, derived)
}

/// Parses a `fn` at `i` (the `fn` keyword); records it and returns the index
/// just past the item.
fn parse_fn(
    tokens: &[Token],
    i: usize,
    end: usize,
    impl_type: Option<&str>,
    impl_trait: Option<&str>,
    out: &mut FileItems,
) -> usize {
    let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
        return i + 1;
    };
    let sig_start = i + 2;
    // The body `{` is the first brace at angle/paren depth 0. Return types
    // never contain a bare `{`; where-clauses end at it.
    let mut j = sig_start;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut body_open = None;
    while j < end {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "{" if paren == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if paren == 0 && angle <= 0 => break, // bodiless decl
                _ => {}
            }
        }
        j += 1;
    }
    match body_open {
        Some(open) => {
            let close = match_brace_idx(tokens, open, end);
            out.fns.push(FnItem {
                name: name_tok.text.clone(),
                impl_type: impl_type.map(str::to_string),
                impl_trait: impl_trait.map(str::to_string),
                line: tokens[i].line,
                signature: (sig_start, open),
                body: (open, close),
            });
            // Recurse for nested fns (they re-enter parse_block through the
            // generic scan: only item keywords are interpreted in there).
            parse_block(tokens, open + 1, close, impl_type, impl_trait, out);
            close + 1
        }
        None => {
            out.fns.push(FnItem {
                name: name_tok.text.clone(),
                impl_type: impl_type.map(str::to_string),
                impl_trait: impl_trait.map(str::to_string),
                line: tokens[i].line,
                signature: (sig_start, j),
                body: (0, 0),
            });
            j + 1
        }
    }
}

/// Extracts `(type, trait)` from the tokens of an impl header
/// `tokens[start..open)` — everything between `impl` and the body `{`.
///
/// Grammar handled: `impl<G> TraitPath<A> for TypePath<B> where ...` and
/// `impl<G> TypePath<B> where ...`. The "name" of a path is its last
/// identifier at angle-depth 0 (so `fmt::Debug` → `Debug`,
/// `FlatMap<u64, Line>` → `FlatMap`).
fn parse_impl_header(
    tokens: &[Token],
    start: usize,
    open: usize,
) -> (Option<String>, Option<String>) {
    let mut angle = 0i32;
    let mut split = None; // index of a top-level `for`
    let mut stop = open; // start of a `where` clause, if any
    for (j, t) in tokens.iter().enumerate().take(open).skip(start) {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle = (angle - 1).max(0),
            (TokenKind::Ident, "for") if angle == 0 && split.is_none() => split = Some(j),
            (TokenKind::Ident, "where") if angle == 0 => {
                stop = j;
                break;
            }
            _ => {}
        }
    }
    let path_name = |lo: usize, hi: usize| -> Option<String> {
        let mut depth = 0i32;
        let mut name = None;
        for t in &tokens[lo..hi] {
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "<") => depth += 1,
                (TokenKind::Punct, ">") => depth = (depth - 1).max(0),
                (TokenKind::Punct, "&") | (TokenKind::Ident, "mut") => {}
                (TokenKind::Ident, id) if depth == 0 && id != "dyn" => name = Some(id.to_string()),
                _ => {}
            }
        }
        name
    };
    match split {
        Some(f) => (path_name(f + 1, stop), path_name(start, f)),
        None => (path_name(start, stop), None),
    }
}

/// Parses a `struct`/`enum`/`union` at `i`; records name, derives, fields.
fn parse_type_item(
    tokens: &[Token],
    i: usize,
    end: usize,
    derives: &mut Vec<String>,
    attr_line: Option<u32>,
    out: &mut FileItems,
) -> usize {
    let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
        return i + 1;
    };
    let mut item = TypeItem {
        name: name_tok.text.clone(),
        derives: std::mem::take(derives),
        line: attr_line.unwrap_or(tokens[i].line),
        fields: Vec::new(),
    };
    // Find the body: `{ fields }`, `( tuple );`, or unit `;`.
    let mut j = i + 2;
    let mut angle = 0i32;
    while j < end {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "{" if angle == 0 => {
                    let close = match_brace_idx(tokens, j, end);
                    parse_fields(tokens, j + 1, close, &mut item.fields);
                    out.types.push(item);
                    return close + 1;
                }
                "(" if angle == 0 => {
                    let close = skip_group(tokens, j, end, "(", ")");
                    let idents = ident_texts(tokens, j + 1, close.saturating_sub(1));
                    item.fields.push((String::new(), idents));
                    out.types.push(item);
                    return seek_past(tokens, close, end, ";");
                }
                ";" if angle == 0 => {
                    out.types.push(item);
                    return j + 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    out.types.push(item);
    j
}

/// Parses `name: Type, ...` field lists (idents of each field's type). Enum
/// variants parse as fields with payload idents, which is exactly the
/// conservative reading the secret-type scan wants.
fn parse_fields(tokens: &[Token], mut i: usize, end: usize, out: &mut Vec<(String, Vec<String>)>) {
    while i < end {
        // Skip attributes and visibility on the field.
        if is_punct(tokens.get(i), "#") {
            i = skip_group(tokens, i + 1, end, "[", "]");
            continue;
        }
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "pub" {
            if is_punct(tokens.get(i + 1), "(") {
                i = skip_group(tokens, i + 1, end, "(", ")");
            } else {
                i += 1;
            }
            continue;
        }
        let Some(name) = tokens.get(i).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        if is_punct(tokens.get(i + 1), ":") {
            // `name : Type ... ,` at depth 0.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut idents = Vec::new();
            while j < end {
                let t = &tokens[j];
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Punct, "<") | (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => {
                        depth += 1
                    }
                    (TokenKind::Punct, ">") | (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                        depth -= 1
                    }
                    (TokenKind::Punct, ",") if depth <= 0 => break,
                    (TokenKind::Ident, id) => idents.push(id.to_string()),
                    _ => {}
                }
                j += 1;
            }
            out.push((name.text.clone(), idents));
            i = j + 1;
        } else if is_punct(tokens.get(i + 1), "(") {
            // Enum variant with payload: record payload type idents.
            let close = skip_group(tokens, i + 1, end, "(", ")");
            let idents = ident_texts(tokens, i + 2, close.saturating_sub(1));
            out.push((name.text.clone(), idents));
            i = close;
        } else if is_punct(tokens.get(i + 1), "{") {
            // Struct-variant payload: recurse.
            let close = match_brace_idx(tokens, i + 1, end);
            parse_fields(tokens, i + 2, close, out);
            i = close + 1;
        } else {
            i += 1;
        }
    }
}

/// Parses a fn signature's parameter list into `(name, type_idents)` pairs.
///
/// `self` receivers are not recorded (patterns that are not `name: Type`
/// degrade to nothing); the interprocedural lints only care about named
/// params and the identifiers of their declared types.
pub fn parse_params(tokens: &[Token], sig: (usize, usize)) -> Vec<(String, Vec<String>)> {
    let (lo, hi) = sig;
    let hi = hi.min(tokens.len());
    let Some(open) =
        (lo..hi).find(|&j| tokens[j].kind == TokenKind::Punct && tokens[j].text == "(")
    else {
        return Vec::new();
    };
    let close = skip_group(tokens, open, hi, "(", ")");
    let mut out = Vec::new();
    parse_fields(tokens, open + 1, close.saturating_sub(1), &mut out);
    out
}

fn is_punct(t: Option<&Token>, p: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
}

/// Identifier texts in `tokens[lo..hi]`, with the range clamped so truncated
/// input can never produce an inverted slice.
fn ident_texts(tokens: &[Token], lo: usize, hi: usize) -> Vec<String> {
    let hi = hi.min(tokens.len());
    if lo >= hi {
        return Vec::new();
    }
    tokens[lo..hi]
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// Index just past the group opened by `opener` at `i` (`i` must be at it).
fn skip_group(tokens: &[Token], i: usize, end: usize, opener: &str, closer: &str) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if tokens[j].kind == TokenKind::Punct {
            if tokens[j].text == opener {
                depth += 1;
            } else if tokens[j].text == closer {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

/// First `{` at angle/paren depth 0 in `tokens[i..end)`, or `None` if a `;`
/// arrives first.
fn seek_body_open(tokens: &[Token], i: usize, end: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    for (j, t) in tokens.iter().enumerate().take(end).skip(i) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => return Some(j),
                ";" if paren == 0 && angle <= 0 => return None,
                _ => {}
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or `end - 1` if unbalanced).
fn match_brace_idx(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        if tokens[j].kind == TokenKind::Punct {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// Index just past the first `p` at `i..end`, or `end`.
fn seek_past(tokens: &[Token], i: usize, end: usize, p: &str) -> usize {
    for (j, t) in tokens.iter().enumerate().take(end).skip(i) {
        if t.kind == TokenKind::Punct && t.text == p {
            return j + 1;
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn free_and_impl_fns_are_recovered() {
        let src = "fn free() { body(); }\n\
                   impl Widget { pub fn method(&self) -> u32 { 7 } }\n\
                   impl fmt::Debug for Widget { fn fmt(&self, f: &mut F) -> R { x } }";
        let it = items(src);
        let names: Vec<String> = it.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free", "Widget::method", "Widget::fmt"]);
        assert_eq!(it.fns[2].impl_trait.as_deref(), Some("Debug"));
    }

    #[test]
    fn generic_impl_headers_resolve_to_last_path_ident() {
        let src = "impl<K: Ord, V> FlatMap<K, V> { fn len(&self) -> usize { 0 } }\n\
                   impl<'a> core::ops::Drop for Guard<'a> { fn drop(&mut self) {} }";
        let it = items(src);
        assert_eq!(it.fns[0].impl_type.as_deref(), Some("FlatMap"));
        assert_eq!(it.fns[1].impl_type.as_deref(), Some("Guard"));
        assert_eq!(it.fns[1].impl_trait.as_deref(), Some("Drop"));
    }

    #[test]
    fn nested_modules_and_fns_attribute_correctly() {
        let src = "mod outer { impl T { fn a() { fn inner() {} } } }\nfn tail() {}";
        let it = items(src);
        let names: Vec<String> = it.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["T::a", "T::inner", "tail"]);
    }

    #[test]
    fn derives_and_fields_are_captured() {
        let src = "#[derive(Clone, Debug)]\npub struct Holder {\n    pub aes: Aes128,\n    count: u64,\n    opt: Option<MacEngine>,\n}";
        let it = items(src);
        assert_eq!(it.types.len(), 1);
        let t = &it.types[0];
        assert_eq!(t.name, "Holder");
        assert_eq!(t.derives, vec!["Clone", "Debug"]);
        assert_eq!(t.line, 1);
        assert_eq!(t.fields[0], ("aes".into(), vec!["Aes128".into()]));
        assert_eq!(
            t.fields[2],
            ("opt".into(), vec!["Option".into(), "MacEngine".into()])
        );
    }

    #[test]
    fn tuple_structs_enums_and_unit_structs_parse() {
        let src =
            "struct Wrap(Aes128, u8);\nstruct Unit;\nenum E { A(MacEngine), B { mac: Mac64 }, C }";
        let it = items(src);
        assert_eq!(it.types.len(), 3);
        assert_eq!(it.types[0].fields[0].1, vec!["Aes128", "u8"]);
        assert!(it.types[1].fields.is_empty());
        let e = &it.types[2];
        assert!(e
            .fields
            .iter()
            .any(|(n, tys)| n == "A" && tys == &vec!["MacEngine".to_string()]));
        assert!(e.fields.iter().any(|(n, _)| n == "mac"));
    }

    #[test]
    fn bodiless_trait_methods_are_recorded_without_bodies() {
        let src = "trait T { fn required(&self) -> u8; fn provided(&self) { x() } }";
        let it = items(src);
        assert_eq!(it.fns.len(), 2);
        assert_eq!(it.fns[0].body, (0, 0));
        assert_ne!(it.fns[1].body, (0, 0));
    }

    #[test]
    fn where_clauses_and_return_generics_do_not_derail() {
        let src = "fn f<T>(x: T) -> Vec<T> where T: Clone { body() }";
        let it = items(src);
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "f");
    }

    #[test]
    fn qualified_matching() {
        let src = "impl A { fn go() {} }\nfn go() {}";
        let it = items(src);
        assert!(it.fns[0].matches("A::go"));
        assert!(!it.fns[0].matches("go"));
        assert!(it.fns[1].matches("go"));
        assert!(!it.fns[1].matches("A::go"));
    }
}
