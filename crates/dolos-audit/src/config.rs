//! The audit policy: which crates and files each lint applies to.
//!
//! The policy is data, not code — lints read it, fixtures construct their
//! own. [`Config::workspace`] is the single source of truth for the real
//! repository and is what `cargo run -p dolos-audit -- check` enforces.

use std::collections::{BTreeMap, BTreeSet};

/// Lint name: hasher-seeded collections in deterministic crates.
pub const LINT_NONDETERMINISM: &str = "nondeterminism";
/// Lint name: wall-clock or ambient-entropy reads outside the bench crate.
pub const LINT_WALL_CLOCK: &str = "wall-clock";
/// Lint name: unwrap/expect/panic on recovery paths, plus per-crate ratchets.
pub const LINT_PANIC_PATH: &str = "panic-path";
/// Lint name: NVM writes not reachable from the WPQ drain/recovery roots.
pub const LINT_PERSISTENCE_DOMAIN: &str = "persistence-domain";
/// Lint name: key material reaching formatting/serialization sinks.
pub const LINT_SECRET_FLOW: &str = "secret-flow";
/// Lint name: allocating calls reachable from the persist critical path.
pub const LINT_HOT_ALLOC: &str = "hot-alloc";
/// Lint name: malformed, unknown, or unused `audit:allow` comments.
pub const LINT_SUPPRESSION: &str = "suppression";

/// Every lint an `audit:allow` comment may name.
pub const KNOWN_LINTS: [&str; 6] = [
    LINT_NONDETERMINISM,
    LINT_WALL_CLOCK,
    LINT_PANIC_PATH,
    LINT_PERSISTENCE_DOMAIN,
    LINT_SECRET_FLOW,
    LINT_HOT_ALLOC,
];

/// One-line descriptions for `dolos-audit list-lints`, in registry order.
/// The `suppression` meta-lint is listed too — it cannot be allowed, but it
/// does appear in findings.
pub const LINT_DESCRIPTIONS: [(&str, &str); 7] = [
    (
        LINT_NONDETERMINISM,
        "hasher-seeded collections (HashMap/HashSet/...) in deterministic crates",
    ),
    (
        LINT_WALL_CLOCK,
        "wall-clock/entropy reads (Instant, SystemTime, thread_rng, ...) outside dolos-bench",
    ),
    (
        LINT_PANIC_PATH,
        "unwrap/expect/panic on recovery paths; per-crate ratchet budgets elsewhere",
    ),
    (
        LINT_PERSISTENCE_DOMAIN,
        "NvmDevice write calls not reachable from the WPQ drain/persist/recovery roots",
    ),
    (
        LINT_SECRET_FLOW,
        "key-bearing values (Aes128, MacEngine) reaching formatting/serialization sinks",
    ),
    (
        LINT_HOT_ALLOC,
        "allocating calls (Vec::new, vec!, clone, format!, ...) reachable from hot-path roots",
    ),
    (
        LINT_SUPPRESSION,
        "malformed, unknown, reason-less, or stale audit:allow comments (not allowable)",
    ),
];

/// `NvmDevice` methods that write lines without passing through the WPQ.
pub const DEVICE_WRITE_METHODS: [&str; 5] = [
    "poke",
    "write_line",
    "write_line_ticket",
    "restore_lines",
    "replay_snapshot",
];

/// The audit policy for one run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose results must be a pure function of their inputs. The
    /// nondeterminism lint bans hasher-seeded collections here.
    pub deterministic_crates: Vec<String>,
    /// Crates allowed to read wall-clock time and ambient entropy.
    pub clock_exempt_crates: Vec<String>,
    /// Path suffixes of recovery/crash-oracle files where every panic site
    /// is an individual finding (no budget).
    pub strict_panic_files: Vec<String>,
    /// Path suffixes of files allowed to call `NvmDevice` write methods
    /// directly regardless of reachability (the device itself — its own
    /// methods are the write primitives).
    pub sanctioned_persistence_files: Vec<String>,
    /// `Type::fn` / `fn` patterns naming the functions through which every
    /// NVM write must be reachable: the controller's drain/persist/crash/
    /// recover entry points.
    pub persistence_roots: Vec<String>,
    /// `Type::fn` / `fn` patterns naming the persist-critical-path roots
    /// for the hot-alloc lint.
    pub hot_path_roots: Vec<String>,
    /// Type names that carry key material.
    pub secret_types: Vec<String>,
    /// Path suffixes of files whose formatting impls for secret types are
    /// the sanctioned redacted ones.
    pub sanctioned_debug_files: Vec<String>,
    /// Per-crate maximums for unsuppressed panic sites outside strict
    /// files. Crates not listed have budget 0. Every number may only go
    /// DOWN: lowering one after a cleanup prevents regressions; raising
    /// one needs a written justification in the PR that does so.
    pub panic_budgets: Vec<(String, usize)>,
    /// Direct crate dependencies (crate → deps), used to scope call-graph
    /// edges. Empty = no scoping (maximally conservative; the fixture
    /// default). [`crate::walk::crate_dependencies`] fills it from the
    /// workspace `Cargo.toml`s.
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

impl Config {
    /// The policy enforced on this repository.
    pub fn workspace() -> Self {
        Self {
            deterministic_crates: to_vec(&[
                "dolos",
                "dolos-core",
                "dolos-crypto",
                "dolos-secmem",
                "dolos-nvm",
                "dolos-sim",
                "dolos-chaos",
                "dolos-whisper",
                "dolos-verify",
                "dolos-trace",
            ]),
            clock_exempt_crates: to_vec(&["dolos-bench"]),
            strict_panic_files: to_vec(&[
                "dolos-core/src/masu.rs",
                "dolos-nvm/src/bank.rs",
                // The work-stealing claim queue and the Ma-SU pad cache: a
                // panic in either corrupts a whole sweep or the decrypt
                // path, so no budgeted sites are tolerated.
                "dolos-sim/src/queue.rs",
                "dolos-crypto/src/padcache.rs",
                "dolos-whisper/src/oracle.rs",
                "dolos-chaos/src/driver.rs",
                "dolos-chaos/src/campaign.rs",
                "dolos-chaos/src/schedule.rs",
                "dolos-chaos/src/shrink.rs",
                "dolos-verify/src/engine.rs",
                "dolos-verify/src/campaign.rs",
                "dolos-verify/src/scenario.rs",
                "dolos-trace/src/hist.rs",
                "dolos-trace/src/attrib.rs",
                "dolos-trace/src/profile.rs",
                "dolos-trace/src/chrome.rs",
                "dolos-trace/src/lib.rs",
            ]),
            // PR 3..7 sanctioned whole controller/masu/misu files; the
            // call-graph form of the lint covers those sites through the
            // persistence roots below, so only the device itself remains.
            sanctioned_persistence_files: to_vec(&["dolos-nvm/src/device.rs"]),
            persistence_roots: to_vec(&[
                "SecureMemorySystem::drain_one",
                "SecureMemorySystem::try_persist_write",
                "SecureMemorySystem::crash",
                "SecureMemorySystem::recover",
            ]),
            hot_path_roots: to_vec(&[
                // The fixpoint drain loop: everything a persist touches.
                "SecureMemorySystem::advance",
                // Ma-SU pad and write pipeline.
                "MajorSecurityUnit::pad_for",
                "MajorSecurityUnit::secure_write",
                // Mi-SU pad and MAC paths.
                "MinorSecurityUnit::protect",
                "MinorSecurityUnit::decrypt",
                "MinorSecurityUnit::regenerate_pads",
                "MinorSecurityUnit::entry_mac",
                // The MAC engine itself.
                "MacEngine::tag",
                "MacEngine::tag_parts",
                "MacEngine::stream_tag",
            ]),
            secret_types: to_vec(&["Aes128", "MacEngine"]),
            sanctioned_debug_files: to_vec(&["dolos-crypto/src/aes.rs", "dolos-crypto/src/mac.rs"]),
            // Ratchet: 43 total sites when the audit landed (PR 3); split
            // per-crate at the exact current counts in PR 8 (still summing
            // to 43) so growth in one crate can no longer hide behind
            // cleanup in another. Unlisted crates have budget 0. Only
            // lower these.
            panic_budgets: vec![
                ("dolos-core".to_string(), 20),
                ("dolos-nvm".to_string(), 3),
                ("dolos-secmem".to_string(), 2),
                ("dolos-whisper".to_string(), 15),
                ("dolos-bench".to_string(), 3),
            ],
            crate_deps: BTreeMap::new(),
        }
    }

    /// Whether `path` (repo-relative, `/`-separated) ends with one of the
    /// given suffixes.
    pub fn path_matches(path: &str, suffixes: &[String]) -> bool {
        suffixes.iter().any(|s| path.ends_with(s.as_str()))
    }

    /// The panic budget for a crate (0 when unlisted).
    pub fn panic_budget_for(&self, krate: &str) -> usize {
        self.panic_budgets
            .iter()
            .find(|(k, _)| k == krate)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }
}

fn to_vec(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}
