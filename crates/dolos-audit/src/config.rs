//! The audit policy: which crates and files each lint applies to.
//!
//! The policy is data, not code — lints read it, fixtures construct their
//! own. [`Config::workspace`] is the single source of truth for the real
//! repository and is what `cargo run -p dolos-audit -- check` enforces.

/// Lint name: hasher-seeded collections in deterministic crates.
pub const LINT_NONDETERMINISM: &str = "nondeterminism";
/// Lint name: wall-clock or ambient-entropy reads outside the bench crate.
pub const LINT_WALL_CLOCK: &str = "wall-clock";
/// Lint name: unwrap/expect/panic on recovery paths, plus the global ratchet.
pub const LINT_PANIC_PATH: &str = "panic-path";
/// Lint name: NVM writes that bypass the write-pending queue.
pub const LINT_PERSISTENCE_DOMAIN: &str = "persistence-domain";
/// Lint name: malformed, unknown, or unused `audit:allow` comments.
pub const LINT_SUPPRESSION: &str = "suppression";

/// Every lint an `audit:allow` comment may name.
pub const KNOWN_LINTS: [&str; 4] = [
    LINT_NONDETERMINISM,
    LINT_WALL_CLOCK,
    LINT_PANIC_PATH,
    LINT_PERSISTENCE_DOMAIN,
];

/// The audit policy for one run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose results must be a pure function of their inputs. The
    /// nondeterminism lint bans hasher-seeded collections here.
    pub deterministic_crates: Vec<String>,
    /// Crates allowed to read wall-clock time and ambient entropy.
    pub clock_exempt_crates: Vec<String>,
    /// Path suffixes of recovery/crash-oracle files where every panic site
    /// is an individual finding (no budget).
    pub strict_panic_files: Vec<String>,
    /// Path suffixes of files allowed to call `NvmDevice` write methods
    /// directly (the device itself plus the controller-side drain/dump and
    /// recovery code that sits below the WPQ).
    pub sanctioned_persistence_files: Vec<String>,
    /// Maximum unsuppressed panic sites outside strict files, workspace
    /// wide. This number may only go DOWN: lowering it after a cleanup
    /// prevents regressions; raising it needs a written justification in
    /// the PR that does so.
    pub panic_budget: usize,
}

impl Config {
    /// The policy enforced on this repository.
    pub fn workspace() -> Self {
        Self {
            deterministic_crates: to_vec(&[
                "dolos",
                "dolos-core",
                "dolos-crypto",
                "dolos-secmem",
                "dolos-nvm",
                "dolos-sim",
                "dolos-chaos",
                "dolos-whisper",
                "dolos-verify",
                "dolos-trace",
            ]),
            clock_exempt_crates: to_vec(&["dolos-bench"]),
            strict_panic_files: to_vec(&[
                "dolos-core/src/masu.rs",
                "dolos-whisper/src/oracle.rs",
                "dolos-chaos/src/driver.rs",
                "dolos-chaos/src/campaign.rs",
                "dolos-chaos/src/schedule.rs",
                "dolos-chaos/src/shrink.rs",
                "dolos-verify/src/engine.rs",
                "dolos-verify/src/campaign.rs",
                "dolos-verify/src/scenario.rs",
                "dolos-trace/src/hist.rs",
                "dolos-trace/src/attrib.rs",
                "dolos-trace/src/profile.rs",
                "dolos-trace/src/chrome.rs",
                "dolos-trace/src/lib.rs",
            ]),
            sanctioned_persistence_files: to_vec(&[
                "dolos-nvm/src/device.rs",
                "dolos-core/src/masu.rs",
                "dolos-core/src/controller.rs",
                "dolos-core/src/misu.rs",
            ]),
            // Ratchet: 43 sites when the audit landed (PR 3). Only lower it.
            panic_budget: 43,
        }
    }

    /// Whether `path` (repo-relative, `/`-separated) ends with one of the
    /// given suffixes.
    pub fn path_matches(path: &str, suffixes: &[String]) -> bool {
        suffixes.iter().any(|s| path.ends_with(s.as_str()))
    }
}

fn to_vec(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}
