//! CLI for the workspace audit: `cargo run -p dolos-audit -- check`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dolos_audit::check_workspace;
use dolos_audit::config::LINT_DESCRIPTIONS;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "check" | "list-lints" if command.is_none() => command = Some(arg),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    if command.as_deref() == Some("list-lints") {
        let width = LINT_DESCRIPTIONS
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        for (name, description) in LINT_DESCRIPTIONS {
            println!("{name:width$}  {description}");
        }
        return ExitCode::SUCCESS;
    }
    if command.as_deref() != Some("check") {
        return usage("missing subcommand");
    }
    // The binary lives two levels below the workspace root.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    match check_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!(
                "dolos-audit: cannot read workspace at {}: {err}",
                root.display()
            );
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("dolos-audit: {err}");
    eprintln!("usage: dolos-audit check [--json] [--root <workspace-root>] | list-lints");
    ExitCode::from(2)
}
