//! Interprocedural lints over the workspace call graph.
//!
//! Three lints run here, all built on [`crate::graph`]:
//!
//! - **secret-flow** — key-bearing types (`Aes128`, `MacEngine`, their
//!   round-key fields) must never reach formatting/serialization sinks.
//!   Structurally: no `derive(Debug)`/`derive(Serialize)` on a secret type
//!   and no formatting impl for one outside the sanctioned redacted-Debug
//!   files. Flow-wise: no secret-typed parameter or `self.<secret-field>`
//!   may appear in a format-family macro, as a serialization-method
//!   receiver, or as an argument to any function that (transitively) feeds
//!   a parameter into formatting.
//! - **hot-alloc** — no allocating call (`Vec::new`/`vec!`/`to_vec`/
//!   `clone`/`Box::new`/`format!`/`String::from`/`Vec::with_capacity`) in
//!   any function reachable from the configured critical-path roots. The
//!   finding message carries the BFS call path from the root so the report
//!   explains *why* a function is considered hot.
//! - **persistence-domain** (call-graph form) — a direct `NvmDevice` write
//!   call is only legal inside the device itself or in a function
//!   reachable from the controller's drain/persist/crash/recover entry
//!   points; everything else is a WPQ bypass.
//!
//! False-positive policy: resolution is name-based and edges are
//! *over*-approximated (see [`crate::graph`]), so reachability-based lints
//! may consider too much code hot/sanctioned, never too little hot code.
//! The secret-flow interprocedural step deliberately excludes the
//! assert/panic macro families from its "formats a parameter" base — an
//! `assert!(buf.len() >= n)` guard would otherwise mark every pad helper
//! as a formatter and flag each key pass-through.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{
    Config, DEVICE_WRITE_METHODS, LINT_HOT_ALLOC, LINT_PERSISTENCE_DOMAIN, LINT_SECRET_FLOW,
};
use crate::graph::{Callee, Graph, GraphFile};
use crate::report::Finding;

/// Format-family macros that are sinks when a secret appears directly in
/// their arguments.
const FORMAT_MACROS_DIRECT: [&str; 10] = [
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "todo",
    "unimplemented",
];

/// Macros whose use with a *parameter* marks a function as "formats a
/// parameter" for the interprocedural step. Assert/panic families are
/// excluded: their messages only render on failure and including them
/// would flag every guard-carrying crypto helper.
const FORMAT_MACROS_INTERPROC: [&str; 7] = [
    "format", "print", "println", "eprint", "eprintln", "write", "writeln",
];

/// Method names that serialize or format their receiver/arguments.
const SINK_METHODS: [&str; 5] = ["to_json", "serialize", "to_string", "fmt", "write_json"];

/// Derives that expose a value's contents through std formatting or
/// serialization machinery.
const LEAKY_DERIVES: [&str; 3] = ["Debug", "Serialize", "Deserialize"];

/// Trait impls that expose a value's contents when hand-written.
const LEAKY_TRAITS: [&str; 3] = ["Debug", "Display", "Serialize"];

/// Calls that allocate; `(type-qualifier, name)` with `None` matching
/// method/bare forms.
const ALLOC_CALLS: [(Option<&str>, &str); 6] = [
    (Some("Vec"), "new"),
    (Some("Vec"), "with_capacity"),
    (Some("Box"), "new"),
    (Some("String"), "from"),
    (None, "to_vec"),
    (None, "clone"),
];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Runs all graph lints, returning raw (pre-suppression) findings.
pub fn run(files: &[GraphFile], graph: &Graph, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    lint_secret_flow(files, graph, config, &mut out);
    lint_hot_alloc(graph, config, &mut out);
    lint_persistence_reach(graph, config, &mut out);
    out
}

/// Per-type secret field names: the declared fields *of* each secret type,
/// plus any field anywhere whose declared type names a secret type.
fn secret_fields_by_type(
    files: &[GraphFile],
    secret_types: &[String],
) -> BTreeMap<String, BTreeSet<String>> {
    let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        for ty in &file.items.types {
            for (field, type_idents) in &ty.fields {
                if field.is_empty() {
                    continue;
                }
                let own_fields_are_secret = secret_types.contains(&ty.name);
                let field_type_is_secret = type_idents.iter().any(|t| secret_types.contains(t));
                if own_fields_are_secret || field_type_is_secret {
                    map.entry(ty.name.clone())
                        .or_default()
                        .insert(field.clone());
                }
            }
        }
    }
    map
}

/// Parameter names of `node` whose declared type names a secret type.
fn secret_params(graph: &Graph, node: usize, secret_types: &[String]) -> BTreeSet<String> {
    graph.nodes[node]
        .params
        .iter()
        .filter(|(_, tys)| tys.iter().any(|t| secret_types.contains(t)))
        .map(|(name, _)| name.clone())
        .collect()
}

fn lint_secret_flow(files: &[GraphFile], graph: &Graph, config: &Config, out: &mut Vec<Finding>) {
    let secret_types = &config.secret_types;
    let fields_by_type = secret_fields_by_type(files, secret_types);
    let empty = BTreeSet::new();

    // Structural: derives and hand-written formatting impls on secret types.
    for file in files {
        for ty in &file.items.types {
            if !secret_types.contains(&ty.name) {
                continue;
            }
            for d in &ty.derives {
                if LEAKY_DERIVES.contains(&d.as_str()) {
                    out.push(Finding {
                        file: file.path.clone(),
                        line: ty.line,
                        lint: LINT_SECRET_FLOW.into(),
                        message: format!(
                            "`derive({d})` on key-bearing type `{}` exposes its round keys \
                             through std formatting; write a redacted manual impl instead",
                            ty.name
                        ),
                    });
                }
            }
        }
    }
    for n in &graph.nodes {
        let (Some(ty), Some(tr)) = (&n.item.impl_type, &n.item.impl_trait) else {
            continue;
        };
        if secret_types.contains(ty)
            && LEAKY_TRAITS.contains(&tr.as_str())
            && !Config::path_matches(&n.path, &config.sanctioned_debug_files)
        {
            out.push(Finding {
                file: n.path.clone(),
                line: n.item.line,
                lint: LINT_SECRET_FLOW.into(),
                message: format!(
                    "`impl {tr} for {ty}` outside the sanctioned redacted impls \
                     ({}) can print key material",
                    config.sanctioned_debug_files.join(", ")
                ),
            });
        }
    }

    // "Formats a parameter" fixpoint over the call graph.
    let mut formats_param = vec![false; graph.nodes.len()];
    for (id, n) in graph.nodes.iter().enumerate() {
        let params: BTreeSet<String> = n.params.iter().map(|(p, _)| p.clone()).collect();
        if params.is_empty() {
            continue;
        }
        let uses_param = |idents: &[&str]| idents.iter().any(|i| params.contains(*i));
        let base = n.macros.iter().any(|m| {
            FORMAT_MACROS_INTERPROC.contains(&m.name.as_str())
                && uses_param(&graph.arg_idents(files, id, m.args))
        }) || n.calls.iter().any(|c| {
            SINK_METHODS.contains(&c.callee.name())
                && (c.recv.iter().any(|r| params.contains(r))
                    || uses_param(&graph.arg_idents(files, id, c.args)))
        });
        formats_param[id] = base;
    }
    loop {
        let mut grew = false;
        for id in 0..graph.nodes.len() {
            if formats_param[id] {
                continue;
            }
            let params: BTreeSet<String> = graph.nodes[id]
                .params
                .iter()
                .map(|(p, _)| p.clone())
                .collect();
            if params.is_empty() {
                continue;
            }
            let feeds = graph.nodes[id].calls.iter().any(|c| {
                c.targets.iter().any(|t| formats_param[*t])
                    && graph
                        .arg_idents(files, id, c.args)
                        .iter()
                        .any(|i| params.contains(*i))
            });
            if feeds {
                formats_param[id] = true;
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Flow findings per function.
    for (id, n) in graph.nodes.iter().enumerate() {
        let sparams = secret_params(graph, id, secret_types);
        let sfields = n
            .item
            .impl_type
            .as_ref()
            .and_then(|t| fields_by_type.get(t))
            .unwrap_or(&empty);
        if sparams.is_empty() && sfields.is_empty() {
            continue;
        }
        let secret_in = |idents: &[&str]| -> Option<String> {
            idents
                .iter()
                .find(|i| sparams.contains(**i))
                .map(|i| i.to_string())
        };
        for m in &n.macros {
            if !FORMAT_MACROS_DIRECT.contains(&m.name.as_str()) {
                continue;
            }
            let hit = secret_in(&graph.arg_idents(files, id, m.args))
                .or_else(|| graph.args_mention_self_field(files, id, m.args, sfields));
            if let Some(what) = hit {
                out.push(Finding {
                    file: n.path.clone(),
                    line: m.line,
                    lint: LINT_SECRET_FLOW.into(),
                    message: format!(
                        "key material `{what}` reaches `{}!` in `{}`; secrets must \
                         never enter formatting machinery",
                        m.name,
                        n.item.qualified()
                    ),
                });
            }
        }
        for c in &n.calls {
            let name = c.callee.name();
            if SINK_METHODS.contains(&name) {
                let via_recv = c.recv.iter().any(|r| sparams.contains(r))
                    || (c.recv.first().map(String::as_str) == Some("self")
                        && c.recv.iter().skip(1).any(|r| sfields.contains(r)));
                let hit = if via_recv {
                    Some(c.recv.join("."))
                } else {
                    secret_in(&graph.arg_idents(files, id, c.args))
                        .or_else(|| graph.args_mention_self_field(files, id, c.args, sfields))
                };
                if let Some(what) = hit {
                    out.push(Finding {
                        file: n.path.clone(),
                        line: c.line,
                        lint: LINT_SECRET_FLOW.into(),
                        message: format!(
                            "key material `{what}` reaches serialization sink `.{name}(..)` \
                             in `{}`",
                            n.item.qualified()
                        ),
                    });
                    continue;
                }
            }
            // Interprocedural: a secret argument handed to a function that
            // (transitively) feeds a parameter into formatting.
            let formatter = c.targets.iter().find(|t| formats_param[**t]);
            if let Some(&t) = formatter {
                let hit = secret_in(&graph.arg_idents(files, id, c.args))
                    .or_else(|| graph.args_mention_self_field(files, id, c.args, sfields));
                if let Some(what) = hit {
                    out.push(Finding {
                        file: n.path.clone(),
                        line: c.line,
                        lint: LINT_SECRET_FLOW.into(),
                        message: format!(
                            "key material `{what}` is passed to `{}`, which feeds a \
                             parameter into formatting machinery",
                            graph.nodes[t].item.qualified()
                        ),
                    });
                }
            }
        }
    }
}

fn lint_hot_alloc(graph: &Graph, config: &Config, out: &mut Vec<Finding>) {
    let roots = graph.resolve_roots(&config.hot_path_roots);
    let reach = graph.reachable(&roots);
    for (id, n) in graph.nodes.iter().enumerate() {
        if !reach.reached[id] {
            continue;
        }
        let path = graph.call_path(&reach, id).join(" -> ");
        for m in &n.macros {
            if ALLOC_MACROS.contains(&m.name.as_str()) {
                out.push(Finding {
                    file: n.path.clone(),
                    line: m.line,
                    lint: LINT_HOT_ALLOC.into(),
                    message: format!(
                        "`{}!` allocates on the persist critical path ({path}); \
                         use a fixed-size buffer or move the work off the hot path",
                        m.name
                    ),
                });
            }
        }
        for c in &n.calls {
            let hit = ALLOC_CALLS.iter().any(|(ty, name)| {
                *name == c.callee.name()
                    && match (ty, &c.callee) {
                        (Some(t), Callee::Typed(ct, _)) => t == ct,
                        (Some(_), _) => false,
                        (None, _) => !matches!(c.callee, Callee::Typed(_, _)),
                    }
            });
            if hit {
                let spelled = match &c.callee {
                    Callee::Typed(t, f) => format!("{t}::{f}"),
                    other => format!(".{}()", other.name()),
                };
                out.push(Finding {
                    file: n.path.clone(),
                    line: c.line,
                    lint: LINT_HOT_ALLOC.into(),
                    message: format!(
                        "`{spelled}` allocates on the persist critical path ({path}); \
                         borrow, reuse a buffer, or derive Copy instead",
                    ),
                });
            }
        }
    }
}

fn lint_persistence_reach(graph: &Graph, config: &Config, out: &mut Vec<Finding>) {
    let roots = graph.resolve_roots(&config.persistence_roots);
    let reach = graph.reachable(&roots);
    for (id, n) in graph.nodes.iter().enumerate() {
        if Config::path_matches(&n.path, &config.sanctioned_persistence_files) {
            continue;
        }
        for c in &n.calls {
            let name = c.callee.name();
            if !DEVICE_WRITE_METHODS.contains(&name) || !matches!(c.callee, Callee::Method(_)) {
                continue;
            }
            if reach.reached[id] {
                continue;
            }
            out.push(Finding {
                file: n.path.clone(),
                line: c.line,
                lint: LINT_PERSISTENCE_DOMAIN.into(),
                message: format!(
                    "`{}` calls NvmDevice::{name} but is not reachable from any \
                     persistence root ({}); route the write through the controller's \
                     WPQ drain/recovery paths",
                    n.item.qualified(),
                    config.persistence_roots.join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg() -> Config {
        Config {
            secret_types: vec!["Aes128".into(), "MacEngine".into()],
            sanctioned_debug_files: vec!["crypto/src/aes.rs".into()],
            hot_path_roots: vec!["Ctl::advance".into()],
            persistence_roots: vec!["Ctl::drain".into()],
            sanctioned_persistence_files: vec!["nvm/src/device.rs".into()],
            ..Config::workspace()
        }
    }

    fn run_on(sources: &[(&str, &str, &str)]) -> Vec<Finding> {
        let files: Vec<GraphFile> = sources
            .iter()
            .map(|(k, p, s)| GraphFile::new(k, p, lex(s).tokens))
            .collect();
        let graph = Graph::build(&files, &BTreeMap::new());
        run(&files, &graph, &cfg())
    }

    #[test]
    fn derive_debug_on_secret_type_fires() {
        let f = run_on(&[(
            "crypto",
            "crypto/src/key.rs",
            "#[derive(Clone, Debug)]\npub struct Aes128 { round_keys: [u8; 16] }",
        )]);
        assert!(f.iter().any(|f| f.lint == "secret-flow" && f.line == 1));
    }

    #[test]
    fn sanctioned_debug_impl_is_clean_elsewhere_fires() {
        let src = "pub struct Aes128 { rk: [u8; 4] }\n\
                   impl core::fmt::Debug for Aes128 { fn fmt(&self, f: &mut F) -> R { ok() } }";
        let clean = run_on(&[("crypto", "crypto/src/aes.rs", src)]);
        assert!(clean.iter().all(|f| f.lint != "secret-flow"));
        let dirty = run_on(&[("crypto", "crypto/src/other.rs", src)]);
        assert!(dirty.iter().any(|f| f.lint == "secret-flow"));
    }

    #[test]
    fn secret_param_into_format_macro_fires() {
        let f = run_on(&[(
            "a",
            "a/src/lib.rs",
            "fn dump(key: &Aes128) { println!(\"{:?}\", key); }",
        )]);
        assert_eq!(f.iter().filter(|f| f.lint == "secret-flow").count(), 1);
    }

    #[test]
    fn interprocedural_secret_flow_crosses_files() {
        let f = run_on(&[
            (
                "a",
                "a/src/caller.rs",
                "impl M { fn go(&self) { render(&self.engine); } }\n\
                 struct M { engine: MacEngine }",
            ),
            (
                "a",
                "a/src/render.rs",
                "pub fn render(e: &MacEngine) { show(e); }\n\
                 fn show(x: &MacEngine) { println!(\"{:?}\", x); }",
            ),
        ]);
        // show: direct; render: interprocedural; go: interprocedural via field.
        let lines: Vec<&str> = f
            .iter()
            .filter(|f| f.lint == "secret-flow")
            .map(|f| f.file.as_str())
            .collect();
        assert!(lines.contains(&"a/src/render.rs"));
        assert!(lines.contains(&"a/src/caller.rs"));
    }

    #[test]
    fn assert_guards_do_not_poison_helpers() {
        let f = run_on(&[(
            "a",
            "a/src/lib.rs",
            "fn pad(key: &Aes128, buf: &mut [u8]) { assert!(buf.len() >= 4); }\n\
             fn hot(k: &Aes128, out: &mut [u8]) { pad(k, out); }",
        )]);
        assert!(f.iter().all(|f| f.lint != "secret-flow"));
    }

    #[test]
    fn hot_alloc_reports_reachable_allocations_with_path() {
        let f = run_on(&[(
            "a",
            "a/src/lib.rs",
            "impl Ctl { fn advance(&mut self) { helper(); } }\n\
             fn helper() { let v = Vec::new(); other(); }\n\
             fn other() { let b = data.to_vec(); }\n\
             fn cold() { let c = Vec::new(); }",
        )]);
        let hot: Vec<&Finding> = f.iter().filter(|f| f.lint == "hot-alloc").collect();
        assert_eq!(hot.len(), 2);
        assert!(hot[0].message.contains("Ctl::advance -> helper"));
        assert!(hot.iter().all(|f| !f.message.contains("cold")));
    }

    #[test]
    fn persistence_write_outside_reach_fires() {
        let f = run_on(&[(
            "a",
            "a/src/lib.rs",
            "impl Ctl { fn drain(&mut self) { self.step(); } fn step(&mut self) { nvm.poke(a, b); } }\n\
             fn rogue(nvm: &mut N) { nvm.poke(a, b); }",
        )]);
        let p: Vec<&Finding> = f
            .iter()
            .filter(|f| f.lint == "persistence-domain")
            .collect();
        assert_eq!(p.len(), 1);
        assert!(p[0].message.contains("`rogue`"));
    }

    #[test]
    fn device_file_is_sanctioned_for_persistence() {
        let f = run_on(&[(
            "nvm",
            "nvm/src/device.rs",
            "impl N { fn poke(&mut self, a: A, b: B) { self.inner.poke(a, b); } }",
        )]);
        assert!(f.iter().all(|f| f.lint != "persistence-domain"));
    }
}
