//! Findings, the suppression inventory, and their text / JSON renderings.

use std::fmt;

/// JSON schema version of [`Report::to_json`]. Bumped when the shape
/// changes: v1 was findings/count/files_scanned/panic_sites; v2 adds this
/// field and the active-suppression inventory.
pub const SCHEMA_VERSION: u32 = 2;

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative, `/`-separated path (`(workspace)` for global findings).
    pub file: String,
    /// 1-based line (0 for global findings).
    pub line: u32,
    /// The lint that fired (one of the `LINT_*` names).
    pub lint: String,
    /// Human-readable explanation including the fix direction.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// One active (matched) `audit:allow` suppression — the exception
/// inventory CI diffs across PRs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SuppressedSite {
    /// Repo-relative, `/`-separated path.
    pub file: String,
    /// 1-based line of the `audit:allow` comment.
    pub line: u32,
    /// The allowed lint.
    pub lint: String,
    /// The written justification.
    pub reason: String,
}

/// The outcome of one audit run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Unsuppressed panic sites counted against the ratchet budgets.
    pub panic_sites: usize,
    /// Active suppressions, sorted by (file, line).
    pub suppressed: Vec<SuppressedSite>,
}

impl Report {
    /// Whether the audit passed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "audit: {} finding(s) across {} file(s); {} panic site(s) against \
             the ratchet budget; {} active suppression(s)\n",
            self.findings.len(),
            self.files_scanned,
            self.panic_sites,
            self.suppressed.len()
        ));
        out
    }

    /// Renders the machine-readable report (schema version 2).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
                escape_json(&f.file),
                f.line,
                escape_json(&f.lint),
                escape_json(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressions\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"reason\": \"{}\"}}",
                escape_json(&s.file),
                s.line,
                escape_json(&s.lint),
                escape_json(&s.reason)
            ));
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"count\": {},\n  \"files_scanned\": {},\n  \"panic_sites\": {}\n}}\n",
            self.findings.len(),
            self.files_scanned,
            self.panic_sites
        ));
        out
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_json_render_findings() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/x/src/a.rs".into(),
                line: 7,
                lint: "nondeterminism".into(),
                message: "say \"no\"".into(),
            }],
            files_scanned: 3,
            panic_sites: 2,
            suppressed: vec![SuppressedSite {
                file: "crates/x/src/b.rs".into(),
                line: 9,
                lint: "panic-path".into(),
                reason: "cache invariant".into(),
            }],
        };
        assert!(report.to_text().contains("a.rs:7: [nondeterminism]"));
        assert!(report.to_text().contains("1 active suppression(s)"));
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("say \\\"no\\\""));
        assert!(json.contains("\"panic_sites\": 2"));
        assert!(json.contains("\"reason\": \"cache invariant\""));
    }

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let report = Report::default();
        assert!(report.is_clean());
        let json = report.to_json();
        assert!(json.contains("\"findings\": [],"));
        assert!(json.contains("\"suppressions\": [],"));
    }
}
