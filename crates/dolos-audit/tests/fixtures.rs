//! Fixture tests: every lint pinned both firing and suppressed.
//!
//! These are the audit's own regression suite. Each lint gets (at least) a
//! pair of fixtures — one where it must fire, one where an `audit:allow`
//! with a reason silences it — plus hygiene cases for the suppression
//! grammar itself, cross-file cases for the call-graph lints, two *graft*
//! tests that re-introduce real historical violations into the live
//! workspace sources, and a final test that the real workspace is clean.
//! That last test is what makes the audit self-enforcing: reverting one of
//! the determinism migrations, re-deriving `Debug` on a key-bearing type,
//! or deleting a suppression whose finding is still live flips
//! `cargo run -p dolos-audit -- check` (and this test) to red.

use std::collections::BTreeMap;

use dolos_audit::config::Config;
use dolos_audit::report::Report;
use dolos_audit::{audit_files, audit_source, audit_sources, check_workspace, walk};

fn fixture_config() -> Config {
    Config {
        deterministic_crates: vec!["det".into()],
        clock_exempt_crates: vec!["bench".into()],
        strict_panic_files: vec!["src/strict.rs".into()],
        sanctioned_persistence_files: vec!["src/device.rs".into()],
        persistence_roots: vec!["Ctl::drain".into()],
        hot_path_roots: vec!["Ctl::advance".into()],
        secret_types: vec!["Aes128".into(), "MacEngine".into()],
        sanctioned_debug_files: vec!["src/aes.rs".into()],
        panic_budgets: Vec::new(),
        crate_deps: BTreeMap::new(),
    }
}

fn lints_fired(path: &str, krate: &str, text: &str) -> Vec<String> {
    audit_source(path, krate, text, &fixture_config())
        .findings
        .into_iter()
        .map(|f| f.lint)
        .collect()
}

// --- nondeterminism -------------------------------------------------------

#[test]
fn nondeterminism_fires_on_hash_collections_in_deterministic_crates() {
    let src = "use std::collections::HashMap;\nfn f() { let m: HashSet<u64> = x(); }\n";
    let fired = lints_fired("src/a.rs", "det", src);
    assert_eq!(fired, vec!["nondeterminism", "nondeterminism"]);
}

#[test]
fn nondeterminism_is_silent_outside_deterministic_crates() {
    let src = "use std::collections::HashMap;\n";
    assert!(lints_fired("src/a.rs", "bench", src).is_empty());
}

#[test]
fn nondeterminism_ignores_comments_strings_and_tests() {
    let src = r#"
// A HashMap would be wrong here.
fn f() { let s = "HashMap"; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
}
"#;
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

#[test]
fn nondeterminism_suppression_with_reason_holds() {
    let src = "// audit:allow(nondeterminism) -- insertion-order scan only, never iterated\n\
               use std::collections::HashMap;\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

#[test]
fn trailing_same_line_suppression_holds() {
    let src =
        "use std::collections::HashMap; // audit:allow(nondeterminism) -- bounded, sorted on use\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- wall-clock -----------------------------------------------------------

#[test]
fn wall_clock_fires_outside_the_bench_crate() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(lints_fired("src/a.rs", "det", src), vec!["wall-clock"]);
    let src2 = "fn f() -> SystemTime { SystemTime::now() }\n";
    assert_eq!(
        lints_fired("src/a.rs", "other", src2),
        vec!["wall-clock", "wall-clock"]
    );
}

#[test]
fn wall_clock_is_allowed_in_bench_and_suppressible_elsewhere() {
    let src = "fn f() { let t = Instant::now(); }\n";
    assert!(lints_fired("src/a.rs", "bench", src).is_empty());
    let suppressed = "// audit:allow(wall-clock) -- progress logging only, not in results\n\
                      fn f() { let t = Instant::now(); }\n";
    assert!(lints_fired("src/a.rs", "det", suppressed).is_empty());
}

#[test]
fn wall_clock_does_not_match_identifier_substrings() {
    // `Instantiates` in prose and code must not trip the `Instant` rule.
    let src = "/// Instantiates the workload.\nfn instantiate_it() {}\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- panic-path -----------------------------------------------------------

#[test]
fn panic_path_fires_per_site_in_strict_files() {
    let src = "fn recover() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); unreachable!(); }\n";
    let fired = lints_fired("src/strict.rs", "det", src);
    assert_eq!(fired.len(), 4);
    assert!(fired.iter().all(|l| l == "panic-path"));
}

#[test]
fn panic_path_in_strict_files_is_suppressible_per_site() {
    let src = "// audit:allow(panic-path) -- invariant checked on the previous line\n\
               fn recover() { x.unwrap(); }\n";
    assert!(lints_fired("src/strict.rs", "det", src).is_empty());
}

#[test]
fn panic_budget_ratchets_per_crate() {
    let src = "fn f() { a.unwrap(); b.expect(\"m\"); }\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 2);
    // `det` has no budget entry in the fixture config (budget 0): the
    // per-crate workspace finding fires and names the crate.
    let budget = report
        .findings
        .iter()
        .find(|f| f.file == "(workspace)")
        .expect("budget finding");
    assert_eq!(budget.lint, "panic-path");
    assert!(budget.message.contains("ratchet"));
    assert!(budget.message.contains("`det`"));
}

#[test]
fn panic_budget_is_counted_per_crate_not_globally() {
    // Two crates with one site each against per-crate budgets of 1: clean.
    // The old global ratchet could not express this.
    let mut config = fixture_config();
    config.panic_budgets = vec![("det".into(), 1), ("other".into(), 1)];
    let report = audit_sources(
        &[
            ("src/a.rs", "det", "fn f() { a.unwrap(); }\n"),
            ("src/b.rs", "other", "fn g() { b.unwrap(); }\n"),
        ],
        &config,
    );
    assert!(report.is_clean(), "{}", report.to_text());
    assert_eq!(report.panic_sites, 2);
    // Concentrating both sites in one crate blows that crate's budget.
    let report = audit_sources(
        &[
            ("src/a.rs", "det", "fn f() { a.unwrap(); }\n"),
            ("src/b.rs", "det", "fn g() { b.unwrap(); }\n"),
        ],
        &config,
    );
    assert!(!report.is_clean());
}

#[test]
fn allowed_panic_sites_do_not_count_against_the_budget() {
    let src = "// audit:allow(panic-path) -- bounded arithmetic, cannot overflow\n\
               fn f() { a.unwrap(); }\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 0);
    assert!(report.is_clean());
}

#[test]
fn panic_sites_in_test_modules_are_free() {
    let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(\"boom\"); }\n}\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 0);
    assert!(report.is_clean());
}

#[test]
fn unwrap_like_identifiers_are_not_panic_sites() {
    let src = "fn f() { a.unwrap_or(0); b.unwrap_or_default(); expect(c); }\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 0);
}

// --- persistence-domain (call-graph form) ---------------------------------

#[test]
fn persistence_domain_fires_outside_the_persistence_reach() {
    let src = "fn f(nvm: &mut NvmDevice) { nvm.poke(a, &d); nvm.restore_lines(&v); }\n";
    let fired = lints_fired("src/a.rs", "det", src);
    assert_eq!(fired, vec!["persistence-domain", "persistence-domain"]);
}

#[test]
fn persistence_domain_allows_writes_reachable_from_a_root() {
    // `drain` (a configured persistence root) -> helper -> device write:
    // legal, even across files and without any sanctioned-file carve-out.
    let report = audit_sources(
        &[
            (
                "src/ctl.rs",
                "det",
                "impl Ctl { fn drain(&mut self) { flush(&mut self.nvm); } }\n",
            ),
            (
                "src/flush.rs",
                "det",
                "pub fn flush(nvm: &mut NvmDevice) { nvm.write_line(now, a, &d); }\n",
            ),
        ],
        &fixture_config(),
    );
    assert!(report.is_clean(), "{}", report.to_text());
}

#[test]
fn persistence_domain_fires_on_rogue_writes_next_to_legal_ones() {
    // Same device method, two callers: only the one outside the
    // drain-reachable region is a WPQ bypass.
    let report = audit_sources(
        &[
            (
                "src/ctl.rs",
                "det",
                "impl Ctl { fn drain(&mut self) { self.step(); }\n\
                 fn step(&mut self) { self.nvm.poke(a, b); } }\n",
            ),
            (
                "src/rogue.rs",
                "det",
                "fn rogue(nvm: &mut NvmDevice) { nvm.poke(a, b); }\n",
            ),
        ],
        &fixture_config(),
    );
    let fired: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "persistence-domain")
        .collect();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].file, "src/rogue.rs");
    assert!(fired[0].message.contains("`rogue`"));
}

#[test]
fn persistence_domain_is_silent_in_sanctioned_files_and_on_definitions() {
    let call = "fn f(nvm: &mut NvmDevice) { nvm.write_line(now, a, &d); }\n";
    assert!(lints_fired("src/device.rs", "det", call).is_empty());
    // A method *definition* is not a call: no `.` before the name.
    let def = "impl NvmDevice { pub fn write_line(&mut self) {} }\n";
    assert!(lints_fired("src/a.rs", "det", def).is_empty());
}

#[test]
fn persistence_domain_suppression_with_reason_holds() {
    let src = "// audit:allow(persistence-domain) -- fault injection bypasses ADR on purpose\n\
               fn f(nvm: &mut NvmDevice) { nvm.replay_snapshot(a, &s); }\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- secret-flow ----------------------------------------------------------

#[test]
fn secret_flow_fires_on_leaky_derive() {
    let src = "#[derive(Clone, Debug)]\npub struct Aes128 { round_keys: [u32; 44] }\n";
    assert_eq!(lints_fired("src/key.rs", "det", src), vec!["secret-flow"]);
}

#[test]
fn secret_flow_fires_on_format_of_secret_param() {
    let src = "fn dump(key: &Aes128) { println!(\"{:?}\", key); }\n";
    assert_eq!(lints_fired("src/a.rs", "det", src), vec!["secret-flow"]);
}

#[test]
fn secret_flow_allows_sanctioned_redacted_debug_impl() {
    let src = "impl core::fmt::Debug for MacEngine {\n\
               fn fmt(&self, f: &mut Formatter) -> Result { redacted(f) }\n}\n";
    // Sanctioned in src/aes.rs per the fixture config, a finding elsewhere.
    assert!(lints_fired("src/aes.rs", "det", src).is_empty());
    assert_eq!(lints_fired("src/b.rs", "det", src), vec!["secret-flow"]);
}

#[test]
fn secret_flow_crosses_files_interprocedurally() {
    // caller.rs passes a secret field to render(), which hands its
    // parameter to a format macro in another file: both ends are findings.
    let report = audit_sources(
        &[
            (
                "src/caller.rs",
                "det",
                "struct Unit { engine: MacEngine }\n\
                 impl Unit { fn go(&self) { render(&self.engine); } }\n",
            ),
            (
                "src/render.rs",
                "det",
                "pub fn render(e: &MacEngine) { println!(\"{:?}\", e); }\n",
            ),
        ],
        &fixture_config(),
    );
    let files: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.lint == "secret-flow")
        .map(|f| f.file.as_str())
        .collect();
    assert!(files.contains(&"src/caller.rs"), "{}", report.to_text());
    assert!(files.contains(&"src/render.rs"), "{}", report.to_text());
}

#[test]
fn secret_flow_suppression_with_reason_holds() {
    let src = "// audit:allow(secret-flow) -- key id only, not key material\n\
               fn dump(key: &Aes128) { println!(\"{:?}\", key); }\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- hot-alloc ------------------------------------------------------------

#[test]
fn hot_alloc_fires_with_the_call_path_from_the_root() {
    let src = "impl Ctl { fn advance(&mut self) { helper(); } }\n\
               fn helper() { let v = Vec::new(); }\n\
               fn cold() { let c = Vec::new(); }\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    let hot: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "hot-alloc")
        .collect();
    assert_eq!(hot.len(), 1, "{}", report.to_text());
    assert!(hot[0].message.contains("Ctl::advance -> helper"));
}

#[test]
fn hot_alloc_crosses_files() {
    let report = audit_sources(
        &[
            (
                "src/ctl.rs",
                "det",
                "impl Ctl { fn advance(&mut self) { pad(&mut self.buf); } }\n",
            ),
            (
                "src/pad.rs",
                "det",
                "pub fn pad(buf: &mut [u8]) { let v = vec![0u8; 64]; }\n",
            ),
        ],
        &fixture_config(),
    );
    let hot: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "hot-alloc")
        .collect();
    assert_eq!(hot.len(), 1, "{}", report.to_text());
    assert_eq!(hot[0].file, "src/pad.rs");
}

#[test]
fn hot_alloc_suppression_with_reason_holds() {
    let src = "impl Ctl { fn advance(&mut self) {\n\
               let v = Vec::new(); // audit:allow(hot-alloc) -- setup only, outside timed region\n\
               } }\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- suppression hygiene --------------------------------------------------

#[test]
fn suppression_without_reason_is_a_finding() {
    let src = "// audit:allow(nondeterminism)\nuse std::collections::HashMap;\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    let lints: Vec<_> = report.findings.iter().map(|f| f.lint.as_str()).collect();
    // The bad allow is reported AND the underlying finding still fires.
    assert!(lints.contains(&"suppression"));
    assert!(lints.contains(&"nondeterminism"));
}

#[test]
fn suppression_of_unknown_lint_is_a_finding() {
    let src = "// audit:allow(made-up-lint) -- because\nfn f() {}\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("unknown lint"));
}

#[test]
fn deleting_the_violation_strands_the_suppression() {
    // The allow outlives the HashMap it used to cover: the audit must go
    // red until the stale comment is deleted too.
    let src = "// audit:allow(nondeterminism) -- justified once upon a time\nfn f() {}\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].lint, "suppression");
    assert!(report.findings[0].message.contains("stale"));
}

#[test]
fn suppression_only_covers_adjacent_lines() {
    let src =
        "// audit:allow(nondeterminism) -- too far away\n\n\nuse std::collections::HashMap;\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    let lints: Vec<_> = report.findings.iter().map(|f| f.lint.as_str()).collect();
    assert!(lints.contains(&"nondeterminism"));
    assert!(lints.contains(&"suppression")); // and the allow counts as stale
}

#[test]
fn active_suppressions_appear_in_the_inventory() {
    let src = "// audit:allow(nondeterminism) -- bounded, sorted on use\n\
               use std::collections::HashMap;\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert!(report.is_clean());
    assert_eq!(report.suppressed.len(), 1);
    let s = &report.suppressed[0];
    assert_eq!(s.lint, "nondeterminism");
    assert_eq!(s.reason, "bounded, sorted on use");
    assert!(report
        .to_json()
        .contains("\"reason\": \"bounded, sorted on use\""));
}

// --- graft tests: re-introduce real violations into the live sources ------

/// Loads the real workspace, applies one textual edit to one file, and
/// audits the result under the real policy. The anchor must exist — if the
/// source drifts, the assert points at this test instead of silently
/// auditing an unmodified tree.
fn grafted_workspace(path_suffix: &str, anchor: &str, replacement: &str) -> Report {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = walk::collect_workspace(&root).expect("workspace readable");
    let file = files
        .iter_mut()
        .find(|f| f.path.ends_with(path_suffix))
        .expect("graft target exists");
    assert!(
        file.text.contains(anchor),
        "graft anchor vanished from {path_suffix}; update this test"
    );
    file.text = file.text.replace(anchor, replacement);
    let mut config = Config::workspace();
    config.crate_deps = walk::crate_dependencies(&root).expect("manifests readable");
    audit_files(&files, &config)
}

#[test]
fn graft_rederiving_debug_on_aes128_fires_secret_flow() {
    let report = grafted_workspace(
        "dolos-crypto/src/aes.rs",
        "pub struct Aes128 {",
        "#[derive(Debug)]\npub struct Aes128 {",
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.lint == "secret-flow" && f.file.ends_with("aes.rs")),
        "{}",
        report.to_text()
    );
}

#[test]
fn graft_allocating_pad_path_fires_hot_alloc() {
    // Re-introduce a per-write allocation into the Ma-SU pad pipeline — now
    // the pad-cache miss path in dolos-crypto, reached from the hot root
    // `MajorSecurityUnit::pad_for`; the audit must name it and explain the
    // cross-crate path from that root.
    let report = grafted_workspace(
        "dolos-crypto/src/padcache.rs",
        "let pad = pad_line(key, &iv);",
        "let _scratch = iv.to_vec();\n        let pad = pad_line(key, &iv);",
    );
    let hit = report
        .findings
        .iter()
        .find(|f| f.lint == "hot-alloc" && f.file.ends_with("padcache.rs"));
    let hit = hit.unwrap_or_else(|| panic!("expected hot-alloc:\n{}", report.to_text()));
    assert!(hit.message.contains("to_vec"), "{}", hit.message);
}

#[test]
fn graft_panic_in_claim_queue_fires_strict_panic() {
    // The work-stealing claim queue is on the strict-panic list: a single
    // grafted panic in `claim` must surface as an individual finding, not
    // disappear into a crate budget.
    let report = grafted_workspace(
        "dolos-sim/src/queue.rs",
        "let block = block.max(1);",
        "if block == usize::MAX { panic!(\"bad block\"); }\n        let block = block.max(1);",
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.lint == "panic-path" && f.file.ends_with("queue.rs")),
        "{}",
        report.to_text()
    );
}

// --- the real workspace ---------------------------------------------------

#[test]
fn workspace_is_audit_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_workspace(&root).expect("workspace readable");
    assert!(
        report.is_clean(),
        "workspace audit must be clean:\n{}",
        report.to_text()
    );
    // The walker found the whole workspace, not a subdirectory.
    assert!(report.files_scanned > 50, "only {}", report.files_scanned);
    // Ratchet sanity: the recorded budgets match reality. If you removed
    // panic sites, lower the crate's entry in
    // `Config::workspace().panic_budgets` to match.
    let total: usize = Config::workspace()
        .panic_budgets
        .iter()
        .map(|(_, b)| *b)
        .sum();
    assert!(report.panic_sites <= total);
}
