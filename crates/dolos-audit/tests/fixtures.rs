//! Fixture tests: every lint pinned both firing and suppressed.
//!
//! These are the audit's own regression suite. Each lint gets (at least) a
//! pair of fixtures — one where it must fire, one where an `audit:allow`
//! with a reason silences it — plus hygiene cases for the suppression
//! grammar itself, and a final test that the real workspace is clean. That
//! last test is what makes the audit self-enforcing: reverting one of the
//! determinism migrations, or deleting a suppression whose finding is still
//! live, flips `cargo run -p dolos-audit -- check` (and this test) to red.

use dolos_audit::config::Config;
use dolos_audit::{audit_source, check_workspace};

fn fixture_config() -> Config {
    Config {
        deterministic_crates: vec!["det".into()],
        clock_exempt_crates: vec!["bench".into()],
        strict_panic_files: vec!["src/strict.rs".into()],
        sanctioned_persistence_files: vec!["src/device.rs".into()],
        panic_budget: 0,
    }
}

fn lints_fired(path: &str, krate: &str, text: &str) -> Vec<String> {
    audit_source(path, krate, text, &fixture_config())
        .findings
        .into_iter()
        .map(|f| f.lint)
        .collect()
}

// --- nondeterminism -------------------------------------------------------

#[test]
fn nondeterminism_fires_on_hash_collections_in_deterministic_crates() {
    let src = "use std::collections::HashMap;\nfn f() { let m: HashSet<u64> = x(); }\n";
    let fired = lints_fired("src/a.rs", "det", src);
    assert_eq!(fired, vec!["nondeterminism", "nondeterminism"]);
}

#[test]
fn nondeterminism_is_silent_outside_deterministic_crates() {
    let src = "use std::collections::HashMap;\n";
    assert!(lints_fired("src/a.rs", "bench", src).is_empty());
}

#[test]
fn nondeterminism_ignores_comments_strings_and_tests() {
    let src = r#"
// A HashMap would be wrong here.
fn f() { let s = "HashMap"; }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
}
"#;
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

#[test]
fn nondeterminism_suppression_with_reason_holds() {
    let src = "// audit:allow(nondeterminism) -- insertion-order scan only, never iterated\n\
               use std::collections::HashMap;\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

#[test]
fn trailing_same_line_suppression_holds() {
    let src =
        "use std::collections::HashMap; // audit:allow(nondeterminism) -- bounded, sorted on use\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- wall-clock -----------------------------------------------------------

#[test]
fn wall_clock_fires_outside_the_bench_crate() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(lints_fired("src/a.rs", "det", src), vec!["wall-clock"]);
    let src2 = "fn f() -> SystemTime { SystemTime::now() }\n";
    assert_eq!(
        lints_fired("src/a.rs", "other", src2),
        vec!["wall-clock", "wall-clock"]
    );
}

#[test]
fn wall_clock_is_allowed_in_bench_and_suppressible_elsewhere() {
    let src = "fn f() { let t = Instant::now(); }\n";
    assert!(lints_fired("src/a.rs", "bench", src).is_empty());
    let suppressed = "// audit:allow(wall-clock) -- progress logging only, not in results\n\
                      fn f() { let t = Instant::now(); }\n";
    assert!(lints_fired("src/a.rs", "det", suppressed).is_empty());
}

#[test]
fn wall_clock_does_not_match_identifier_substrings() {
    // `Instantiates` in prose and code must not trip the `Instant` rule.
    let src = "/// Instantiates the workload.\nfn instantiate_it() {}\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- panic-path -----------------------------------------------------------

#[test]
fn panic_path_fires_per_site_in_strict_files() {
    let src = "fn recover() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); unreachable!(); }\n";
    let fired = lints_fired("src/strict.rs", "det", src);
    assert_eq!(fired.len(), 4);
    assert!(fired.iter().all(|l| l == "panic-path"));
}

#[test]
fn panic_path_in_strict_files_is_suppressible_per_site() {
    let src = "// audit:allow(panic-path) -- invariant checked on the previous line\n\
               fn recover() { x.unwrap(); }\n";
    assert!(lints_fired("src/strict.rs", "det", src).is_empty());
}

#[test]
fn panic_budget_ratchets_on_non_strict_files() {
    let src = "fn f() { a.unwrap(); b.expect(\"m\"); }\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 2);
    // Budget is 0 in the fixture config: the workspace-level finding fires.
    let budget = report
        .findings
        .iter()
        .find(|f| f.file == "(workspace)")
        .expect("budget finding");
    assert_eq!(budget.lint, "panic-path");
    assert!(budget.message.contains("ratchet"));
}

#[test]
fn allowed_panic_sites_do_not_count_against_the_budget() {
    let src = "// audit:allow(panic-path) -- bounded arithmetic, cannot overflow\n\
               fn f() { a.unwrap(); }\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 0);
    assert!(report.is_clean());
}

#[test]
fn panic_sites_in_test_modules_are_free() {
    let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(\"boom\"); }\n}\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 0);
    assert!(report.is_clean());
}

#[test]
fn unwrap_like_identifiers_are_not_panic_sites() {
    let src = "fn f() { a.unwrap_or(0); b.unwrap_or_default(); expect(c); }\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.panic_sites, 0);
}

// --- persistence-domain ---------------------------------------------------

#[test]
fn persistence_domain_fires_outside_sanctioned_files() {
    let src = "fn f(nvm: &mut NvmDevice) { nvm.poke(a, &d); nvm.restore_lines(&v); }\n";
    let fired = lints_fired("src/a.rs", "det", src);
    assert_eq!(fired, vec!["persistence-domain", "persistence-domain"]);
}

#[test]
fn persistence_domain_is_silent_in_sanctioned_files_and_on_definitions() {
    let call = "fn f(nvm: &mut NvmDevice) { nvm.write_line(now, a, &d); }\n";
    assert!(lints_fired("src/device.rs", "det", call).is_empty());
    // A method *definition* is not a call: no `.` before the name.
    let def = "impl NvmDevice { pub fn write_line(&mut self) {} }\n";
    assert!(lints_fired("src/a.rs", "det", def).is_empty());
}

#[test]
fn persistence_domain_suppression_with_reason_holds() {
    let src = "// audit:allow(persistence-domain) -- fault injection bypasses ADR on purpose\n\
               fn f(nvm: &mut NvmDevice) { nvm.replay_snapshot(a, &s); }\n";
    assert!(lints_fired("src/a.rs", "det", src).is_empty());
}

// --- suppression hygiene --------------------------------------------------

#[test]
fn suppression_without_reason_is_a_finding() {
    let src = "// audit:allow(nondeterminism)\nuse std::collections::HashMap;\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    let lints: Vec<_> = report.findings.iter().map(|f| f.lint.as_str()).collect();
    // The bad allow is reported AND the underlying finding still fires.
    assert!(lints.contains(&"suppression"));
    assert!(lints.contains(&"nondeterminism"));
}

#[test]
fn suppression_of_unknown_lint_is_a_finding() {
    let src = "// audit:allow(made-up-lint) -- because\nfn f() {}\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("unknown lint"));
}

#[test]
fn deleting_the_violation_strands_the_suppression() {
    // The allow outlives the HashMap it used to cover: the audit must go
    // red until the stale comment is deleted too.
    let src = "// audit:allow(nondeterminism) -- justified once upon a time\nfn f() {}\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].lint, "suppression");
    assert!(report.findings[0].message.contains("stale"));
}

#[test]
fn suppression_only_covers_adjacent_lines() {
    let src =
        "// audit:allow(nondeterminism) -- too far away\n\n\nuse std::collections::HashMap;\n";
    let report = audit_source("src/a.rs", "det", src, &fixture_config());
    let lints: Vec<_> = report.findings.iter().map(|f| f.lint.as_str()).collect();
    assert!(lints.contains(&"nondeterminism"));
    assert!(lints.contains(&"suppression")); // and the allow counts as stale
}

// --- the real workspace ---------------------------------------------------

#[test]
fn workspace_is_audit_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_workspace(&root).expect("workspace readable");
    assert!(
        report.is_clean(),
        "workspace audit must be clean:\n{}",
        report.to_text()
    );
    // The walker found the whole workspace, not a subdirectory.
    assert!(report.files_scanned > 50, "only {}", report.files_scanned);
    // Ratchet sanity: the recorded budget matches reality. If you removed
    // panic sites, lower `Config::workspace().panic_budget` to match.
    assert!(report.panic_sites <= Config::workspace().panic_budget);
}
