//! Differential property tests for [`SetAssocCache`].
//!
//! A naive reference model — plain vectors, no statistics, the same
//! multiplicative set hash and tick-based LRU — is driven in lockstep
//! with the real cache under seeded operation sequences. Every return
//! value and every periodic full-state export must agree, so any
//! divergence in hit/miss behaviour, eviction choice, dirtiness
//! propagation, or crash loss is caught with the exact operation index.

use std::collections::BTreeMap;

use dolos_nvm::Line;
use dolos_secmem::cache::{Access, Eviction, SetAssocCache};
use dolos_sim::rng::XorShift;

/// The reference: one `Vec` per set, LRU = smallest last-use tick.
/// Deliberately dumb — correctness over speed, no shared code with the
/// real cache beyond the published set-index hash.
struct RefCache {
    sets: Vec<Vec<(u64, Line, bool, u64)>>,
    ways: usize,
    tick: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::new(); sets],
            ways,
            tick: 0,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.sets.len()
    }

    fn probe(&mut self, key: u64) -> Access {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|w| w.0 == key) {
            Some(way) => {
                way.3 = tick;
                Access::Hit
            }
            None => Access::Miss,
        }
    }

    fn update(&mut self, key: u64, data: Line) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|w| w.0 == key) {
            Some(way) => {
                way.1 = data;
                way.2 = true;
                way.3 = tick;
                true
            }
            None => false,
        }
    }

    fn fill(&mut self, key: u64, data: Line, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(key);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.0 == key) {
            way.1 = data;
            way.2 = way.2 || dirty;
            way.3 = tick;
            return None;
        }
        let evicted = if set.len() == ways {
            // Ticks are unique, so the minimum is unambiguous.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.3)
                .map(|(i, _)| i)?;
            let way = set.remove(lru);
            Some(Eviction {
                key: way.0,
                data: way.1,
                dirty: way.2,
            })
        } else {
            None
        };
        set.push((key, data, dirty, tick));
        evicted
    }

    fn invalidate(&mut self, key: u64) -> Option<Eviction> {
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| w.0 == key)?;
        let way = set.remove(pos);
        Some(Eviction {
            key: way.0,
            data: way.1,
            dirty: way.2,
        })
    }

    fn lose_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    fn export(&self) -> BTreeMap<u64, (Line, bool)> {
        self.sets
            .iter()
            .flatten()
            .map(|&(k, d, dirty, _)| (k, (d, dirty)))
            .collect()
    }
}

fn line(tag: u64) -> Line {
    let mut l = [0u8; 64];
    l[0..8].copy_from_slice(&tag.to_le_bytes());
    l
}

/// Drives both caches through `ops` seeded operations and checks every
/// return value plus a periodic full-state comparison.
fn lockstep(seed: u64, sets: usize, ways: usize, keyspace: u64, ops: usize) {
    let mut rng = XorShift::new(seed);
    let mut cache = SetAssocCache::new(sets, ways);
    let mut model = RefCache::new(sets, ways);
    for op in 0..ops {
        let key = rng.next_below(keyspace);
        match rng.next_below(100) {
            // Probe dominates: it is the hot path and the LRU driver.
            0..=39 => {
                assert_eq!(cache.probe(key), model.probe(key), "op {op}: probe {key}");
            }
            40..=69 => {
                let data = line(rng.next_u64());
                let dirty = rng.chance(0.4);
                assert_eq!(
                    cache.fill(key, data, dirty),
                    model.fill(key, data, dirty),
                    "op {op}: fill {key}"
                );
            }
            70..=84 => {
                let data = line(rng.next_u64());
                assert_eq!(
                    cache.update(key, data),
                    model.update(key, data),
                    "op {op}: update {key}"
                );
            }
            85..=94 => {
                assert_eq!(
                    cache.invalidate(key),
                    model.invalidate(key),
                    "op {op}: invalidate {key}"
                );
            }
            // Rare crash: both sides lose everything.
            _ => {
                cache.lose_all();
                model.lose_all();
            }
        }
        assert_eq!(cache.contains(key), model.export().contains_key(&key));
        if op % 64 == 0 {
            assert_eq!(cache.export(), model.export(), "op {op}: export diverged");
            assert_eq!(cache.len(), model.export().len(), "op {op}: len diverged");
        }
    }
    assert_eq!(cache.export(), model.export());
    let mut dirty = cache.dirty_blocks();
    dirty.sort_by_key(|&(k, _)| k);
    let expect: Vec<(u64, Line)> = model
        .export()
        .into_iter()
        .filter(|(_, (_, d))| *d)
        .map(|(k, (d, _))| (k, d))
        .collect();
    assert_eq!(dirty, expect);
}

#[test]
fn small_geometry_heavy_collisions() {
    // 4 sets x 2 ways with a 64-key space: every set sees constant
    // eviction pressure, exercising the LRU victim choice continuously.
    for seed in 1..=8 {
        lockstep(seed, 4, 2, 64, 2_000);
    }
}

#[test]
fn single_set_is_pure_lru() {
    lockstep(0xC0FFEE, 1, 4, 24, 2_000);
}

#[test]
fn direct_mapped_degenerate_case() {
    lockstep(0xD1CE, 8, 1, 48, 2_000);
}

#[test]
fn table_1_counter_cache_geometry() {
    // 128 KiB 4-way (512 sets): sparse pressure, evictions still occur
    // because the keyspace is bigger than the capacity.
    lockstep(42, 512, 4, 4096, 10_000);
}
