//! The 8-ary Bonsai Merkle Tree over split-counter blocks (§2.2).
//!
//! In a Bonsai organization the integrity tree covers only the encryption
//! counters; data lines are covered by per-line MACs computed over
//! (ciphertext, address, counter). The tree here is the *logical* tree
//! state: leaf MACs at level 0, parents at higher levels, root on top. In
//! hardware the interior nodes live in the MT cache and NVM; with the AGIT
//! scheme the root register is updated eagerly and persistently, which is
//! sufficient for recovery because interior nodes can be recomputed from
//! (recovered) leaves — exactly what [`BonsaiMerkleTree::recompute_root`]
//! does at recovery time.
//!
//! Untouched subtrees use per-level *default* MACs (the MAC of eight default
//! children), so a tree over millions of pages initializes in O(height).
//!
//! # Deferred parent materialization (the parent-MAC cache)
//!
//! Interior MACs are pure functions of the *final* leaf contents, so the
//! host need not recompute a parent chain on every [`update_leaf`] the way
//! the modeled hardware does — the simulated latency for those AES chains is
//! charged by the Ma-SU's latency model, never by this structure. The tree
//! therefore keeps a pending-leaf map (the cache's invalidation set: a leaf
//! entry is exactly a "my path's cached parents are stale" marker) and
//! materializes dirty paths *levelwise, once per dirty node*, at the next
//! observation point ([`root`], [`verify_leaf`], [`tamper_node`],
//! [`recompute_root`]). A burst of W writes to P distinct pages costs
//! O(P) parent MACs instead of O(W·height) — every materialized node value
//! is bit-identical to what the eager walk would have stored, which the
//! test-only uncached reference pins lockstep.
//!
//! [`update_leaf`]: BonsaiMerkleTree::update_leaf
//! [`root`]: BonsaiMerkleTree::root
//! [`verify_leaf`]: BonsaiMerkleTree::verify_leaf
//! [`tamper_node`]: BonsaiMerkleTree::tamper_node
//! [`recompute_root`]: BonsaiMerkleTree::recompute_root
//!
//! The tree does not own a [`MacEngine`]: the engine models a hardware AES
//! unit shared by every metadata structure in the Ma-SU, so tree operations
//! borrow it from the caller. This keeps tree construction (including the
//! from-scratch rebuild at recovery) free of key-schedule copies.

use dolos_crypto::mac::{Mac64, MacEngine};
use dolos_nvm::Line;
use dolos_sim::flat::FlatMap;
use std::collections::BTreeMap;

/// Tree arity (8-ary, Table 1).
pub const ARITY: u64 = 8;

/// The 8-ary Bonsai Merkle Tree.
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
/// use dolos_secmem::bmt::BonsaiMerkleTree;
///
/// let engine = MacEngine::new([1; 16]);
/// let mut tree = BonsaiMerkleTree::new(64, &engine);
/// let root0 = tree.root(&engine);
/// tree.update_leaf(&engine, 5, &[0xAB; 64]);
/// assert_ne!(tree.root(&engine), root0);
/// assert!(tree.verify_leaf(&engine, 5, &[0xAB; 64]));
/// assert!(!tree.verify_leaf(&engine, 5, &[0xAC; 64]));
/// ```
#[derive(Debug, Clone)]
pub struct BonsaiMerkleTree {
    leaves: u64,
    height: usize,
    /// `nodes[level]` maps node index to MAC; absent nodes hold the level's
    /// default. Level 0 holds leaf MACs. Flat sorted maps: small-integer
    /// keys hash-free, and any iteration is in ascending index order.
    nodes: Vec<FlatMap<Mac64>>,
    defaults: Vec<Mac64>,
    root: Mac64,
    /// Leaf lines written since the last materialization. A key here means
    /// the leaf's whole path (leaf MAC included) is stale; only the latest
    /// line per leaf is kept because intermediate values never reach an
    /// observation point.
    pending: FlatMap<Line>,
    updates: u64,
}

impl BonsaiMerkleTree {
    /// Creates a tree over `leaves` counter blocks, all initially zero.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn new(leaves: u64, engine: &MacEngine) -> Self {
        assert!(leaves > 0, "tree must cover at least one leaf");
        let mut height = 0usize;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(ARITY);
            height += 1;
        }
        // Always at least one MAC level so even a single-leaf tree has a root
        // distinct from the leaf itself.
        let height = height.max(1);

        // defaults[0] = MAC of an all-zero leaf line; defaults[l] = MAC of
        // eight default children.
        let mut defaults = Vec::with_capacity(height + 1);
        defaults.push(engine.tag(&[0u8; 64]));
        for l in 1..=height {
            let child = defaults[l - 1];
            let parts: [&[u8]; ARITY as usize] = [&child[..]; ARITY as usize];
            defaults.push(engine.tag_parts(&parts));
        }
        let root = defaults[height];
        Self {
            leaves,
            height,
            nodes: vec![FlatMap::new(); height + 1],
            defaults,
            root,
            pending: FlatMap::new(),
            updates: 0,
        }
    }

    /// Number of covered leaves (counter blocks).
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Number of MAC levels above the leaves.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The current root MAC. In hardware this value sits in a persistent
    /// in-processor register and is updated eagerly (AGIT); here the host
    /// materializes any deferred paths first, so the returned value is
    /// always what the eager walk would hold.
    pub fn root(&mut self, engine: &MacEngine) -> Mac64 {
        self.materialize(engine);
        self.root
    }

    /// Total leaf updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn node(&self, level: usize, index: u64) -> Mac64 {
        self.nodes[level]
            .get(index)
            .copied()
            .unwrap_or(self.defaults[level])
    }

    fn parent_mac(&self, engine: &MacEngine, level: usize, parent_index: u64) -> Mac64 {
        // The eight children occupy consecutive indices, so one range walk
        // over the sorted child level replaces eight binary-search probes.
        let first = parent_index * ARITY;
        let mut children = [self.defaults[level - 1]; ARITY as usize];
        for (k, mac) in self.nodes[level - 1].range(first, first + ARITY) {
            children[(k - first) as usize] = *mac;
        }
        let parts: [&[u8]; ARITY as usize] = core::array::from_fn(|c| &children[c][..]);
        engine.tag_parts(&parts)
    }

    /// Materializes every deferred path: tags pending leaves, then walks
    /// the dirty ancestor frontier level by level so each stale node is
    /// recomputed exactly once no matter how many pending leaves share it.
    fn materialize(&mut self, engine: &MacEngine) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::replace(&mut self.pending, FlatMap::new());
        // Pending iterates in ascending leaf order, so parents arrive in
        // ascending order too and adjacent dedup suffices.
        let mut dirty: Vec<u64> = Vec::with_capacity(pending.len());
        for (index, line) in pending.iter() {
            self.nodes[0].insert(index, engine.tag(line));
            let parent = index / ARITY;
            if dirty.last() != Some(&parent) {
                dirty.push(parent);
            }
        }
        for level in 1..=self.height {
            let mut next: Vec<u64> = Vec::with_capacity(dirty.len());
            for &idx in &dirty {
                let mac = self.parent_mac(engine, level, idx);
                self.nodes[level].insert(idx, mac);
                let parent = idx / ARITY;
                if next.last() != Some(&parent) {
                    next.push(parent);
                }
            }
            dirty = next;
        }
        self.root = self.node(self.height, 0);
    }

    /// Records the new content of leaf `index`. The path above it is marked
    /// stale and recomputed at the next observation point; the modeled
    /// hardware still performs the eager AGIT walk, whose latency the Ma-SU
    /// charges through the latency model independently of this structure.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_leaf(&mut self, engine: &MacEngine, index: u64, leaf_line: &Line) {
        let _ = engine; // the engine is spent at materialization time
        assert!(index < self.leaves, "leaf index out of range");
        self.updates += 1;
        self.pending.insert(index, *leaf_line);
    }

    /// Verifies leaf `index` content against the tree path and root.
    pub fn verify_leaf(&mut self, engine: &MacEngine, index: u64, leaf_line: &Line) -> bool {
        self.materialize(engine);
        if index >= self.leaves {
            return false;
        }
        if engine.tag(leaf_line) != self.node(0, index) {
            return false;
        }
        // Walk up re-deriving each parent from stored children; the stored
        // path must be self-consistent up to the root register.
        let mut idx = index;
        for level in 1..=self.height {
            idx /= ARITY;
            if self.parent_mac(engine, level, idx) != self.node(level, idx) {
                return false;
            }
        }
        self.node(self.height, 0) == self.root
    }

    /// Recomputes the root from scratch given every non-default leaf, as
    /// recovery does after rebuilding counters (AGIT/Anubis recovery).
    ///
    /// The contents are keyed in a [`BTreeMap`] so the rebuild replays
    /// leaves in ascending index order — recovery work must not depend on
    /// hash-map iteration order. The deferred-materialization path makes
    /// this a levelwise O(N) build rather than O(N·height).
    ///
    /// Returns the recomputed root; callers compare it with the persistent
    /// root register to detect tampering.
    pub fn recompute_root(
        engine: &MacEngine,
        leaves: u64,
        contents: &BTreeMap<u64, Line>,
    ) -> Mac64 {
        let mut rebuilt = BonsaiMerkleTree::new(leaves, engine);
        for (&idx, line) in contents {
            rebuilt.update_leaf(engine, idx, line);
        }
        rebuilt.root(engine)
    }

    /// Overwrites a stored interior/leaf node (models an attacker tampering
    /// with NVM-resident tree nodes in tests). Deferred paths materialize
    /// first — the attacker strikes the tree the hardware would hold, and a
    /// later materialization must not silently heal the damage.
    pub fn tamper_node(&mut self, engine: &MacEngine, level: usize, index: u64, mac: Mac64) {
        self.materialize(engine);
        self.nodes[level].insert(index, mac);
    }
}

/// Computes the Bonsai data MAC covering one protected line:
/// MAC(address ‖ packed counter ‖ ciphertext).
///
/// This is the per-line MAC that, together with the counter tree, protects
/// data integrity (spoofing, relocation via the address, replay via the
/// counter).
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
/// use dolos_secmem::bmt::data_mac;
///
/// let engine = MacEngine::new([3; 16]);
/// let a = data_mac(&engine, 0x40, 7, &[1; 64]);
/// assert_ne!(a, data_mac(&engine, 0x80, 7, &[1; 64])); // relocation
/// assert_ne!(a, data_mac(&engine, 0x40, 8, &[1; 64])); // replay
/// assert_ne!(a, data_mac(&engine, 0x40, 7, &[2; 64])); // spoofing
/// ```
pub fn data_mac(engine: &MacEngine, addr: u64, counter: u64, ciphertext: &Line) -> Mac64 {
    engine.tag_parts(&[&addr.to_le_bytes(), &counter.to_le_bytes(), ciphertext])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolos_sim::rng::XorShift;

    fn engine() -> MacEngine {
        MacEngine::new([7; 16])
    }

    fn tree(leaves: u64) -> BonsaiMerkleTree {
        BonsaiMerkleTree::new(leaves, &engine())
    }

    /// The uncached reference: recomputes the root from first principles
    /// (full levelwise build over explicit arrays, no incremental state at
    /// all), so any caching bug in the deferred path breaks lockstep.
    fn reference_root(engine: &MacEngine, leaves: u64, contents: &BTreeMap<u64, Line>) -> Mac64 {
        let mut height = 0usize;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(ARITY);
            height += 1;
        }
        let height = height.max(1);
        let default_leaf = [0u8; 64];
        let mut level: Vec<Mac64> = (0..leaves)
            .map(|i| engine.tag(contents.get(&i).unwrap_or(&default_leaf)))
            .collect();
        let mut default = engine.tag(&default_leaf);
        for _ in 1..=height {
            let groups = level.len().max(1).div_ceil(ARITY as usize);
            level.resize(groups * ARITY as usize, default);
            level = level
                .chunks(ARITY as usize)
                .map(|c| {
                    let parts: [&[u8]; ARITY as usize] = core::array::from_fn(|k| &c[k][..]);
                    engine.tag_parts(&parts)
                })
                .collect();
            let parts: [&[u8]; ARITY as usize] = [&default[..]; ARITY as usize];
            default = engine.tag_parts(&parts);
        }
        level[0]
    }

    #[test]
    fn fresh_tree_verifies_default_leaves() {
        let mut t = tree(100);
        let e = engine();
        assert!(t.verify_leaf(&e, 0, &[0; 64]));
        assert!(t.verify_leaf(&e, 99, &[0; 64]));
        assert!(!t.verify_leaf(&e, 0, &[1; 64]));
    }

    #[test]
    fn height_is_log8() {
        assert_eq!(tree(1).height(), 1);
        assert_eq!(tree(8).height(), 1);
        assert_eq!(tree(9).height(), 2);
        assert_eq!(tree(64).height(), 2);
        assert_eq!(tree(65).height(), 3);
    }

    #[test]
    fn update_changes_root_and_verifies() {
        let mut t = tree(64);
        let e = engine();
        let r0 = t.root(&e);
        t.update_leaf(&e, 3, &[9; 64]);
        let r1 = t.root(&e);
        assert_ne!(r0, r1);
        assert!(t.verify_leaf(&e, 3, &[9; 64]));
        // Sibling leaves still verify with default content.
        assert!(t.verify_leaf(&e, 4, &[0; 64]));
    }

    #[test]
    fn stale_leaf_fails_verification() {
        let mut t = tree(64);
        let e = engine();
        t.update_leaf(&e, 3, &[1; 64]);
        t.update_leaf(&e, 3, &[2; 64]);
        assert!(!t.verify_leaf(&e, 3, &[1; 64])); // replay of old content
        assert!(t.verify_leaf(&e, 3, &[2; 64]));
    }

    #[test]
    fn tampered_interior_node_is_detected() {
        let mut t = tree(64);
        let e = engine();
        t.update_leaf(&e, 3, &[1; 64]);
        t.tamper_node(&e, 1, 0, [0xFF; 8]);
        assert!(!t.verify_leaf(&e, 3, &[1; 64]));
    }

    #[test]
    fn tamper_before_materialization_is_not_healed() {
        let mut t = tree(64);
        let e = engine();
        // The path for leaf 3 is still pending when the attacker strikes its
        // parent; materialization must not overwrite the tampered node with
        // a freshly computed (honest) MAC and hide the attack.
        t.update_leaf(&e, 3, &[1; 64]);
        t.tamper_node(&e, 1, 0, [0xFF; 8]);
        assert!(!t.verify_leaf(&e, 3, &[1; 64]));
    }

    #[test]
    fn swapped_leaves_are_detected() {
        let mut t = tree(64);
        let e = engine();
        t.update_leaf(&e, 1, &[1; 64]);
        t.update_leaf(&e, 2, &[2; 64]);
        // Attacker swaps stored contents: leaf 1 presents leaf 2's data.
        assert!(!t.verify_leaf(&e, 1, &[2; 64]));
    }

    #[test]
    fn recompute_root_matches_incremental() {
        let mut t = tree(200);
        let e = engine();
        let mut contents = BTreeMap::new();
        for i in [0u64, 7, 63, 64, 199] {
            let line = [i as u8 + 1; 64];
            t.update_leaf(&e, i, &line);
            contents.insert(i, line);
        }
        let recomputed = BonsaiMerkleTree::recompute_root(&e, 200, &contents);
        assert_eq!(recomputed, t.root(&e));
    }

    #[test]
    fn recompute_root_detects_corruption() {
        let mut t = tree(200);
        let e = engine();
        let mut contents = BTreeMap::new();
        for i in 0u64..5 {
            let line = [i as u8 + 1; 64];
            t.update_leaf(&e, i, &line);
            contents.insert(i, line);
        }
        contents.insert(2, [0xEE; 64]); // corrupted recovered leaf
        let recomputed = BonsaiMerkleTree::recompute_root(&e, 200, &contents);
        assert_ne!(recomputed, t.root(&e));
    }

    #[test]
    fn data_mac_binds_all_inputs() {
        let e = MacEngine::new([9; 16]);
        let base = data_mac(&e, 64, 1, &[5; 64]);
        assert_eq!(base, data_mac(&e, 64, 1, &[5; 64]));
        assert_ne!(base, data_mac(&e, 128, 1, &[5; 64]));
        assert_ne!(base, data_mac(&e, 64, 2, &[5; 64]));
        assert_ne!(base, data_mac(&e, 64, 1, &[6; 64]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let mut t = tree(8);
        t.update_leaf(&engine(), 8, &[0; 64]);
    }

    #[test]
    fn out_of_range_verify_is_false() {
        let mut t = tree(8);
        assert!(!t.verify_leaf(&engine(), 8, &[0; 64]));
    }

    #[test]
    fn memoized_root_lockstep_equals_uncached_reference() {
        let e = engine();
        for (seed, leaves) in [(0x1A2Bu64, 1u64), (0x5EED, 8), (0xBEEF, 100), (0xD01, 200)] {
            let mut rng = XorShift::new(seed);
            let mut t = BonsaiMerkleTree::new(leaves, &e);
            let mut contents: BTreeMap<u64, Line> = BTreeMap::new();
            assert_eq!(t.root(&e), reference_root(&e, leaves, &contents));
            for step in 0..120u64 {
                let idx = rng.next_below(leaves);
                let line = [rng.next_u64() as u8; 64];
                t.update_leaf(&e, idx, &line);
                contents.insert(idx, line);
                match step % 7 {
                    // Observe the root mid-burst: forces a materialization
                    // boundary at an arbitrary point in the update stream.
                    0 | 3 => {
                        assert_eq!(t.root(&e), reference_root(&e, leaves, &contents));
                    }
                    // Verify a random leaf (fresh content passes, a wrong
                    // line fails) — the other observation point.
                    1 => {
                        let probe = rng.next_below(leaves);
                        let expect = contents.get(&probe).copied().unwrap_or([0; 64]);
                        assert!(t.verify_leaf(&e, probe, &expect));
                        let mut wrong = expect;
                        wrong[0] ^= 0x80;
                        assert!(!t.verify_leaf(&e, probe, &wrong));
                    }
                    // Recovery-style from-scratch rebuild agrees too.
                    2 => {
                        let rebuilt = BonsaiMerkleTree::recompute_root(&e, leaves, &contents);
                        assert_eq!(rebuilt, t.root(&e));
                    }
                    // Leave paths pending across iterations.
                    _ => {}
                }
            }
            assert_eq!(t.root(&e), reference_root(&e, leaves, &contents));
            assert_eq!(t.updates(), 120);
        }
    }
}
