//! The 8-ary Bonsai Merkle Tree over split-counter blocks (§2.2).
//!
//! In a Bonsai organization the integrity tree covers only the encryption
//! counters; data lines are covered by per-line MACs computed over
//! (ciphertext, address, counter). The tree here is the *logical* tree
//! state: leaf MACs at level 0, parents at higher levels, root on top. In
//! hardware the interior nodes live in the MT cache and NVM; with the AGIT
//! scheme the root register is updated eagerly and persistently, which is
//! sufficient for recovery because interior nodes can be recomputed from
//! (recovered) leaves — exactly what [`BonsaiMerkleTree::recompute_root`]
//! does at recovery time.
//!
//! Untouched subtrees use per-level *default* MACs (the MAC of eight default
//! children), so a tree over millions of pages initializes in O(height).
//!
//! The tree does not own a [`MacEngine`]: the engine models a hardware AES
//! unit shared by every metadata structure in the Ma-SU, so tree operations
//! borrow it from the caller. This keeps tree construction (including the
//! from-scratch rebuild at recovery) free of key-schedule copies.

use dolos_crypto::mac::{Mac64, MacEngine};
use dolos_nvm::Line;
use dolos_sim::flat::FlatMap;
use std::collections::BTreeMap;

/// Tree arity (8-ary, Table 1).
pub const ARITY: u64 = 8;

/// The 8-ary Bonsai Merkle Tree.
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
/// use dolos_secmem::bmt::BonsaiMerkleTree;
///
/// let engine = MacEngine::new([1; 16]);
/// let mut tree = BonsaiMerkleTree::new(64, &engine);
/// let root0 = tree.root();
/// tree.update_leaf(&engine, 5, &[0xAB; 64]);
/// assert_ne!(tree.root(), root0);
/// assert!(tree.verify_leaf(&engine, 5, &[0xAB; 64]));
/// assert!(!tree.verify_leaf(&engine, 5, &[0xAC; 64]));
/// ```
#[derive(Debug, Clone)]
pub struct BonsaiMerkleTree {
    leaves: u64,
    height: usize,
    /// `nodes[level]` maps node index to MAC; absent nodes hold the level's
    /// default. Level 0 holds leaf MACs. Flat sorted maps: small-integer
    /// keys hash-free, and any iteration is in ascending index order.
    nodes: Vec<FlatMap<Mac64>>,
    defaults: Vec<Mac64>,
    root: Mac64,
    updates: u64,
}

impl BonsaiMerkleTree {
    /// Creates a tree over `leaves` counter blocks, all initially zero.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn new(leaves: u64, engine: &MacEngine) -> Self {
        assert!(leaves > 0, "tree must cover at least one leaf");
        let mut height = 0usize;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(ARITY);
            height += 1;
        }
        // Always at least one MAC level so even a single-leaf tree has a root
        // distinct from the leaf itself.
        let height = height.max(1);

        // defaults[0] = MAC of an all-zero leaf line; defaults[l] = MAC of
        // eight default children.
        let mut defaults = Vec::with_capacity(height + 1);
        defaults.push(engine.tag(&[0u8; 64]));
        for l in 1..=height {
            let child = defaults[l - 1];
            let parts: [&[u8]; ARITY as usize] = [&child[..]; ARITY as usize];
            defaults.push(engine.tag_parts(&parts));
        }
        let root = defaults[height];
        Self {
            leaves,
            height,
            nodes: vec![FlatMap::new(); height + 1],
            defaults,
            root,
            updates: 0,
        }
    }

    /// Number of covered leaves (counter blocks).
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Number of MAC levels above the leaves.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The current root MAC. In hardware this value sits in a persistent
    /// in-processor register and is updated eagerly (AGIT).
    pub fn root(&self) -> Mac64 {
        self.root
    }

    /// Total leaf updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn node(&self, level: usize, index: u64) -> Mac64 {
        self.nodes[level]
            .get(index)
            .copied()
            .unwrap_or(self.defaults[level])
    }

    fn parent_mac(&self, engine: &MacEngine, level: usize, parent_index: u64) -> Mac64 {
        // The eight children occupy consecutive indices, so one range walk
        // over the sorted child level replaces eight binary-search probes.
        let first = parent_index * ARITY;
        let mut children = [self.defaults[level - 1]; ARITY as usize];
        for (k, mac) in self.nodes[level - 1].range(first, first + ARITY) {
            children[(k - first) as usize] = *mac;
        }
        let parts: [&[u8]; ARITY as usize] = core::array::from_fn(|c| &children[c][..]);
        engine.tag_parts(&parts)
    }

    /// Eagerly updates the path for leaf `index` whose new content is
    /// `leaf_line`, returning the new root.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_leaf(&mut self, engine: &MacEngine, index: u64, leaf_line: &Line) -> Mac64 {
        assert!(index < self.leaves, "leaf index out of range");
        self.updates += 1;
        self.nodes[0].insert(index, engine.tag(leaf_line));
        let mut idx = index;
        for level in 1..=self.height {
            idx /= ARITY;
            let mac = self.parent_mac(engine, level, idx);
            self.nodes[level].insert(idx, mac);
        }
        self.root = self.node(self.height, 0);
        self.root
    }

    /// Verifies leaf `index` content against the tree path and root.
    pub fn verify_leaf(&self, engine: &MacEngine, index: u64, leaf_line: &Line) -> bool {
        if index >= self.leaves {
            return false;
        }
        if engine.tag(leaf_line) != self.node(0, index) {
            return false;
        }
        // Walk up re-deriving each parent from stored children; the stored
        // path must be self-consistent up to the root register.
        let mut idx = index;
        for level in 1..=self.height {
            idx /= ARITY;
            if self.parent_mac(engine, level, idx) != self.node(level, idx) {
                return false;
            }
        }
        self.node(self.height, 0) == self.root
    }

    /// Recomputes the root from scratch given every non-default leaf, as
    /// recovery does after rebuilding counters (AGIT/Anubis recovery).
    ///
    /// The contents are keyed in a [`BTreeMap`] so the rebuild replays
    /// leaves in ascending index order — recovery work must not depend on
    /// hash-map iteration order.
    ///
    /// Returns the recomputed root; callers compare it with the persistent
    /// root register to detect tampering.
    pub fn recompute_root(
        engine: &MacEngine,
        leaves: u64,
        contents: &BTreeMap<u64, Line>,
    ) -> Mac64 {
        let mut rebuilt = BonsaiMerkleTree::new(leaves, engine);
        for (&idx, line) in contents {
            rebuilt.update_leaf(engine, idx, line);
        }
        rebuilt.root()
    }

    /// Overwrites a stored interior/leaf node (models an attacker tampering
    /// with NVM-resident tree nodes in tests).
    pub fn tamper_node(&mut self, level: usize, index: u64, mac: Mac64) {
        self.nodes[level].insert(index, mac);
    }
}

/// Computes the Bonsai data MAC covering one protected line:
/// MAC(address ‖ packed counter ‖ ciphertext).
///
/// This is the per-line MAC that, together with the counter tree, protects
/// data integrity (spoofing, relocation via the address, replay via the
/// counter).
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
/// use dolos_secmem::bmt::data_mac;
///
/// let engine = MacEngine::new([3; 16]);
/// let a = data_mac(&engine, 0x40, 7, &[1; 64]);
/// assert_ne!(a, data_mac(&engine, 0x80, 7, &[1; 64])); // relocation
/// assert_ne!(a, data_mac(&engine, 0x40, 8, &[1; 64])); // replay
/// assert_ne!(a, data_mac(&engine, 0x40, 7, &[2; 64])); // spoofing
/// ```
pub fn data_mac(engine: &MacEngine, addr: u64, counter: u64, ciphertext: &Line) -> Mac64 {
    engine.tag_parts(&[&addr.to_le_bytes(), &counter.to_le_bytes(), ciphertext])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MacEngine {
        MacEngine::new([7; 16])
    }

    fn tree(leaves: u64) -> BonsaiMerkleTree {
        BonsaiMerkleTree::new(leaves, &engine())
    }

    #[test]
    fn fresh_tree_verifies_default_leaves() {
        let t = tree(100);
        let e = engine();
        assert!(t.verify_leaf(&e, 0, &[0; 64]));
        assert!(t.verify_leaf(&e, 99, &[0; 64]));
        assert!(!t.verify_leaf(&e, 0, &[1; 64]));
    }

    #[test]
    fn height_is_log8() {
        assert_eq!(tree(1).height(), 1);
        assert_eq!(tree(8).height(), 1);
        assert_eq!(tree(9).height(), 2);
        assert_eq!(tree(64).height(), 2);
        assert_eq!(tree(65).height(), 3);
    }

    #[test]
    fn update_changes_root_and_verifies() {
        let mut t = tree(64);
        let e = engine();
        let r0 = t.root();
        let r1 = t.update_leaf(&e, 3, &[9; 64]);
        assert_ne!(r0, r1);
        assert!(t.verify_leaf(&e, 3, &[9; 64]));
        // Sibling leaves still verify with default content.
        assert!(t.verify_leaf(&e, 4, &[0; 64]));
    }

    #[test]
    fn stale_leaf_fails_verification() {
        let mut t = tree(64);
        let e = engine();
        t.update_leaf(&e, 3, &[1; 64]);
        t.update_leaf(&e, 3, &[2; 64]);
        assert!(!t.verify_leaf(&e, 3, &[1; 64])); // replay of old content
        assert!(t.verify_leaf(&e, 3, &[2; 64]));
    }

    #[test]
    fn tampered_interior_node_is_detected() {
        let mut t = tree(64);
        let e = engine();
        t.update_leaf(&e, 3, &[1; 64]);
        t.tamper_node(1, 0, [0xFF; 8]);
        assert!(!t.verify_leaf(&e, 3, &[1; 64]));
    }

    #[test]
    fn swapped_leaves_are_detected() {
        let mut t = tree(64);
        let e = engine();
        t.update_leaf(&e, 1, &[1; 64]);
        t.update_leaf(&e, 2, &[2; 64]);
        // Attacker swaps stored contents: leaf 1 presents leaf 2's data.
        assert!(!t.verify_leaf(&e, 1, &[2; 64]));
    }

    #[test]
    fn recompute_root_matches_incremental() {
        let mut t = tree(200);
        let e = engine();
        let mut contents = BTreeMap::new();
        for i in [0u64, 7, 63, 64, 199] {
            let line = [i as u8 + 1; 64];
            t.update_leaf(&e, i, &line);
            contents.insert(i, line);
        }
        let recomputed = BonsaiMerkleTree::recompute_root(&e, 200, &contents);
        assert_eq!(recomputed, t.root());
    }

    #[test]
    fn recompute_root_detects_corruption() {
        let mut t = tree(200);
        let e = engine();
        let mut contents = BTreeMap::new();
        for i in 0u64..5 {
            let line = [i as u8 + 1; 64];
            t.update_leaf(&e, i, &line);
            contents.insert(i, line);
        }
        contents.insert(2, [0xEE; 64]); // corrupted recovered leaf
        let recomputed = BonsaiMerkleTree::recompute_root(&e, 200, &contents);
        assert_ne!(recomputed, t.root());
    }

    #[test]
    fn data_mac_binds_all_inputs() {
        let e = MacEngine::new([9; 16]);
        let base = data_mac(&e, 64, 1, &[5; 64]);
        assert_eq!(base, data_mac(&e, 64, 1, &[5; 64]));
        assert_ne!(base, data_mac(&e, 128, 1, &[5; 64]));
        assert_ne!(base, data_mac(&e, 64, 2, &[5; 64]));
        assert_ne!(base, data_mac(&e, 64, 1, &[6; 64]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let mut t = tree(8);
        t.update_leaf(&engine(), 8, &[0; 64]);
    }

    #[test]
    fn out_of_range_verify_is_false() {
        let t = tree(8);
        assert!(!t.verify_leaf(&engine(), 8, &[0; 64]));
    }
}
