//! Osiris-style counter recovery through ECC probing.
//!
//! Osiris observes that the ECC bits written alongside each data line are
//! computed over the *plaintext*: decrypt a line with a candidate counter
//! and the ECC only matches if the counter was right. Counters therefore
//! only need to be persisted every `phase` updates (the "stop-loss"
//! parameter); after a crash the true counter lies within `phase`
//! increments of the persisted value and can be found by probing.
//!
//! The ECC here is a 64-bit checksum standing in for the DIMM's ECC code.
//! Real ECC is shorter; the paper (and Osiris) only require that a wrong
//! counter fails the check with high probability, which a 64-bit checksum
//! satisfies trivially.

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::{pad_line, IvBuilder};
use dolos_nvm::Line;

/// Default Osiris stop-loss: counters persist every 4th update.
pub const DEFAULT_PHASE: u64 = 4;

/// Computes the 64-bit plaintext checksum standing in for ECC bits.
///
/// # Examples
///
/// ```
/// use dolos_secmem::ecc::ecc64;
///
/// assert_eq!(ecc64(&[1; 64]), ecc64(&[1; 64]));
/// assert_ne!(ecc64(&[1; 64]), ecc64(&[2; 64]));
/// ```
pub fn ecc64(plaintext: &Line) -> u64 {
    // FNV-1a over the line: cheap, deterministic, and collision-resistant
    // enough for probe disambiguation across a `phase`-sized window.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in plaintext {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Decrypts `ciphertext` (written at `addr`) with candidate counters
/// `base..base + window` and returns the first counter whose plaintext
/// matches `ecc`, along with that plaintext.
///
/// Returns `None` if no candidate matches — either the data was tampered
/// with or the counter drifted beyond the stop-loss window, both of which
/// recovery must treat as integrity failures.
///
/// # Examples
///
/// ```
/// use dolos_crypto::{aes::Aes128, ctr::{generate_pad, xor_in_place, IvBuilder}};
/// use dolos_secmem::ecc::{ecc64, probe_counter};
///
/// let key = Aes128::new(&[5; 16]);
/// let plaintext = [7u8; 64];
/// let true_counter = 10;
/// let iv = IvBuilder::new().address(0x40).counter(true_counter).build();
/// let mut ct = plaintext;
/// xor_in_place(&mut ct, &generate_pad(&key, &iv, 64));
///
/// // Persisted counter is stale (8); probe finds the true value.
/// let (counter, pt) = probe_counter(&key, 0x40, &ct, ecc64(&plaintext), 8, 4).unwrap();
/// assert_eq!(counter, true_counter);
/// assert_eq!(pt, plaintext);
/// ```
pub fn probe_counter(
    key: &Aes128,
    addr: u64,
    ciphertext: &Line,
    ecc: u64,
    base: u64,
    window: u64,
) -> Option<(u64, Line)> {
    for candidate in base..base.saturating_add(window).saturating_add(1) {
        let iv = IvBuilder::new().address(addr).counter(candidate).build();
        let pad = pad_line(key, &iv);
        let mut plaintext = *ciphertext;
        dolos_crypto::ctr::xor_in_place(&mut plaintext, &pad);
        if ecc64(&plaintext) == ecc {
            return Some((candidate, plaintext));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dolos_crypto::ctr::{generate_pad, xor_in_place};

    fn encrypt(key: &Aes128, addr: u64, counter: u64, plaintext: &Line) -> Line {
        let iv = IvBuilder::new().address(addr).counter(counter).build();
        let mut ct = *plaintext;
        xor_in_place(&mut ct, &generate_pad(key, &iv, 64));
        ct
    }

    #[test]
    fn ecc_distinguishes_lines() {
        let mut a = [0u8; 64];
        let b = a;
        a[63] = 1;
        assert_ne!(ecc64(&a), ecc64(&b));
    }

    #[test]
    fn probe_finds_exact_counter() {
        let key = Aes128::new(&[1; 16]);
        let pt = [0x3Cu8; 64];
        let ct = encrypt(&key, 64, 5, &pt);
        let found = probe_counter(&key, 64, &ct, ecc64(&pt), 5, 0);
        assert_eq!(found, Some((5, pt)));
    }

    #[test]
    fn probe_scans_stop_loss_window() {
        let key = Aes128::new(&[1; 16]);
        let pt = [9u8; 64];
        for drift in 0..=DEFAULT_PHASE {
            let true_counter = 100 + drift;
            let ct = encrypt(&key, 128, true_counter, &pt);
            let found = probe_counter(&key, 128, &ct, ecc64(&pt), 100, DEFAULT_PHASE);
            assert_eq!(found.map(|(c, _)| c), Some(true_counter));
        }
    }

    #[test]
    fn probe_fails_beyond_window() {
        let key = Aes128::new(&[1; 16]);
        let pt = [9u8; 64];
        let ct = encrypt(&key, 128, 200, &pt);
        assert!(probe_counter(&key, 128, &ct, ecc64(&pt), 100, 4).is_none());
    }

    #[test]
    fn probe_detects_tampered_ciphertext() {
        let key = Aes128::new(&[1; 16]);
        let pt = [9u8; 64];
        let mut ct = encrypt(&key, 128, 3, &pt);
        ct[0] ^= 0xFF;
        assert!(probe_counter(&key, 128, &ct, ecc64(&pt), 0, 8).is_none());
    }

    #[test]
    fn probe_is_address_sensitive() {
        let key = Aes128::new(&[1; 16]);
        let pt = [9u8; 64];
        let ct = encrypt(&key, 128, 3, &pt);
        // Relocated line: probing at the wrong address never matches.
        assert!(probe_counter(&key, 192, &ct, ecc64(&pt), 0, 8).is_none());
    }
}
