//! A set-associative write-back cache with LRU replacement.
//!
//! Used for both the counter cache (128 KiB, 4-way) and the Merkle-tree
//! metadata cache (256 KiB, 8-way) from Table 1. The cache stores the actual
//! 64-byte payloads: dirty blocks exist *only* here until written back, which
//! is precisely the volatility that makes secure-NVM crash consistency hard.

use std::collections::BTreeMap;

use dolos_sim::stats::StatSet;

use dolos_nvm::Line;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The block was present.
    Hit,
    /// The block was absent; the caller must fetch and [`SetAssocCache::fill`] it.
    Miss,
}

/// A block evicted to make room during a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted block's key.
    pub key: u64,
    /// The evicted payload.
    pub data: Line,
    /// Whether the block was dirty (must be written back).
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Way {
    key: u64,
    data: Line,
    dirty: bool,
    last_use: u64,
}

/// A set-associative, write-back, LRU cache keyed by block index.
///
/// # Examples
///
/// ```
/// use dolos_secmem::cache::{Access, SetAssocCache};
///
/// // 2 sets x 2 ways.
/// let mut cache = SetAssocCache::new(2, 2);
/// assert_eq!(cache.probe(5), Access::Miss);
/// cache.fill(5, [1; 64], false);
/// assert_eq!(cache.probe(5), Access::Hit);
/// assert_eq!(cache.get(5).unwrap()[0], 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Self {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Creates a cache from a capacity in bytes (64-byte blocks).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn with_capacity_bytes(bytes: usize, ways: usize) -> Self {
        let blocks = bytes / 64;
        assert!(
            blocks.is_multiple_of(ways),
            "capacity must divide into ways"
        );
        Self::new(blocks / ways, ways)
    }

    fn set_of(&self, key: u64) -> usize {
        // Multiplicative hash spreads metadata regions across sets.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.sets.len()
    }

    /// Probes for `key`, updating hit/miss statistics and LRU on hit.
    pub fn probe(&mut self, key: u64) -> Access {
        self.tick += 1;
        let set = self.set_of(key);
        let tick = self.tick;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.key == key) {
            way.last_use = tick;
            self.hits += 1;
            Access::Hit
        } else {
            self.misses += 1;
            Access::Miss
        }
    }

    /// [`Self::probe`] and [`Self::get`] fused: one way scan instead of
    /// two, with exactly `probe`'s statistics/LRU accounting (one tick,
    /// one hit or miss). Returns the cached payload on a hit.
    pub fn probe_get(&mut self, key: u64) -> Option<&Line> {
        self.tick += 1;
        let set = self.set_of(key);
        let tick = self.tick;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.key == key) {
            way.last_use = tick;
            self.hits += 1;
            Some(&way.data)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Whether `key` is present, without touching statistics or LRU.
    pub fn contains(&self, key: u64) -> bool {
        self.sets[self.set_of(key)].iter().any(|w| w.key == key)
    }

    /// Reads a cached payload without changing replacement state.
    pub fn get(&self, key: u64) -> Option<&Line> {
        self.sets[self.set_of(key)]
            .iter()
            .find(|w| w.key == key)
            .map(|w| &w.data)
    }

    /// Updates a cached payload in place, marking it dirty.
    ///
    /// Returns `false` if the block is not cached.
    pub fn update(&mut self, key: u64, data: Line) -> bool {
        self.tick += 1;
        let set = self.set_of(key);
        let tick = self.tick;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.key == key) {
            way.data = data;
            way.dirty = true;
            way.last_use = tick;
            true
        } else {
            false
        }
    }

    /// Inserts a block fetched from memory, evicting the LRU way if the set
    /// is full. Returns the eviction (if any); dirty evictions must be
    /// written back by the caller.
    ///
    /// If `key` is already present its payload is replaced instead.
    pub fn fill(&mut self, key: u64, data: Line, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let set_idx = self.set_of(key);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.key == key) {
            way.data = data;
            way.dirty = way.dirty || dirty;
            way.last_use = tick;
            return None;
        }
        let evicted = if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("set is full, so non-empty");
            let way = set.swap_remove(lru);
            if way.dirty {
                self.writebacks += 1;
            }
            Some(Eviction {
                key: way.key,
                data: way.data,
                dirty: way.dirty,
            })
        } else {
            None
        };
        set.push(Way {
            key,
            data,
            dirty,
            last_use: tick,
        });
        evicted
    }

    /// Removes a block, returning its payload and dirtiness.
    pub fn invalidate(&mut self, key: u64) -> Option<Eviction> {
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| w.key == key)?;
        let way = set.swap_remove(pos);
        Some(Eviction {
            key: way.key,
            data: way.data,
            dirty: way.dirty,
        })
    }

    /// Drops every block (models volatile loss at a crash).
    pub fn lose_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over all resident blocks as `(key, data, dirty)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Line, bool)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.key, &w.data, w.dirty)))
    }

    /// All dirty resident blocks as `(key, data)`.
    pub fn dirty_blocks(&self) -> Vec<(u64, Line)> {
        self.iter()
            .filter(|(_, _, dirty)| *dirty)
            .map(|(k, d, _)| (k, *d))
            .collect()
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Snapshots statistics under the given prefix (e.g. `"ctr_cache"`).
    pub fn stats(&self, prefix: &str) -> StatSet {
        let mut s = StatSet::new();
        s.set(&format!("{prefix}.hits"), self.hits as f64);
        s.set(&format!("{prefix}.misses"), self.misses as f64);
        s.set(&format!("{prefix}.writebacks"), self.writebacks as f64);
        s.set(&format!("{prefix}.resident"), self.len() as f64);
        s
    }

    /// Exports resident blocks into an ordered map (used by recovery
    /// assertions). Returned as a `BTreeMap` so callers comparing or
    /// iterating the export see one canonical order — a public API must not
    /// leak hasher-dependent iteration order.
    pub fn export(&self) -> BTreeMap<u64, (Line, bool)> {
        self.iter().map(|(k, d, dirty)| (k, (*d, dirty))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_probe_hits() {
        let mut c = SetAssocCache::new(4, 2);
        assert_eq!(c.probe(1), Access::Miss);
        c.fill(1, [1; 64], false);
        assert_eq!(c.probe(1), Access::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn probe_get_accounts_exactly_like_probe() {
        // Two caches driven identically — one via probe+get, one via
        // probe_get — must agree on payloads, statistics, and LRU-driven
        // eviction order.
        let mut a = SetAssocCache::new(1, 2);
        let mut b = SetAssocCache::new(1, 2);
        for c in [&mut a, &mut b] {
            c.fill(1, [1; 64], false);
            c.fill(2, [2; 64], false);
        }
        assert_eq!(a.probe(1), Access::Hit);
        let got = a.get(1).copied();
        assert_eq!(b.probe_get(1).copied(), got);
        assert_eq!(b.probe_get(9), None); // miss accounting
        a.probe(9);
        assert_eq!((a.hits(), a.misses()), (b.hits(), b.misses()));
        // Key 2 is now LRU in both; the next fill evicts it from both.
        let (ea, eb) = (a.fill(3, [3; 64], false), b.fill(3, [3; 64], false));
        assert_eq!(ea.map(|e| e.key), Some(2));
        assert_eq!(eb.map(|e| e.key), Some(2));
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // Single set of 2 ways so everything collides.
        let mut c = SetAssocCache::new(1, 2);
        c.fill(1, [1; 64], false);
        c.fill(2, [2; 64], false);
        c.probe(1); // make key 2 the LRU
        let ev = c.fill(3, [3; 64], false).expect("eviction");
        assert_eq!(ev.key, 2);
        assert!(c.contains(1));
        assert!(c.contains(3));
    }

    #[test]
    fn dirty_evictions_are_flagged() {
        let mut c = SetAssocCache::new(1, 1);
        c.fill(1, [1; 64], true);
        let ev = c.fill(2, [2; 64], false).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.data, [1; 64]);
    }

    #[test]
    fn update_marks_dirty() {
        let mut c = SetAssocCache::new(2, 2);
        c.fill(7, [0; 64], false);
        assert!(c.update(7, [9; 64]));
        assert_eq!(c.dirty_blocks(), vec![(7, [9; 64])]);
        assert!(!c.update(8, [1; 64]));
    }

    #[test]
    fn refill_existing_key_does_not_evict() {
        let mut c = SetAssocCache::new(1, 1);
        c.fill(1, [1; 64], true);
        assert!(c.fill(1, [2; 64], false).is_none());
        // Dirtiness is sticky across refills.
        assert_eq!(c.dirty_blocks().len(), 1);
    }

    #[test]
    fn lose_all_models_crash() {
        let mut c = SetAssocCache::new(2, 2);
        c.fill(1, [1; 64], true);
        c.lose_all();
        assert!(c.is_empty());
        assert_eq!(c.probe(1), Access::Miss);
    }

    #[test]
    fn invalidate_returns_payload() {
        let mut c = SetAssocCache::new(2, 2);
        c.fill(3, [3; 64], true);
        let ev = c.invalidate(3).unwrap();
        assert!(ev.dirty);
        assert!(!c.contains(3));
        assert!(c.invalidate(3).is_none());
    }

    #[test]
    fn capacity_constructor_matches_table_1() {
        // 128 KiB 4-way counter cache = 512 sets.
        let c = SetAssocCache::with_capacity_bytes(128 * 1024, 4);
        assert_eq!(c.sets.len(), 512);
        // 256 KiB 8-way MT cache = 512 sets.
        let m = SetAssocCache::with_capacity_bytes(256 * 1024, 8);
        assert_eq!(m.sets.len(), 512);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn zero_ways_panics() {
        let _ = SetAssocCache::new(1, 0);
    }
}
