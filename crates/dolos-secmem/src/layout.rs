//! NVM metadata layout: where counters, MACs, shadow entries and the ADR
//! dump live in the physical address space.
//!
//! The protected data region starts at address 0. Metadata regions are
//! placed above it, each region sized from the data-region geometry:
//!
//! ```text
//! [0, data_bytes)                  protected data
//! [counter_base, ..)               one 64 B split-counter block per 4 KiB page
//! [mac_base, ..)                   8 B data MAC per data line (8 per 64 B line)
//! [shadow_base, ..)                Anubis shadow-table entries
//! [wpq_dump_base, ..)              ADR dump target for the WPQ (+ Mi-SU MACs)
//! ```
//!
//! Persistent *registers* (BMT root, Mi-SU persistent counter, redo-log
//! buffer) live inside the processor and are not part of this layout.

use dolos_nvm::addr::LineAddr;

/// Bytes per protected page.
pub const PAGE_BYTES: u64 = 4096;

/// The physical region a line address belongs to.
///
/// Adversarial fault injection targets regions by *kind* ("flip a bit in a
/// counter block", "tear the WPQ dump") rather than by raw address; this
/// taxonomy names them. [`MetadataLayout::region_of`] classifies an address
/// and [`MetadataLayout::region_range`] returns a region's extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaRegion {
    /// Protected application data (ciphertext lines).
    Data,
    /// Split-counter blocks (one per protected page).
    Counters,
    /// Per-line data MACs.
    Macs,
    /// Anubis shadow-table entries.
    Shadow,
    /// The WPQ ADR-dump target (payload lines + Mi-SU tables).
    WpqDump,
}

impl MetaRegion {
    /// All regions, for exhaustive tamper sweeps.
    pub const ALL: [MetaRegion; 5] = [
        MetaRegion::Data,
        MetaRegion::Counters,
        MetaRegion::Macs,
        MetaRegion::Shadow,
        MetaRegion::WpqDump,
    ];

    /// Short stable name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            MetaRegion::Data => "data",
            MetaRegion::Counters => "counters",
            MetaRegion::Macs => "macs",
            MetaRegion::Shadow => "shadow",
            MetaRegion::WpqDump => "wpq-dump",
        }
    }
}

impl core::fmt::Display for MetaRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Address-space layout for one protected region.
///
/// # Examples
///
/// ```
/// use dolos_secmem::layout::MetadataLayout;
///
/// let layout = MetadataLayout::new(1 << 20); // 1 MiB protected region
/// assert_eq!(layout.pages(), 256);
/// let ctr = layout.counter_block_addr(3);
/// assert!(ctr.as_u64() >= 1 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataLayout {
    data_bytes: u64,
    counter_base: u64,
    mac_base: u64,
    shadow_base: u64,
    shadow_entries: u64,
    wpq_dump_base: u64,
}

impl MetadataLayout {
    /// Default number of shadow-table entries (counter cache blocks +
    /// MT cache blocks at the Table 1 geometry: 2048 + 4096).
    pub const DEFAULT_SHADOW_ENTRIES: u64 = 6144;

    /// Creates a layout for a protected data region of `data_bytes` bytes
    /// (rounded up to a whole number of pages).
    ///
    /// # Panics
    ///
    /// Panics if `data_bytes` is zero.
    pub fn new(data_bytes: u64) -> Self {
        assert!(data_bytes > 0, "protected region must be non-empty");
        let data_bytes = data_bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let pages = data_bytes / PAGE_BYTES;
        let counter_base = data_bytes;
        let counter_bytes = pages * 64;
        let mac_base = counter_base + counter_bytes;
        let data_lines = data_bytes / 64;
        // 8-byte MAC per line, 8 MACs per metadata line.
        let mac_bytes = data_lines.div_ceil(8) * 64;
        let shadow_base = mac_base + mac_bytes;
        let shadow_entries = Self::DEFAULT_SHADOW_ENTRIES;
        let shadow_bytes = shadow_entries.div_ceil(8) * 64;
        let wpq_dump_base = shadow_base + shadow_bytes;
        Self {
            data_bytes,
            counter_base,
            mac_base,
            shadow_base,
            shadow_entries,
            wpq_dump_base,
        }
    }

    /// Size of the protected data region in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Number of protected 4 KiB pages.
    pub fn pages(&self) -> u64 {
        self.data_bytes / PAGE_BYTES
    }

    /// Number of protected cachelines.
    pub fn data_lines(&self) -> u64 {
        self.data_bytes / 64
    }

    /// Whether `addr` falls inside the protected data region.
    pub fn is_data_addr(&self, addr: LineAddr) -> bool {
        addr.as_u64() < self.data_bytes
    }

    /// The page index of a protected data address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the data region.
    pub fn page_of(&self, addr: LineAddr) -> u64 {
        assert!(self.is_data_addr(addr), "address outside protected region");
        addr.page_index()
    }

    /// NVM address of the split-counter block for `page`.
    pub fn counter_block_addr(&self, page: u64) -> LineAddr {
        debug_assert!(page < self.pages());
        LineAddr::containing(self.counter_base + page * 64)
    }

    /// NVM location of the data MAC for a data line:
    /// `(metadata line, byte offset of the 8-byte MAC within it)`.
    pub fn mac_slot(&self, addr: LineAddr) -> (LineAddr, usize) {
        debug_assert!(self.is_data_addr(addr));
        let line_index = addr.line_index();
        let meta_line = LineAddr::containing(self.mac_base + (line_index / 8) * 64);
        (meta_line, (line_index % 8) as usize * 8)
    }

    /// NVM location of Anubis shadow entry `slot`:
    /// `(metadata line, byte offset of the 8-byte entry)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the shadow table size.
    pub fn shadow_slot(&self, slot: u64) -> (LineAddr, usize) {
        assert!(slot < self.shadow_entries, "shadow slot out of range");
        let line = LineAddr::containing(self.shadow_base + (slot / 8) * 64);
        (line, (slot % 8) as usize * 8)
    }

    /// Number of shadow-table entries.
    pub fn shadow_entries(&self) -> u64 {
        self.shadow_entries
    }

    /// Base address of the WPQ ADR-dump region; slot `i` of the dump is one
    /// line at `base + 64 i`.
    pub fn wpq_dump_addr(&self, slot: u64) -> LineAddr {
        LineAddr::containing(self.wpq_dump_base + slot * 64)
    }

    /// First address past all metadata regions (for collision checks).
    pub fn end(&self) -> u64 {
        // Generous bound: dump region of 256 lines.
        self.wpq_dump_base + 256 * 64
    }

    /// Which region an address falls in, or `None` past the layout's end.
    pub fn region_of(&self, addr: LineAddr) -> Option<MetaRegion> {
        let a = addr.as_u64();
        if a < self.data_bytes {
            Some(MetaRegion::Data)
        } else if a < self.mac_base {
            Some(MetaRegion::Counters)
        } else if a < self.shadow_base {
            Some(MetaRegion::Macs)
        } else if a < self.wpq_dump_base {
            Some(MetaRegion::Shadow)
        } else if a < self.end() {
            Some(MetaRegion::WpqDump)
        } else {
            None
        }
    }

    /// The `[start, end)` byte extent of a region.
    pub fn region_range(&self, region: MetaRegion) -> (u64, u64) {
        match region {
            MetaRegion::Data => (0, self.data_bytes),
            MetaRegion::Counters => (self.counter_base, self.mac_base),
            MetaRegion::Macs => (self.mac_base, self.shadow_base),
            MetaRegion::Shadow => (self.shadow_base, self.wpq_dump_base),
            MetaRegion::WpqDump => (self.wpq_dump_base, self.end()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let l = MetadataLayout::new(1 << 22); // 4 MiB
        assert!(l.counter_base >= l.data_bytes);
        assert!(l.mac_base > l.counter_base);
        assert!(l.shadow_base > l.mac_base);
        assert!(l.wpq_dump_base > l.shadow_base);
    }

    #[test]
    fn rounds_up_to_pages() {
        let l = MetadataLayout::new(5000);
        assert_eq!(l.data_bytes(), 8192);
        assert_eq!(l.pages(), 2);
    }

    #[test]
    fn counter_blocks_are_per_page() {
        let l = MetadataLayout::new(1 << 20);
        let a = l.counter_block_addr(0);
        let b = l.counter_block_addr(1);
        assert_eq!(b.as_u64() - a.as_u64(), 64);
    }

    #[test]
    fn mac_slots_pack_8_per_line() {
        let l = MetadataLayout::new(1 << 20);
        let (line0, off0) = l.mac_slot(LineAddr::from_index(0));
        let (line7, off7) = l.mac_slot(LineAddr::from_index(7));
        let (line8, off8) = l.mac_slot(LineAddr::from_index(8));
        assert_eq!(line0, line7);
        assert_eq!(off0, 0);
        assert_eq!(off7, 56);
        assert_ne!(line0, line8);
        assert_eq!(off8, 0);
    }

    #[test]
    fn data_addr_classification() {
        let l = MetadataLayout::new(1 << 20);
        assert!(l.is_data_addr(LineAddr::new(0).unwrap()));
        assert!(!l.is_data_addr(l.counter_block_addr(0)));
    }

    #[test]
    fn shadow_slots_pack_8_per_line() {
        let l = MetadataLayout::new(1 << 20);
        let (la, oa) = l.shadow_slot(0);
        let (lb, ob) = l.shadow_slot(9);
        assert_eq!(oa, 0);
        assert_eq!(ob, 8);
        assert_ne!(la, lb);
    }

    #[test]
    fn wpq_dump_slots_are_line_spaced() {
        let l = MetadataLayout::new(1 << 20);
        assert_eq!(
            l.wpq_dump_addr(1).as_u64() - l.wpq_dump_addr(0).as_u64(),
            64
        );
        assert!(l.wpq_dump_addr(255).as_u64() < l.end());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_region_panics() {
        let _ = MetadataLayout::new(0);
    }

    #[test]
    fn region_classification_covers_every_region() {
        let l = MetadataLayout::new(1 << 20);
        assert_eq!(
            l.region_of(LineAddr::new(0).unwrap()),
            Some(MetaRegion::Data)
        );
        assert_eq!(
            l.region_of(l.counter_block_addr(0)),
            Some(MetaRegion::Counters)
        );
        let (mac_line, _) = l.mac_slot(LineAddr::from_index(0));
        assert_eq!(l.region_of(mac_line), Some(MetaRegion::Macs));
        let (shadow_line, _) = l.shadow_slot(0);
        assert_eq!(l.region_of(shadow_line), Some(MetaRegion::Shadow));
        assert_eq!(l.region_of(l.wpq_dump_addr(0)), Some(MetaRegion::WpqDump));
        assert_eq!(l.region_of(LineAddr::containing(l.end())), None);
    }

    #[test]
    fn region_ranges_tile_the_address_space() {
        let l = MetadataLayout::new(1 << 22);
        let mut cursor = 0u64;
        for region in MetaRegion::ALL {
            let (start, end) = l.region_range(region);
            assert_eq!(start, cursor, "{region} must start where the last ended");
            assert!(end > start, "{region} must be non-empty");
            cursor = end;
        }
        assert_eq!(cursor, l.end());
    }
}
