//! The Anubis shadow table (AGIT scheme).
//!
//! Anubis keeps, in NVM, one entry per metadata-cache frame recording the
//! *address* of the security-metadata block cached in that frame. After a
//! crash, only the blocks named by the shadow table can be stale, so
//! recovery touches a bounded set instead of rebuilding the whole tree
//! (Osiris' whole-memory scan). Each cache fill/eviction costs one extra NVM
//! write to keep the table current — the run-time price Anubis pays for its
//! bounded recovery time, charged by the Ma-SU timing model.

use dolos_sim::flat::FlatMap;
use dolos_sim::stats::StatSet;

/// The shadow table: a fixed array of slots, each optionally naming the
/// metadata block (by key) resident in the corresponding cache frame.
///
/// # Examples
///
/// ```
/// use dolos_secmem::shadow::ShadowTable;
///
/// let mut st = ShadowTable::new(4);
/// st.record(0xAA);
/// st.record(0xBB);
/// st.remove(0xAA);
/// assert_eq!(st.tracked(), vec![0xBB]);
/// ```
#[derive(Debug, Clone)]
pub struct ShadowTable {
    slots: Vec<Option<u64>>,
    /// Key → slot reverse index. Flat and sorted: the table is small (one
    /// entry per cache frame) and nothing about it may depend on hasher
    /// state — recovery derives its working set from this structure.
    index: FlatMap<usize>,
    writes: u64,
}

impl ShadowTable {
    /// Creates a table with `capacity` slots (one per cache frame).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shadow table must have slots");
        Self {
            slots: vec![None; capacity],
            index: FlatMap::new(),
            writes: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// NVM writes issued to keep the table current.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Records that metadata block `key` is now cached.
    ///
    /// Idempotent for already-tracked keys (no extra NVM write).
    ///
    /// # Panics
    ///
    /// Panics if the table is full — the caller must `remove` the evicted
    /// frame's entry first, mirroring the cache's fixed geometry.
    pub fn record(&mut self, key: u64) {
        if self.index.contains_key(key) {
            return;
        }
        let slot = self
            .slots
            .iter()
            .position(Option::is_none)
            .expect("shadow table full: remove evicted entries first");
        self.slots[slot] = Some(key);
        self.index.insert(key, slot);
        self.writes += 1;
    }

    /// Removes the entry for `key` (its block was evicted and written back).
    ///
    /// Returns whether an entry was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(slot) = self.index.remove(key) {
            self.slots[slot] = None;
            self.writes += 1;
            true
        } else {
            false
        }
    }

    /// The tracked keys — the recovery working set. Order is slot order.
    pub fn tracked(&self) -> Vec<u64> {
        self.slots.iter().filter_map(|s| *s).collect()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(key)
    }

    /// Clears the table (after recovery completes).
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.index.clear();
    }

    /// Snapshots statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("shadow.tracked", self.len() as f64);
        s.set("shadow.writes", self.writes as f64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_remove_round_trip() {
        let mut st = ShadowTable::new(2);
        st.record(1);
        st.record(2);
        assert!(st.contains(1));
        assert!(st.remove(1));
        assert!(!st.contains(1));
        assert!(!st.remove(1));
        assert_eq!(st.tracked(), vec![2]);
    }

    #[test]
    fn record_is_idempotent() {
        let mut st = ShadowTable::new(1);
        st.record(7);
        st.record(7);
        assert_eq!(st.len(), 1);
        assert_eq!(st.writes(), 1);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut st = ShadowTable::new(1);
        st.record(1);
        st.remove(1);
        st.record(2); // must not panic: slot was freed
        assert_eq!(st.tracked(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut st = ShadowTable::new(1);
        st.record(1);
        st.record(2);
    }

    #[test]
    fn writes_count_updates() {
        let mut st = ShadowTable::new(4);
        st.record(1);
        st.record(2);
        st.remove(1);
        assert_eq!(st.writes(), 3);
    }

    #[test]
    fn clear_empties_table() {
        let mut st = ShadowTable::new(4);
        st.record(1);
        st.clear();
        assert!(st.is_empty());
    }
}
