//! Tree of Counters (ToC) with lazy updates, protected à la Phoenix (§4.4).
//!
//! SGX-style integrity trees store *version counters* in every node: node
//! `N` holds one counter per child plus a MAC computed over its counters and
//! its own counter in the parent. Eagerly persisting every level on every
//! write would defeat the scheme's parallelism, so persistent-memory ToCs
//! (Phoenix) update nodes **lazily** in the metadata cache and protect the
//! cached-but-not-propagated state with a small, eagerly-updated shadow
//! Merkle tree over a write-through shadow region in NVM.
//!
//! This module is a functional model of exactly that arrangement:
//!
//! * the main tree (NVM) is only updated on eviction;
//! * updated nodes live in a volatile cache, mirrored write-through into a
//!   shadow region (NVM) whose MAC root sits in a persistent register;
//! * a crash loses the cache; recovery reloads the shadow region, verifies
//!   it against the shadow root, and merges it over the stale main tree.
//!
//! # Deferred MAC materialization (the shadow-root cache)
//!
//! The modeled hardware recomputes path MACs and the shadow root on every
//! write, and the Ma-SU charges that latency through its latency model. The
//! *host*, however, only needs MAC values at observation points — a verify,
//! an eviction, a crash, a recovery — and every MAC here is a pure function
//! of the version counters at that moment. So [`TreeOfCounters::update_leaf`]
//! bumps counters eagerly (cheap integer work that later MACs depend on) but
//! defers node MACs, leaf MACs, the shadow write-through, and the
//! shadow-root recompute to the next observation point, where each dirty
//! node is recomputed exactly once. That turns the former
//! O(shadow-region) MAC stream *per write* into one stream *per observation*
//! — the difference between fig16's lazy-design throughput and everyone
//! else's. A test-only eager path (`TreeOfCounters::eager_update_leaf`,
//! compiled under `cfg(test)` so it cannot leak into the product) pins the
//! deferred state lockstep-equal to the uncached original.

use std::collections::BTreeMap;

use dolos_crypto::mac::{Mac64, MacEngine};
use dolos_nvm::Line;
use dolos_sim::flat::FlatMap;

use crate::bmt::ARITY;

/// One ToC node: per-child version counters plus the node MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TocNode {
    /// Version counter per child.
    pub counters: [u64; ARITY as usize],
    /// MAC over this node's counters and its counter in the parent.
    pub mac: Mac64,
}

impl Default for TocNode {
    fn default() -> Self {
        Self {
            counters: [0; ARITY as usize],
            mac: [0; 8],
        }
    }
}

fn node_key(level: usize, index: u64) -> (usize, u64) {
    (level, index)
}

/// Upper bound on tree height: `ARITY^22 = 8^22 > 2^64`, so any `u64` leaf
/// count fits. Lets the eager reference path keep the update path in a
/// fixed-size stack array instead of allocating per write. (The deferred
/// production path batches per observation, so only the test-only eager
/// reference still needs it.)
#[cfg(test)]
const MAX_HEIGHT: usize = 22;

/// A lazily-updated Tree of Counters with Phoenix-style shadow protection.
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
/// use dolos_secmem::toc::TreeOfCounters;
///
/// let engine = MacEngine::new([2; 16]);
/// let mut toc = TreeOfCounters::new(64, &engine);
/// toc.update_leaf(&engine, 3, &[1; 64]);
/// assert!(toc.verify_leaf(&engine, 3, &[1; 64]));
///
/// // Crash before eviction: cached state is lost but recoverable.
/// toc.crash(&engine);
/// assert!(toc.recover(&engine).is_ok());
/// assert!(toc.verify_leaf(&engine, 3, &[1; 64]));
/// ```
#[derive(Debug, Clone)]
pub struct TreeOfCounters {
    leaves: u64,
    height: usize,
    /// Persistent (NVM) tree nodes; stale for lazily-updated paths.
    /// Ordered maps throughout: recovery and audits iterate these, and
    /// iteration order must be a pure function of the contents.
    main: BTreeMap<(usize, u64), TocNode>,
    /// Persistent (NVM) leaf MACs, keyed by leaf index.
    main_leaf_macs: FlatMap<Mac64>,
    /// Volatile cache of updated nodes/leaf MACs (lost on crash).
    cache: BTreeMap<(usize, u64), TocNode>,
    cache_leaf_macs: FlatMap<Mac64>,
    /// Write-through shadow region (NVM) mirroring the volatile cache.
    shadow: BTreeMap<(usize, u64), TocNode>,
    shadow_leaf_macs: BTreeMap<u64, Mac64>,
    /// Persistent register: eagerly-updated MAC over the shadow region.
    shadow_root: Mac64,
    /// Persistent register: the root node's counter epoch.
    root_counter: u64,
    /// Leaf lines written since the last materialization: the deferred-MAC
    /// invalidation set. A key here means the leaf's MAC, its ancestors'
    /// MACs, their shadow copies, and the shadow root are all stale; only
    /// the latest line per leaf is kept because intermediate values never
    /// reach an observation point.
    pending_leaf_lines: FlatMap<Line>,
    updates: u64,
}

/// Error returned when ToC recovery detects tampering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TocRecoveryError;

impl core::fmt::Display for TocRecoveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "shadow region failed integrity verification")
    }
}

impl std::error::Error for TocRecoveryError {}

impl TreeOfCounters {
    /// Creates a ToC over `leaves` counter blocks.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn new(leaves: u64, engine: &MacEngine) -> Self {
        assert!(leaves > 0, "tree must cover at least one leaf");
        let mut height = 0usize;
        let mut width = leaves;
        while width > 1 {
            width = width.div_ceil(ARITY);
            height += 1;
        }
        let height = height.max(1);
        let mut toc = Self {
            leaves,
            height,
            main: BTreeMap::new(),
            main_leaf_macs: FlatMap::new(),
            cache: BTreeMap::new(),
            cache_leaf_macs: FlatMap::new(),
            shadow: BTreeMap::new(),
            shadow_leaf_macs: BTreeMap::new(),
            shadow_root: [0; 8],
            root_counter: 0,
            pending_leaf_lines: FlatMap::new(),
            updates: 0,
        };
        toc.shadow_root = toc.compute_shadow_root(engine);
        toc
    }

    /// Number of covered leaves.
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Tree height (levels of interior nodes).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Leaf updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of dirty (cached, unevicted) nodes.
    pub fn dirty_nodes(&self) -> usize {
        self.cache.len()
    }

    fn node(&self, level: usize, index: u64) -> TocNode {
        let key = node_key(level, index);
        self.cache
            .get(&key)
            .or_else(|| self.main.get(&key))
            .copied()
            .unwrap_or_default()
    }

    fn leaf_mac(&self, index: u64) -> Mac64 {
        self.cache_leaf_macs
            .get(index)
            .or_else(|| self.main_leaf_macs.get(index))
            .copied()
            .unwrap_or([0; 8])
    }

    fn node_mac(&self, engine: &MacEngine, level: usize, index: u64, node: &TocNode) -> Mac64 {
        let parent_counter = if level == self.height {
            self.root_counter
        } else {
            self.node(level + 1, index / ARITY).counters[(index % ARITY) as usize]
        };
        // Streamed MAC (byte-identical to `tag` over the former
        // concatenation buffer): ARITY counters + parent counter + level +
        // index, 8 little-endian bytes each. This sits on the per-write
        // critical path, so no allocation.
        let mut s = engine.stream_tag(8 * (ARITY + 3));
        for c in &node.counters {
            s.update(&c.to_le_bytes());
        }
        s.update(&parent_counter.to_le_bytes());
        s.update(&(level as u64).to_le_bytes());
        s.update(&index.to_le_bytes());
        s.end_part();
        s.finish()
    }

    fn leaf_mac_value(&self, engine: &MacEngine, index: u64, leaf_line: &Line) -> Mac64 {
        let version = self.node(1, index / ARITY).counters[(index % ARITY) as usize];
        engine.tag_parts(&[&index.to_le_bytes(), &version.to_le_bytes(), leaf_line])
    }

    fn compute_shadow_root(&self, engine: &MacEngine) -> Mac64 {
        // Streamed MAC (byte-identical to `tag` over the former
        // concatenation buffer). Per shadow node: level + index + ARITY
        // counters (8 LE bytes each) + the 8-byte node MAC; per shadow leaf
        // MAC: index + MAC; then the root counter. Recomputed on every leaf
        // update, so no allocation.
        let len = self.shadow.len() as u64 * (8 * (ARITY + 3))
            + self.shadow_leaf_macs.len() as u64 * 16
            + 8;
        let mut s = engine.stream_tag(len);
        for (&(level, index), node) in &self.shadow {
            s.update(&(level as u64).to_le_bytes());
            s.update(&index.to_le_bytes());
            for c in &node.counters {
                s.update(&c.to_le_bytes());
            }
            s.update(&node.mac);
        }
        for (&index, mac) in &self.shadow_leaf_macs {
            s.update(&index.to_le_bytes());
            s.update(mac);
        }
        s.update(&self.root_counter.to_le_bytes());
        s.end_part();
        s.finish()
    }

    /// Updates leaf `index` to `leaf_line`: increments version counters up
    /// the path (in cache only), recomputes affected MACs, and eagerly
    /// refreshes the shadow region + shadow root.
    ///
    /// With parallel MAC engines all levels update concurrently, which is
    /// why the Ma-SU charges only [`dolos_crypto::latency::LAZY_UPDATE_MACS`]
    /// serial MACs in this mode.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_leaf(&mut self, engine: &MacEngine, index: u64, leaf_line: &Line) {
        let _ = engine; // the engine is spent at materialization time
        assert!(index < self.leaves, "leaf index out of range");
        self.updates += 1;
        // Bump version counters bottom-up in the cached copies. Later MACs
        // are pure functions of these integers, so the counters stay eager
        // while the MAC work defers.
        let mut idx = index;
        for level in 1..=self.height {
            let parent = idx / ARITY;
            let child = (idx % ARITY) as usize;
            let mut node = self.node(level, parent);
            node.counters[child] += 1;
            self.cache.insert(node_key(level, parent), node);
            idx = parent;
        }
        self.root_counter += 1;
        self.pending_leaf_lines.insert(index, *leaf_line);
    }

    /// The uncached reference path: recomputes every MAC, the shadow
    /// write-through, and the shadow root on the spot, exactly as the
    /// pre-memoization implementation did. The lockstep property test
    /// drives this against [`TreeOfCounters::update_leaf`] +
    /// [`TreeOfCounters::materialize`] and demands identical state.
    #[cfg(test)]
    pub(crate) fn eager_update_leaf(&mut self, engine: &MacEngine, index: u64, leaf_line: &Line) {
        assert!(index < self.leaves, "leaf index out of range");
        self.updates += 1;
        // Bump version counters bottom-up in the cached copies.
        let mut idx = index;
        for level in 1..=self.height {
            let parent = idx / ARITY;
            let child = (idx % ARITY) as usize;
            let mut node = self.node(level, parent);
            node.counters[child] += 1;
            self.cache.insert(node_key(level, parent), node);
            idx = parent;
        }
        self.root_counter += 1;
        // Recompute MACs top-down so each node MACs against its parent's new
        // counter.
        let mut path = [(0usize, 0u64); MAX_HEIGHT];
        let mut idx = index;
        for level in 1..=self.height {
            idx /= ARITY;
            path[level - 1] = (level, idx);
        }
        let path = &path[..self.height];
        for &(level, node_idx) in path.iter().rev() {
            let mut node = self.node(level, node_idx);
            node.mac = self.node_mac(engine, level, node_idx, &node);
            self.cache.insert(node_key(level, node_idx), node);
        }
        let mac = self.leaf_mac_value(engine, index, leaf_line);
        self.cache_leaf_macs.insert(index, mac);
        // Write-through to the shadow region; eagerly update its root.
        for &(level, node_idx) in path {
            self.shadow
                .insert(node_key(level, node_idx), self.node(level, node_idx));
        }
        self.shadow_leaf_macs.insert(index, mac);
        self.shadow_root = self.compute_shadow_root(engine);
    }

    /// Materializes every deferred MAC: leaf MACs for pending leaves, node
    /// MACs for their ancestor frontier (each dirty node exactly once, no
    /// matter how many pending leaves share it), the shadow write-through,
    /// and one shadow-root recompute. All inputs are the *current* version
    /// counters, which is precisely what the eager per-write walk would
    /// have left behind after its last touch of each node.
    fn materialize(&mut self, engine: &MacEngine) {
        if self.pending_leaf_lines.is_empty() {
            return;
        }
        let pending = std::mem::replace(&mut self.pending_leaf_lines, FlatMap::new());
        // Pending iterates in ascending leaf order, so each level's frontier
        // arrives ascending and adjacent dedup suffices.
        let mut frontier: Vec<u64> = Vec::with_capacity(pending.len());
        for (index, line) in pending.iter() {
            let mac = self.leaf_mac_value(engine, index, line);
            self.cache_leaf_macs.insert(index, mac);
            self.shadow_leaf_macs.insert(index, mac);
            let parent = index / ARITY;
            if frontier.last() != Some(&parent) {
                frontier.push(parent);
            }
        }
        for level in 1..=self.height {
            let mut next: Vec<u64> = Vec::with_capacity(frontier.len());
            for &idx in &frontier {
                let mut node = self.node(level, idx);
                node.mac = self.node_mac(engine, level, idx, &node);
                self.cache.insert(node_key(level, idx), node);
                self.shadow.insert(node_key(level, idx), node);
                let parent = idx / ARITY;
                if next.last() != Some(&parent) {
                    next.push(parent);
                }
            }
            frontier = next;
        }
        self.shadow_root = self.compute_shadow_root(engine);
    }

    /// Verifies leaf content against the (cached or persisted) tree.
    pub fn verify_leaf(&mut self, engine: &MacEngine, index: u64, leaf_line: &Line) -> bool {
        self.materialize(engine);
        if index >= self.leaves {
            return false;
        }
        if self.leaf_mac_value(engine, index, leaf_line) != self.leaf_mac(index) {
            return false;
        }
        let mut idx = index;
        for level in 1..=self.height {
            idx /= ARITY;
            let node = self.node(level, idx);
            if self.node_mac(engine, level, idx, &node) != node.mac {
                return false;
            }
        }
        true
    }

    /// Evicts every cached node into the main (NVM) tree, emptying the
    /// shadow region — what a metadata-cache flush does.
    pub fn evict_all(&mut self, engine: &MacEngine) {
        self.materialize(engine);
        for (key, node) in std::mem::take(&mut self.cache) {
            self.main.insert(key, node);
        }
        for (idx, mac) in std::mem::take(&mut self.cache_leaf_macs).iter() {
            self.main_leaf_macs.insert(idx, *mac);
        }
        self.shadow.clear();
        self.shadow_leaf_macs.clear();
        self.shadow_root = self.compute_shadow_root(engine);
    }

    /// Models a crash: the volatile cache is lost; main tree, shadow region,
    /// and persistent registers survive. Deferred MACs materialize first —
    /// in hardware the shadow region and root register were persistent the
    /// whole time, so the surviving state must be what eager updates would
    /// have persisted (and a post-crash attacker must tamper with *that*
    /// state, not a stale snapshot).
    pub fn crash(&mut self, engine: &MacEngine) {
        self.materialize(engine);
        self.cache.clear();
        self.cache_leaf_macs.clear();
    }

    /// Recovers the cached state from the shadow region.
    ///
    /// # Errors
    ///
    /// Returns [`TocRecoveryError`] if the shadow region does not match the
    /// persistent shadow-root register (tampering).
    pub fn recover(&mut self, engine: &MacEngine) -> Result<(), TocRecoveryError> {
        self.materialize(engine);
        if self.compute_shadow_root(engine) != self.shadow_root {
            return Err(TocRecoveryError);
        }
        for (&key, node) in &self.shadow {
            self.cache.insert(key, *node);
        }
        for (&idx, mac) in &self.shadow_leaf_macs {
            self.cache_leaf_macs.insert(idx, *mac);
        }
        Ok(())
    }

    /// Tampers with a shadow-region node (attack-injection tests). Deferred
    /// MACs materialize first so the attacker strikes the shadow state the
    /// hardware would hold, and a later materialization cannot heal it.
    pub fn tamper_shadow(&mut self, engine: &MacEngine, level: usize, index: u64) {
        self.materialize(engine);
        if let Some(node) = self.shadow.get_mut(&node_key(level, index)) {
            node.counters[0] ^= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MacEngine {
        MacEngine::new([4; 16])
    }

    fn toc(leaves: u64) -> TreeOfCounters {
        TreeOfCounters::new(leaves, &engine())
    }

    #[test]
    fn update_then_verify() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        assert!(t.verify_leaf(&e, 5, &[1; 64]));
        assert!(!t.verify_leaf(&e, 5, &[2; 64]));
    }

    #[test]
    fn replayed_leaf_fails() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        t.update_leaf(&e, 5, &[2; 64]);
        assert!(!t.verify_leaf(&e, 5, &[1; 64]));
    }

    #[test]
    fn updates_stay_in_cache_until_eviction() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        assert!(t.dirty_nodes() > 0);
        t.evict_all(&e);
        assert_eq!(t.dirty_nodes(), 0);
        assert!(t.verify_leaf(&e, 5, &[1; 64]));
    }

    #[test]
    fn crash_without_recovery_loses_lazy_updates() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        t.crash(&e);
        // Stale main tree: the new leaf content no longer verifies.
        assert!(!t.verify_leaf(&e, 5, &[1; 64]));
    }

    #[test]
    fn recovery_restores_cached_state() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        t.update_leaf(&e, 9, &[2; 64]);
        t.crash(&e);
        t.recover(&e).expect("clean recovery");
        assert!(t.verify_leaf(&e, 5, &[1; 64]));
        assert!(t.verify_leaf(&e, 9, &[2; 64]));
    }

    #[test]
    fn tampered_shadow_is_detected() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        t.crash(&e);
        t.tamper_shadow(&e, 1, 0);
        assert_eq!(t.recover(&e), Err(TocRecoveryError));
    }

    #[test]
    fn eviction_then_crash_needs_no_shadow() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        t.evict_all(&e);
        t.crash(&e);
        t.recover(&e).expect("empty shadow verifies");
        assert!(t.verify_leaf(&e, 5, &[1; 64]));
    }

    #[test]
    fn independent_leaves_do_not_interfere() {
        let mut t = toc(512);
        let e = engine();
        t.update_leaf(&e, 0, &[1; 64]);
        t.update_leaf(&e, 511, &[2; 64]);
        assert!(t.verify_leaf(&e, 0, &[1; 64]));
        assert!(t.verify_leaf(&e, 511, &[2; 64]));
        assert!(t.verify_leaf(&e, 100, &[0; 64]) || !t.verify_leaf(&e, 100, &[1; 64]));
    }

    #[test]
    fn height_is_log8() {
        assert_eq!(toc(8).height(), 1);
        assert_eq!(toc(9).height(), 2);
        assert_eq!(toc(64).height(), 2);
    }

    /// Every observable field of the two ToCs must agree.
    fn assert_state_eq(deferred: &TreeOfCounters, eager: &TreeOfCounters, ctx: &str) {
        assert_eq!(deferred.main, eager.main, "{ctx}: main tree diverged");
        assert_eq!(
            deferred.main_leaf_macs, eager.main_leaf_macs,
            "{ctx}: main leaf MACs diverged"
        );
        assert_eq!(deferred.cache, eager.cache, "{ctx}: cache diverged");
        assert_eq!(
            deferred.cache_leaf_macs, eager.cache_leaf_macs,
            "{ctx}: cached leaf MACs diverged"
        );
        assert_eq!(
            deferred.shadow, eager.shadow,
            "{ctx}: shadow region diverged"
        );
        assert_eq!(
            deferred.shadow_leaf_macs, eager.shadow_leaf_macs,
            "{ctx}: shadow leaf MACs diverged"
        );
        assert_eq!(
            deferred.shadow_root, eager.shadow_root,
            "{ctx}: shadow-root register diverged"
        );
        assert_eq!(
            deferred.root_counter, eager.root_counter,
            "{ctx}: root counter diverged"
        );
        assert_eq!(
            deferred.updates, eager.updates,
            "{ctx}: update count diverged"
        );
    }

    #[test]
    fn deferred_state_lockstep_equals_uncached_reference() {
        use dolos_sim::rng::XorShift;
        let e = engine();
        for (seed, leaves) in [(0xACEu64, 8u64), (0x5EED, 64), (0xF00D, 300)] {
            let mut rng = XorShift::new(seed);
            let mut deferred = TreeOfCounters::new(leaves, &e);
            let mut eager = TreeOfCounters::new(leaves, &e);
            let mut contents: BTreeMap<u64, Line> = BTreeMap::new();
            for step in 0..150u64 {
                let idx = rng.next_below(leaves);
                let line = [rng.next_u64() as u8; 64];
                deferred.update_leaf(&e, idx, &line);
                eager.eager_update_leaf(&e, idx, &line);
                contents.insert(idx, line);
                match step % 11 {
                    // Verify observation: must agree op-for-op and force a
                    // materialization boundary mid-burst.
                    0 | 5 => {
                        // Probe an updated leaf: untouched leaves hold the
                        // default (absent) leaf MAC and never verify.
                        let pick = rng.next_below(contents.len() as u64) as usize;
                        let (&probe, expect) = contents.iter().nth(pick).expect("non-empty");
                        let expect = *expect;
                        assert!(deferred.verify_leaf(&e, probe, &expect), "step {step}");
                        let mut wrong = expect;
                        wrong[0] ^= 0x40;
                        assert!(!deferred.verify_leaf(&e, probe, &wrong), "step {step}");
                        assert_state_eq(&deferred, &eager, "after verify");
                    }
                    // Eviction observation.
                    3 => {
                        deferred.evict_all(&e);
                        eager.evict_all(&e);
                        assert_state_eq(&deferred, &eager, "after evict_all");
                    }
                    // Crash + recover observation: the persisted shadow and
                    // the recovery outcome must match the eager reference.
                    7 => {
                        deferred.crash(&e);
                        eager.crash(&e);
                        assert_state_eq(&deferred, &eager, "after crash");
                        assert_eq!(deferred.recover(&e), Ok(()));
                        assert_eq!(eager.recover(&e), Ok(()));
                        assert_state_eq(&deferred, &eager, "after recover");
                    }
                    // Leave MACs pending across iterations.
                    _ => {}
                }
            }
            deferred.crash(&e);
            eager.crash(&e);
            assert_state_eq(&deferred, &eager, "final crash");
        }
    }

    #[test]
    fn tamper_before_materialization_is_not_healed() {
        let mut t = toc(64);
        let e = engine();
        t.update_leaf(&e, 5, &[1; 64]);
        // Crash materializes the deferred shadow state; tampering after the
        // crash must still be caught even though more deferred work (none
        // here) could in principle follow.
        t.crash(&e);
        t.tamper_shadow(&e, 1, 0);
        assert_eq!(t.recover(&e), Err(TocRecoveryError));
    }
}
