//! Split encryption counters (§2.1 of the paper).
//!
//! Counters are packed 64 per 64-byte block: one 64-bit **major** counter
//! shared by a 4 KiB page plus 64 7-bit **minor** counters, one per
//! cacheline. The effective counter of line `i` is `(major, minor[i])`; when
//! a minor counter overflows, the major counter increments, all minors reset,
//! and the whole page must be re-encrypted (the caller is told via
//! [`IncrementResult::PageOverflow`]).

use dolos_nvm::Line;

/// Minor counters are 7 bits wide.
pub const MINOR_MAX: u8 = 0x7F;

/// Number of minor counters per block (one per line of a 4 KiB page).
pub const MINORS_PER_BLOCK: usize = 64;

/// The effective encryption counter of one cacheline.
///
/// Folded into the IV as a single 64-bit value: `major * 128 + minor`, which
/// is unique across the page's lifetime because minors reset on every major
/// increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LineCounter {
    /// The page-wide major counter.
    pub major: u64,
    /// This line's minor counter.
    pub minor: u8,
}

impl LineCounter {
    /// Packs the counter into the single value used in the IV.
    ///
    /// # Examples
    ///
    /// ```
    /// use dolos_secmem::counters::LineCounter;
    /// let c = LineCounter { major: 2, minor: 5 };
    /// assert_eq!(c.packed(), 2 * 128 + 5);
    /// ```
    pub fn packed(self) -> u64 {
        self.major * 128 + u64::from(self.minor)
    }
}

/// Outcome of incrementing a line's counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementResult {
    /// The minor counter advanced; only this line's pad changes.
    Minor(LineCounter),
    /// The minor overflowed: the major advanced, all minors reset, and every
    /// line in the page must be re-encrypted with its new counter.
    PageOverflow(LineCounter),
}

impl IncrementResult {
    /// The new counter value for the incremented line.
    pub fn counter(self) -> LineCounter {
        match self {
            IncrementResult::Minor(c) | IncrementResult::PageOverflow(c) => c,
        }
    }
}

/// A 64-byte split-counter block covering one 4 KiB page.
///
/// # Examples
///
/// ```
/// use dolos_secmem::counters::{CounterBlock, IncrementResult};
///
/// let mut block = CounterBlock::new();
/// let r = block.increment(3);
/// assert!(matches!(r, IncrementResult::Minor(_)));
/// assert_eq!(block.line_counter(3).minor, 1);
/// assert_eq!(block.line_counter(4).minor, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterBlock {
    major: u64,
    minors: [u8; MINORS_PER_BLOCK],
}

impl Default for CounterBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterBlock {
    /// A fresh block with all counters zero.
    pub fn new() -> Self {
        Self {
            major: 0,
            minors: [0; MINORS_PER_BLOCK],
        }
    }

    /// The page's major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The effective counter of line `line` (0..64).
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn line_counter(&self, line: usize) -> LineCounter {
        LineCounter {
            major: self.major,
            minor: self.minors[line],
        }
    }

    /// Increments line `line`'s counter, handling minor overflow.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn increment(&mut self, line: usize) -> IncrementResult {
        if self.minors[line] == MINOR_MAX {
            self.major += 1;
            self.minors = [0; MINORS_PER_BLOCK];
            // Per split-counter semantics the overflowing line starts the new
            // epoch at minor 1 so its pad still differs from the fresh 0 pads
            // the other lines will use on their next write.
            self.minors[line] = 1;
            IncrementResult::PageOverflow(self.line_counter(line))
        } else {
            self.minors[line] += 1;
            IncrementResult::Minor(self.line_counter(line))
        }
    }

    /// Serializes to the 64-byte NVM representation
    /// (8-byte major ‖ 56 bytes holding 64 7-bit minors).
    pub fn to_line(&self) -> Line {
        let mut out = [0u8; 64];
        out[0..8].copy_from_slice(&self.major.to_le_bytes());
        // Pack 64 x 7-bit minors into 56 bytes.
        let mut bit = 0usize;
        for &m in &self.minors {
            let byte = bit / 8;
            let off = bit % 8;
            let v = u16::from(m & MINOR_MAX) << off;
            out[8 + byte] |= (v & 0xFF) as u8;
            if off > 1 {
                out[8 + byte + 1] |= (v >> 8) as u8;
            }
            bit += 7;
        }
        out
    }

    /// Deserializes from the 64-byte NVM representation.
    pub fn from_line(line: &Line) -> Self {
        let mut major_bytes = [0u8; 8];
        major_bytes.copy_from_slice(&line[0..8]);
        let major = u64::from_le_bytes(major_bytes);
        let mut minors = [0u8; MINORS_PER_BLOCK];
        let mut bit = 0usize;
        for m in &mut minors {
            let byte = bit / 8;
            let off = bit % 8;
            let lo = u16::from(line[8 + byte]) >> off;
            let hi = if off > 1 && 8 + byte + 1 < 64 {
                u16::from(line[8 + byte + 1]) << (8 - off)
            } else {
                0
            };
            *m = ((lo | hi) & u16::from(MINOR_MAX)) as u8;
            bit += 7;
        }
        Self { major, minors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_zero() {
        let b = CounterBlock::new();
        assert_eq!(b.major(), 0);
        for i in 0..64 {
            assert_eq!(b.line_counter(i).packed(), 0);
        }
    }

    #[test]
    fn minor_increments_are_per_line() {
        let mut b = CounterBlock::new();
        b.increment(0);
        b.increment(0);
        b.increment(1);
        assert_eq!(b.line_counter(0).minor, 2);
        assert_eq!(b.line_counter(1).minor, 1);
        assert_eq!(b.line_counter(2).minor, 0);
    }

    #[test]
    fn overflow_resets_page() {
        let mut b = CounterBlock::new();
        for _ in 0..u64::from(MINOR_MAX) {
            b.increment(5);
        }
        assert_eq!(b.line_counter(5).minor, MINOR_MAX);
        b.increment(6); // unrelated line untouched by the coming overflow
        let r = b.increment(5);
        assert!(matches!(r, IncrementResult::PageOverflow(_)));
        assert_eq!(b.major(), 1);
        assert_eq!(b.line_counter(5).minor, 1);
        assert_eq!(b.line_counter(6).minor, 0); // reset by the epoch change
    }

    #[test]
    fn packed_counters_never_repeat_across_overflow() {
        let mut b = CounterBlock::new();
        // Sort-and-dedup uniqueness check: collection-deterministic, unlike
        // a hash set whose probe order depends on process hasher seeds.
        let seen: Vec<u64> = (0..300)
            .map(|_| b.increment(9).counter().packed())
            .collect();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), before, "a packed counter value repeated");
    }

    #[test]
    fn serialization_round_trips() {
        let mut b = CounterBlock::new();
        for i in 0..64 {
            for _ in 0..(i % 7) {
                b.increment(i);
            }
        }
        for _ in 0..200 {
            b.increment(63);
        }
        let line = b.to_line();
        assert_eq!(CounterBlock::from_line(&line), b);
    }

    #[test]
    fn serialization_of_extremes() {
        let mut b = CounterBlock::new();
        for i in 0..64 {
            for _ in 0..u64::from(MINOR_MAX) {
                b.increment(i);
            }
        }
        let line = b.to_line();
        assert_eq!(CounterBlock::from_line(&line), b);
    }

    #[test]
    fn packed_orders_by_epoch() {
        let early = LineCounter {
            major: 0,
            minor: 127,
        };
        let later = LineCounter { major: 1, minor: 0 };
        assert!(later.packed() > early.packed());
    }
}
