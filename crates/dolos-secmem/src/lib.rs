//! Secure-memory metadata machinery: the substrate under both the baseline
//! (Anubis/AGIT) controller and Dolos' Major Security Unit.
//!
//! Components:
//!
//! * [`cache`] — the set-associative write-back caches from Table 1
//!   (counter cache and Merkle-tree metadata cache);
//! * [`counters`] — split encryption counters (64-bit major + 64×7-bit
//!   minors per 4 KiB page) with overflow/page-re-encryption semantics;
//! * [`layout`] — the NVM address map for counters, data MACs, the Anubis
//!   shadow table, and the ADR dump region;
//! * [`bmt`] — the 8-ary Bonsai Merkle Tree with eager (AGIT) updates and
//!   recovery-time root recomputation;
//! * [`toc`] — the lazily-updated Tree of Counters with Phoenix-style
//!   shadow protection;
//! * [`shadow`] — the Anubis shadow table that bounds recovery work;
//! * [`ecc`] — Osiris ECC-probe counter recovery.
//!
//! All components are *functional*: real MACs, real counters, real bytes.
//! Timing is charged separately by the controller layer (`dolos-core`) using
//! [`dolos_crypto::latency`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmt;
pub mod cache;
pub mod counters;
pub mod ecc;
pub mod layout;
pub mod shadow;
pub mod toc;

pub use bmt::{data_mac, BonsaiMerkleTree};
pub use cache::SetAssocCache;
pub use counters::{CounterBlock, IncrementResult, LineCounter};
pub use ecc::{ecc64, probe_counter};
pub use layout::{MetaRegion, MetadataLayout};
pub use shadow::ShadowTable;
pub use toc::TreeOfCounters;
