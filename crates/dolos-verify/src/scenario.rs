//! Conformance scenarios: seeded, replayable, shrinkable.
//!
//! A [`Scenario`] is the unit of differential testing: one deterministic
//! operation stream (transaction-shaped rounds from the
//! [`dolos_whisper::gen`] generator) plus the adversarial decorations —
//! a power-failure cut, an optional nested recovery crash, an optional
//! post-crash tamper — that every configured scheme must survive
//! identically. Scenarios render to a compact string
//! (`seed=7;keys=32;[t4@wpq-insert#9+q;t2+flip(data,0,9)]`) that parses
//! back losslessly, so a campaign failure is replayable from the report
//! alone.
//!
//! Crash cuts are restricted to the two *scheme-independent* injection
//! points: [`InjectionPoint::PersistStart`] fires at the head of every
//! persist call (the interrupted write is lost in every scheme) and
//! [`InjectionPoint::WpqInsert`] fires exactly once per accepted persist
//! (the interrupted write is ADR-committed in every scheme). Points whose
//! occurrence count depends on the scheme (`misu-protect`, `masu-drain`)
//! would make the cross-scheme oracle ambiguous and are excluded by
//! construction.

use core::fmt;
use core::str::FromStr;

use dolos_chaos::{Shrinkable, TamperSpec};
use dolos_core::inject::InjectionPoint;
use dolos_secmem::layout::MetaRegion;
use dolos_sim::rng::XorShift;

/// One crash round of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyRound {
    /// Transactions generated for the round's operation stream.
    pub txns: usize,
    /// Power failure at the nth occurrence of a scheme-independent
    /// injection point; `None` crashes at the end of the stream.
    pub fault: Option<(InjectionPoint, u64)>,
    /// Drain the WPQ before crashing (the settled-state variant).
    pub quiesce: bool,
    /// Nested power failure at the nth recovery-replay step of this
    /// round's recovery; the boot is then retried once.
    pub nested: Option<u64>,
    /// NVM corruption applied while the machine is dark. Terminal: the
    /// round either ends in detection or must verify clean.
    pub tamper: Option<TamperSpec>,
}

/// A full conformance scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Seed for operation streams and payloads.
    pub seed: u64,
    /// Data lines addressable by the generated transactions.
    pub keyspace: u64,
    /// NVM bank count every scheme runs with (power of two). `1` is the
    /// paper's single-queue model; the rendered form only carries the
    /// token when it differs, so single-bank scenario strings (and the
    /// campaign reports built from them) are unchanged.
    pub banks: usize,
    /// Crash rounds, executed in order against one system instance.
    pub rounds: Vec<VerifyRound>,
}

/// Shape of generated scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioConfig {
    /// Rounds per scenario.
    pub rounds: usize,
    /// Maximum transactions per round (at least 1 is always generated).
    pub txns_per_round: usize,
    /// Data keyspace in lines.
    pub keyspace: u64,
    /// Whether the final round may tamper with NVM while crashed.
    pub tamper: bool,
    /// NVM bank count the generated scenarios run with. At `1` (the
    /// default) generation is bit-identical to the pre-bank generator; at
    /// higher counts tamper rounds may also tear a single bank's dump.
    pub banks: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            rounds: 2,
            txns_per_round: 6,
            keyspace: 32,
            tamper: true,
            banks: 1,
        }
    }
}

/// The two injection points whose occurrence index is the persist-call
/// index in *every* scheme (see the module docs).
pub const CUT_POINTS: [InjectionPoint; 2] =
    [InjectionPoint::PersistStart, InjectionPoint::WpqInsert];

impl Scenario {
    /// Generates a scenario from a seed. Deterministic; tampering is
    /// confined to the final round because tamper rounds are terminal.
    pub fn generate(seed: u64, config: &ScenarioConfig) -> Self {
        let mut rng = XorShift::new(seed ^ 0xD1FF_5EED);
        let rounds = config.rounds.max(1);
        let mut out = Vec::with_capacity(rounds);
        for index in 0..rounds {
            let txns = 1 + rng.next_below(config.txns_per_round.max(1) as u64) as usize;
            // A transaction issues up to 2*batch+1 persist calls; aiming the
            // occurrence inside (and occasionally past) the stream exercises
            // both firing and non-firing cuts.
            let fault = if rng.chance(0.7) {
                let point = CUT_POINTS[rng.next_below(2) as usize];
                let nth = rng.next_below((txns as u64) * 8);
                Some((point, nth))
            } else {
                None
            };
            let quiesce = rng.chance(0.25);
            let nested = if rng.chance(0.3) {
                Some(rng.next_below(8))
            } else {
                None
            };
            let tamper = if config.tamper && index + 1 == rounds && rng.chance(0.6) {
                Some(if rng.chance(0.7) {
                    TamperSpec::FlipBit {
                        region: MetaRegion::ALL[rng.next_below(5) as usize],
                        pick: rng.next_u64(),
                        bit: rng.next_below(512) as u32,
                    }
                // Short-circuit keeps the banks=1 rng stream — and thus
                // every generated single-bank scenario — bit-identical.
                } else if config.banks > 1 && rng.chance(0.5) {
                    TamperSpec::TornBank {
                        bank: rng.next_below(config.banks as u64) as usize,
                        drop: 1 + rng.next_below(3) as usize,
                    }
                } else {
                    TamperSpec::TornDump {
                        drop: 1 + rng.next_below(3) as usize,
                    }
                })
            } else {
                None
            };
            out.push(VerifyRound {
                txns,
                fault,
                quiesce,
                nested,
                tamper,
            });
        }
        Self {
            seed,
            keyspace: config.keyspace.max(1),
            banks: config.banks.max(1),
            rounds: out,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={};keys={}", self.seed, self.keyspace)?;
        if self.banks != 1 {
            write!(f, ";banks={}", self.banks)?;
        }
        f.write_str(";[")?;
        for (i, round) in self.rounds.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "t{}", round.txns)?;
            if let Some((point, nth)) = round.fault {
                write!(f, "@{}#{nth}", point.name())?;
            }
            if round.quiesce {
                f.write_str("+q")?;
            }
            if let Some(nth) = round.nested {
                write!(f, "+n#{nth}")?;
            }
            match round.tamper {
                Some(TamperSpec::FlipBit { region, pick, bit }) => {
                    write!(f, "+flip({},{pick},{bit})", region.name())?;
                }
                Some(TamperSpec::TornDump { drop }) => write!(f, "+torn({drop})")?,
                Some(TamperSpec::TornBank { bank, drop }) => write!(f, "+tornb({bank},{drop})")?,
                None => {}
            }
        }
        f.write_str("]")
    }
}

/// Error parsing a rendered scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    reason: String,
}

impl ParseScenarioError {
    fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseScenarioError {}

fn parse_cut_point(name: &str) -> Result<InjectionPoint, ParseScenarioError> {
    CUT_POINTS
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| ParseScenarioError::new(format!("not a scheme-independent cut: {name}")))
}

fn parse_region(name: &str) -> Result<MetaRegion, ParseScenarioError> {
    MetaRegion::ALL
        .into_iter()
        .find(|r| r.name() == name)
        .ok_or_else(|| ParseScenarioError::new(format!("unknown region: {name}")))
}

fn parse_num<T: FromStr>(text: &str, what: &str) -> Result<T, ParseScenarioError> {
    text.parse()
        .map_err(|_| ParseScenarioError::new(format!("bad {what}: {text:?}")))
}

fn parse_round(text: &str) -> Result<VerifyRound, ParseScenarioError> {
    let mut tokens = text.split('+');
    let head = tokens
        .next()
        .ok_or_else(|| ParseScenarioError::new("empty round"))?;
    let head = head
        .strip_prefix('t')
        .ok_or_else(|| ParseScenarioError::new(format!("round must start with t<N>: {text:?}")))?;
    let (txns, fault) = match head.split_once('@') {
        Some((txns, cut)) => {
            let (point, nth) = cut
                .split_once('#')
                .ok_or_else(|| ParseScenarioError::new(format!("cut needs #nth: {cut:?}")))?;
            (
                parse_num(txns, "txns")?,
                Some((parse_cut_point(point)?, parse_num(nth, "occurrence")?)),
            )
        }
        None => (parse_num(head, "txns")?, None),
    };
    let mut round = VerifyRound {
        txns,
        fault,
        quiesce: false,
        nested: None,
        tamper: None,
    };
    for token in tokens {
        if token == "q" {
            round.quiesce = true;
        } else if let Some(nth) = token.strip_prefix("n#") {
            round.nested = Some(parse_num(nth, "nested occurrence")?);
        } else if let Some(args) = token
            .strip_prefix("flip(")
            .and_then(|t| t.strip_suffix(')'))
        {
            let mut parts = args.split(',');
            let region = parse_region(parts.next().unwrap_or_default())?;
            let pick = parse_num(parts.next().unwrap_or_default(), "pick")?;
            let bit = parse_num(parts.next().unwrap_or_default(), "bit")?;
            if parts.next().is_some() {
                return Err(ParseScenarioError::new("flip takes three arguments"));
            }
            round.tamper = Some(TamperSpec::FlipBit { region, pick, bit });
        } else if let Some(args) = token
            .strip_prefix("tornb(")
            .and_then(|t| t.strip_suffix(')'))
        {
            let (bank, drop) = args
                .split_once(',')
                .ok_or_else(|| ParseScenarioError::new("tornb takes two arguments"))?;
            round.tamper = Some(TamperSpec::TornBank {
                bank: parse_num(bank, "tornb bank")?,
                drop: parse_num(drop, "tornb drop count")?,
            });
        } else if let Some(drop) = token
            .strip_prefix("torn(")
            .and_then(|t| t.strip_suffix(')'))
        {
            round.tamper = Some(TamperSpec::TornDump {
                drop: parse_num(drop, "torn drop count")?,
            });
        } else {
            return Err(ParseScenarioError::new(format!("unknown token: {token:?}")));
        }
    }
    Ok(round)
}

impl FromStr for Scenario {
    type Err = ParseScenarioError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let text = text.trim();
        let rest = text
            .strip_prefix("seed=")
            .ok_or_else(|| ParseScenarioError::new("expected seed=<N>"))?;
        let (seed, rest) = rest
            .split_once(";keys=")
            .ok_or_else(|| ParseScenarioError::new("expected ;keys=<N>"))?;
        let (head, rounds) = rest
            .split_once(";[")
            .ok_or_else(|| ParseScenarioError::new("expected ;[rounds]"))?;
        // Optional bank token between the keyspace and the round list; its
        // absence means the single-bank model.
        let (keys, banks) = match head.split_once(";banks=") {
            Some((keys, banks)) => (keys, parse_num(banks, "banks")?),
            None => (head, 1),
        };
        let rounds = rounds
            .strip_suffix(']')
            .ok_or_else(|| ParseScenarioError::new("unterminated round list"))?;
        let mut parsed = Vec::new();
        for part in rounds.split(';') {
            if part.is_empty() {
                continue;
            }
            parsed.push(parse_round(part)?);
        }
        if parsed.is_empty() {
            return Err(ParseScenarioError::new("scenario needs at least one round"));
        }
        Ok(Scenario {
            seed: parse_num(seed, "seed")?,
            keyspace: parse_num(keys, "keyspace")?,
            banks,
            rounds: parsed,
        })
    }
}

impl Shrinkable for Scenario {
    fn candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Bank-dependent failures should first prove they need the banking:
        // collapsing to the single-queue model is the most aggressive
        // simplification of all.
        if self.banks > 1 {
            let mut s = self.clone();
            s.banks = 1;
            out.push(s);
        }
        if self.rounds.len() > 1 {
            for i in 0..self.rounds.len() {
                let mut s = self.clone();
                s.rounds.remove(i);
                out.push(s);
            }
        }
        for i in 0..self.rounds.len() {
            let round = &self.rounds[i];
            if round.txns > 1 {
                let mut s = self.clone();
                s.rounds[i].txns = round.txns / 2;
                out.push(s);
            }
            if round.nested.is_some() {
                let mut s = self.clone();
                s.rounds[i].nested = None;
                out.push(s);
            }
            if round.quiesce {
                let mut s = self.clone();
                s.rounds[i].quiesce = false;
                out.push(s);
            }
            if round.tamper.is_some() {
                let mut s = self.clone();
                s.rounds[i].tamper = None;
                out.push(s);
            }
            // Mirror dolos-chaos: a per-bank tear degrades to the
            // whole-dump tear, then toward bank 0 and fewer dropped lines.
            if let Some(TamperSpec::TornBank { bank, drop }) = round.tamper {
                let mut s = self.clone();
                s.rounds[i].tamper = Some(TamperSpec::TornDump { drop });
                out.push(s);
                if bank > 0 {
                    let mut s = self.clone();
                    s.rounds[i].tamper = Some(TamperSpec::TornBank { bank: 0, drop });
                    out.push(s);
                }
                if drop > 1 {
                    let mut s = self.clone();
                    s.rounds[i].tamper = Some(TamperSpec::TornBank {
                        bank,
                        drop: drop / 2,
                    });
                    out.push(s);
                }
            }
            if round.fault.is_some() {
                let mut s = self.clone();
                s.rounds[i].fault = None;
                out.push(s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = ScenarioConfig::default();
        assert_eq!(
            Scenario::generate(9, &config),
            Scenario::generate(9, &config)
        );
        assert_ne!(
            Scenario::generate(9, &config),
            Scenario::generate(10, &config)
        );
    }

    #[test]
    fn generated_faults_use_only_scheme_independent_cuts() {
        let config = ScenarioConfig {
            rounds: 4,
            ..ScenarioConfig::default()
        };
        for seed in 0..200 {
            let scenario = Scenario::generate(seed, &config);
            for round in &scenario.rounds {
                if let Some((point, _)) = round.fault {
                    assert!(CUT_POINTS.contains(&point), "{point:?}");
                }
            }
            // Tamper only on the final round.
            for round in &scenario.rounds[..scenario.rounds.len() - 1] {
                assert!(round.tamper.is_none());
            }
        }
    }

    #[test]
    fn rendering_round_trips() {
        let config = ScenarioConfig {
            rounds: 3,
            ..ScenarioConfig::default()
        };
        for seed in 0..300 {
            let scenario = Scenario::generate(seed, &config);
            let text = scenario.to_string();
            let parsed: Scenario = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, scenario, "{text}");
        }
    }

    #[test]
    fn parser_rejects_scheme_dependent_cuts_and_garbage() {
        assert!("seed=1;keys=8;[t4@misu-protect#0]"
            .parse::<Scenario>()
            .is_err());
        assert!("seed=1;keys=8;[t4@masu-drain#2]"
            .parse::<Scenario>()
            .is_err());
        assert!("seed=1;keys=8;[]".parse::<Scenario>().is_err());
        assert!("seed=x;keys=8;[t4]".parse::<Scenario>().is_err());
        assert!("seed=1;keys=8;[w4]".parse::<Scenario>().is_err());
        assert!("seed=1;keys=8;[t4+flip(data,1)]"
            .parse::<Scenario>()
            .is_err());
        assert!("seed=1;keys=8;[t4".parse::<Scenario>().is_err());
    }

    #[test]
    fn fixed_rendering_is_pinned() {
        let scenario = Scenario {
            seed: 7,
            keyspace: 32,
            banks: 1,
            rounds: vec![
                VerifyRound {
                    txns: 4,
                    fault: Some((InjectionPoint::WpqInsert, 9)),
                    quiesce: true,
                    nested: Some(1),
                    tamper: None,
                },
                VerifyRound {
                    txns: 2,
                    fault: None,
                    quiesce: false,
                    nested: None,
                    tamper: Some(TamperSpec::FlipBit {
                        region: MetaRegion::Data,
                        pick: 0,
                        bit: 9,
                    }),
                },
            ],
        };
        let text = scenario.to_string();
        assert_eq!(
            text,
            "seed=7;keys=32;[t4@wpq-insert#9+q+n#1;t2+flip(data,0,9)]"
        );
        assert_eq!(text.parse::<Scenario>().ok(), Some(scenario));
    }

    #[test]
    fn banked_rendering_is_pinned_and_round_trips() {
        let scenario = Scenario {
            seed: 5,
            keyspace: 16,
            banks: 4,
            rounds: vec![VerifyRound {
                txns: 3,
                fault: Some((InjectionPoint::WpqInsert, 2)),
                quiesce: false,
                nested: None,
                tamper: Some(TamperSpec::TornBank { bank: 2, drop: 1 }),
            }],
        };
        let text = scenario.to_string();
        assert_eq!(text, "seed=5;keys=16;banks=4;[t3@wpq-insert#2+tornb(2,1)]");
        assert_eq!(text.parse::<Scenario>().ok(), Some(scenario));
    }

    #[test]
    fn banked_generation_round_trips_and_single_bank_is_unchanged() {
        let banked = ScenarioConfig {
            rounds: 3,
            banks: 4,
            ..ScenarioConfig::default()
        };
        let mut torn_banks = 0;
        for seed in 0..300 {
            let scenario = Scenario::generate(seed, &banked);
            assert_eq!(scenario.banks, 4);
            let text = scenario.to_string();
            let parsed: Scenario = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, scenario, "{text}");
            if let Some(TamperSpec::TornBank { bank, .. }) =
                scenario.rounds.last().and_then(|r| r.tamper)
            {
                assert!(bank < 4, "{text}");
                torn_banks += 1;
            }
        }
        assert!(torn_banks > 0, "banked sweeps must schedule per-bank tears");
        // Single-bank generation never schedules the banked tamper class
        // and renders without the banks token, so pre-bank scenario strings
        // and campaign reports are byte-for-byte reproducible.
        let single = ScenarioConfig {
            rounds: 3,
            ..ScenarioConfig::default()
        };
        for seed in 0..300 {
            let scenario = Scenario::generate(seed, &single);
            assert_eq!(scenario.banks, 1);
            assert!(!scenario.to_string().contains("banks="));
            for round in &scenario.rounds {
                assert!(!matches!(round.tamper, Some(TamperSpec::TornBank { .. })));
            }
        }
    }

    #[test]
    fn parser_rejects_malformed_bank_tokens() {
        assert!("seed=1;keys=8;banks=x;[t4]".parse::<Scenario>().is_err());
        assert!("seed=1;keys=8;[t4+tornb(1)]".parse::<Scenario>().is_err());
        assert!("seed=1;keys=8;[t4+tornb(a,1)]".parse::<Scenario>().is_err());
    }

    #[test]
    fn shrink_collapses_banks_and_per_bank_tears_first() {
        let scenario = Scenario {
            seed: 1,
            keyspace: 8,
            banks: 4,
            rounds: vec![VerifyRound {
                txns: 2,
                fault: None,
                quiesce: false,
                nested: None,
                tamper: Some(TamperSpec::TornBank { bank: 3, drop: 2 }),
            }],
        };
        let candidates = scenario.candidates();
        assert_eq!(candidates[0].banks, 1, "banks collapse first");
        assert!(candidates
            .iter()
            .any(|c| matches!(c.rounds[0].tamper, Some(TamperSpec::TornDump { drop: 2 }))));
        assert!(candidates.iter().any(|c| matches!(
            c.rounds[0].tamper,
            Some(TamperSpec::TornBank { bank: 0, drop: 2 })
        )));
        assert!(candidates.iter().any(|c| matches!(
            c.rounds[0].tamper,
            Some(TamperSpec::TornBank { bank: 3, drop: 1 })
        )));
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let scenario = Scenario::generate(3, &ScenarioConfig::default());
        let weight = |s: &Scenario| {
            s.rounds
                .iter()
                .map(|r| {
                    r.txns * 16
                        + usize::from(r.fault.is_some())
                        + usize::from(r.quiesce)
                        + usize::from(r.nested.is_some())
                        + usize::from(r.tamper.is_some())
                })
                .sum::<usize>()
        };
        for candidate in scenario.candidates() {
            assert!(weight(&candidate) < weight(&scenario));
        }
    }
}
