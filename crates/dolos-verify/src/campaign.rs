//! Conformance campaigns: the differential sweep plus the metamorphic
//! invariants, rendered as a matrix and a JSON report.
//!
//! A campaign runs `traces` generated scenarios — each one replayed on all
//! five schemes against the shared oracle — and, independently of any
//! scenario, probes the metamorphic invariants the paper's design space
//! implies:
//!
//! * **latency ordering** — the minimum critical-path persist latency on a
//!   fresh system must order Post ≤ Partial ≤ Full ≤ eager baseline (and
//!   the non-secure reference below them all);
//! * **WPQ capacity** — a same-cycle distinct-address burst must accept
//!   exactly `usable_wpq_entries()` writes before the first retry
//!   (16/13/10 for the Dolos variants at 16 physical entries);
//! * **security transparency** — enabling protection never changes data
//!   semantics; this is the differential sweep itself (every secure scheme
//!   is held to the same plaintext oracle as the non-secure reference).
//!
//! Determinism mirrors the chaos campaign: scenario seeds are pre-derived,
//! cells are claimed from [`dolos_sim::pool`]'s shared index queue into
//! index-addressed result slots, and the merge is canonical — the report
//! (and its JSON) is byte-identical at any `--jobs` value, whichever worker
//! steals which cell. The first failing scenario is shrunk in its worker to
//! a minimal replayable reproducer.

use dolos_chaos::shrink_with;
use dolos_core::{ControllerConfig, ControllerKind, SecureMemorySystem};
use dolos_sim::rng::XorShift;
use dolos_sim::table::Table;
use dolos_sim::Cycle;

use crate::engine::{run_scenario, verify_schemes, ScenarioVerdict};
use crate::scenario::{Scenario, ScenarioConfig};

/// Campaign geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Master seed; every scenario seed derives from it.
    pub seed: u64,
    /// Scenarios to sweep (each runs all five schemes).
    pub traces: usize,
    /// Crash rounds per scenario.
    pub rounds: usize,
    /// Maximum transactions per round.
    pub txns_per_round: usize,
    /// Data keyspace in lines.
    pub keyspace: u64,
    /// Whether final rounds may tamper with NVM while crashed.
    pub tamper: bool,
    /// NVM bank count every scheme runs with (power of two). The default
    /// `1` reproduces the single-queue campaign byte for byte; higher
    /// counts additionally schedule per-bank torn-dump tampers.
    pub banks: usize,
    /// Worker threads (0 = auto). Any value produces the identical report,
    /// byte for byte.
    pub jobs: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            traces: 256,
            rounds: 2,
            txns_per_round: 6,
            keyspace: 32,
            tamper: true,
            banks: 1,
            jobs: 1,
        }
    }
}

impl VerifyConfig {
    fn scenario_config(&self) -> ScenarioConfig {
        ScenarioConfig {
            rounds: self.rounds,
            txns_per_round: self.txns_per_round,
            keyspace: self.keyspace,
            tamper: self.tamper,
            banks: self.banks,
        }
    }
}

/// A minimal replayable reproducer for a failed obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureCase {
    /// The shrunk failing scenario, rendered (feed to `dolos-verify replay`).
    pub scenario: String,
    /// The violated obligation.
    pub message: String,
}

/// One scheme's aggregate over the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeSummary {
    /// Scheme name.
    pub scheme: &'static str,
    /// Scenarios in which this scheme met every obligation.
    pub scenarios_passed: usize,
    /// Scenarios in which it diverged from the oracle.
    pub scenarios_failed: usize,
    /// Tamper rounds ending in detection.
    pub tampers_detected: usize,
    /// Tamper rounds that went undetected but verifiably hit dead state.
    pub tampers_harmless: usize,
    /// Non-secure reference only: absorbed (recorded) corruptions.
    pub tampers_absorbed: usize,
    /// Acknowledged persists across all scenarios.
    pub commits: u64,
    /// Reads checked against the oracle.
    pub reads_checked: u64,
    /// Recovered-state lines checked against the oracle.
    pub lines_checked: u64,
    /// First divergence, shrunk to a minimal reproducer.
    pub first_failure: Option<FailureCase>,
}

/// One scheme's row of the metamorphic probe matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetamorphicRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Minimum critical-path persist latency on a fresh system (cycles).
    pub latency_min: u64,
    /// Writes accepted by a same-cycle burst before the first retry.
    pub capacity: usize,
    /// The configuration's claimed usable WPQ entries.
    pub usable: usize,
}

impl MetamorphicRow {
    /// Whether the burst-capacity probe satisfies this scheme's invariant.
    ///
    /// For ideal and the Dolos variants the probe must equal the usable
    /// queue exactly. The eager baseline is only bounded from below: it
    /// secures every write *before* the WPQ on the multi-thousand-cycle
    /// Ma-SU pipeline while accepted entries drain at device speed, so
    /// its queue never backs up in a burst — the paper's motivating
    /// observation.
    pub fn capacity_holds(&self) -> bool {
        if self.scheme == "pre-wpq-secure" {
            self.capacity >= self.usable
        } else {
            self.capacity == self.usable
        }
    }
}

/// The metamorphic invariant checks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetamorphicReport {
    /// Per-scheme probe results, in [`verify_schemes`] order.
    pub rows: Vec<MetamorphicRow>,
    /// Violated invariants (empty when all hold).
    pub violations: Vec<String>,
}

impl MetamorphicReport {
    /// Whether every invariant held.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Full campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The master seed.
    pub seed: u64,
    /// Scenarios swept.
    pub traces: usize,
    /// Per-scheme aggregates, in [`verify_schemes`] order.
    pub schemes: Vec<SchemeSummary>,
    /// Cross-scheme divergences (schemes disagreeing with each other), with
    /// minimal reproducers.
    pub cross_failures: Vec<FailureCase>,
    /// The metamorphic invariant checks.
    pub metamorphic: MetamorphicReport,
}

impl VerifyReport {
    /// Whether every scheme conformed, all schemes agreed, and every
    /// metamorphic invariant held.
    pub fn all_pass(&self) -> bool {
        self.cross_failures.is_empty()
            && self.metamorphic.pass()
            && self.schemes.iter().all(|s| s.scenarios_failed == 0)
    }

    /// Renders the conformance matrix.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            &format!(
                "conformance matrix (seed {}, {} traces)",
                self.seed, self.traces
            ),
            &[
                "scheme",
                "scenarios",
                "detected",
                "harmless",
                "absorbed",
                "commits",
                "reads",
                "lines",
                "verdict",
            ],
        );
        for s in &self.schemes {
            table.row(vec![
                s.scheme.to_string(),
                format!(
                    "{}/{}",
                    s.scenarios_passed,
                    s.scenarios_passed + s.scenarios_failed
                ),
                s.tampers_detected.to_string(),
                s.tampers_harmless.to_string(),
                s.tampers_absorbed.to_string(),
                s.commits.to_string(),
                s.reads_checked.to_string(),
                s.lines_checked.to_string(),
                if s.scenarios_failed == 0 {
                    "PASS"
                } else {
                    "FAIL"
                }
                .to_string(),
            ]);
        }
        table
    }

    /// Renders the metamorphic probe matrix.
    pub fn metamorphic_table(&self) -> Table {
        let mut table = Table::new(
            "metamorphic invariants",
            &[
                "scheme",
                "min persist (cyc)",
                "burst capacity",
                "usable wpq",
                "verdict",
            ],
        );
        for row in &self.metamorphic.rows {
            table.row(vec![
                row.scheme.to_string(),
                row.latency_min.to_string(),
                row.capacity.to_string(),
                row.usable.to_string(),
                if row.capacity_holds() { "PASS" } else { "FAIL" }.to_string(),
            ]);
        }
        table
    }

    /// Serializes the report as JSON (hand-rolled: the workspace is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn failure_json(f: &FailureCase) -> String {
            format!(
                "{{\"scenario\": \"{}\", \"message\": \"{}\"}}",
                escape(&f.scenario),
                escape(&f.message)
            )
        }
        let mut json = String::new();
        json.push_str(&format!(
            "{{\n  \"seed\": {},\n  \"traces\": {},\n  \"all_pass\": {},\n  \"schemes\": [\n",
            self.seed,
            self.traces,
            self.all_pass()
        ));
        for (i, s) in self.schemes.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"pass\": {}, \"scenarios_passed\": {}, \
                 \"scenarios_failed\": {}, \"tampers_detected\": {}, \"tampers_harmless\": {}, \
                 \"tampers_absorbed\": {}, \"commits\": {}, \"reads_checked\": {}, \
                 \"lines_checked\": {}",
                escape(s.scheme),
                s.scenarios_failed == 0,
                s.scenarios_passed,
                s.scenarios_failed,
                s.tampers_detected,
                s.tampers_harmless,
                s.tampers_absorbed,
                s.commits,
                s.reads_checked,
                s.lines_checked,
            ));
            if let Some(f) = &s.first_failure {
                json.push_str(&format!(", \"failure\": {}", failure_json(f)));
            }
            json.push('}');
            if i + 1 < self.schemes.len() {
                json.push(',');
            }
            json.push('\n');
        }
        json.push_str("  ],\n  \"cross_failures\": [");
        for (i, f) in self.cross_failures.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&failure_json(f));
        }
        json.push_str("],\n  \"metamorphic\": {\n    \"rows\": [\n");
        for (i, row) in self.metamorphic.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"scheme\": \"{}\", \"latency_min\": {}, \"capacity\": {}, \"usable\": {}}}",
                escape(row.scheme),
                row.latency_min,
                row.capacity,
                row.usable
            ));
            if i + 1 < self.metamorphic.rows.len() {
                json.push(',');
            }
            json.push('\n');
        }
        json.push_str("    ],\n    \"violations\": [");
        for (i, v) in self.metamorphic.violations.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{}\"", escape(v)));
        }
        json.push_str("]\n  }\n}\n");
        json
    }
}

/// Minimum critical-path persist latency observed on a fresh system.
fn fresh_latency_probe(config: &ControllerConfig) -> u64 {
    let mut sys = SecureMemorySystem::new(config.clone());
    sys.persist_write(Cycle::ZERO, 0, &[0x5A; 64]);
    sys.persist_latency_min().unwrap_or(0)
}

/// Writes accepted by a same-cycle distinct-address burst before the first
/// WPQ-insertion retry.
///
/// The burst is issued at cycle zero, but each accepted insert still
/// advances the drain engine to its own completion time — with Table-1
/// MAC latencies a 16-write Full burst spans 5 120 cycles, long enough
/// for the first drains to finish and free slots. The probe therefore
/// bends the latency model at both ends: the MAC latency collapses to
/// one cycle so the insert window shrinks to two cycles per write, and
/// the Ma-SU AES latency inflates so no accepted drain can complete
/// inside any burst. Both are needed — banking multiplies the burst
/// length (`8 × 16` Full writes span ~258 cycles even at MAC = 1, past
/// the counter-hit drain path), so collapsing the insert side alone lets
/// slots free mid-burst and overcounts. The Mi-SU front end XORs
/// pregenerated pads and never reads the AES latency, so insert timing
/// is untouched. The one exemption is the eager baseline: it runs the
/// full Ma-SU pipeline *before* the WPQ, so AES sits on its insert path
/// and the override would distort exactly what the row reports — it
/// keeps the stock AES latency, which is sound because its capacity
/// invariant is only a lower bound. Queue capacity itself is structural
/// ([`ControllerConfig::usable_wpq_entries`] never reads the latency
/// model), so the overrides do not perturb what is measured.
///
/// Public so capacity pins elsewhere (the root `wpq_capacity` suite sweeps
/// it over bank counts) reuse this probe instead of duplicating it. The
/// burst bound scales with [`ControllerConfig::total_physical_wpq_entries`],
/// so banked configurations saturate every shard: the probe's distinct
/// line addresses stripe across all banks and the count converges to
/// `banks ×` the per-bank usable depth.
pub fn capacity_probe(config: &ControllerConfig) -> usize {
    let mut probe = config.clone().with_mac_latency(1);
    if !matches!(probe.kind, ControllerKind::PreWpqSecure) {
        probe = probe.with_aes_latency(1 << 30);
    }
    let mut sys = SecureMemorySystem::new(probe);
    let mut accepted = 0;
    for i in 0..(config.total_physical_wpq_entries() as u64 * 4) {
        sys.persist_write(Cycle::ZERO, i * 64, &[0xA5; 64]);
        if sys.retries() > 0 {
            break;
        }
        accepted += 1;
    }
    accepted
}

/// Runs the metamorphic probes over every scheme.
pub fn run_metamorphic() -> MetamorphicReport {
    let schemes = verify_schemes();
    let rows: Vec<MetamorphicRow> = schemes
        .iter()
        .map(|config| MetamorphicRow {
            scheme: config.kind.name(),
            latency_min: fresh_latency_probe(config),
            capacity: capacity_probe(config),
            usable: config.usable_wpq_entries(),
        })
        .collect();
    let mut violations = Vec::new();
    let get = |name: &str| rows.iter().find(|r| r.scheme == name);
    // Latency ordering: ideal ≤ post ≤ partial ≤ full ≤ baseline.
    let order = [
        "ideal",
        "dolos-post",
        "dolos-partial",
        "dolos-full",
        "pre-wpq-secure",
    ];
    for pair in order.windows(2) {
        if let (Some(a), Some(b)) = (get(pair[0]), get(pair[1])) {
            if a.latency_min > b.latency_min {
                violations.push(format!(
                    "latency ordering violated: {} ({} cyc) > {} ({} cyc)",
                    a.scheme, a.latency_min, b.scheme, b.latency_min
                ));
            }
        }
    }
    // Capacity: the behavioral probe must match the configured usable queue
    // (16/13/10 for the Dolos variants, 16 for ideal), with the eager
    // baseline only bounded from below — see
    // [`MetamorphicRow::capacity_holds`] for the rationale.
    for row in &rows {
        if !row.capacity_holds() {
            violations.push(format!(
                "{} burst capacity {} violates usable wpq entries {}",
                row.scheme, row.capacity, row.usable
            ));
        }
    }
    MetamorphicReport { rows, violations }
}

/// The outcome of one scenario cell, carrying everything the merge needs.
struct CellOutcome {
    verdict: ScenarioVerdict,
    /// Already-shrunk reproducer when the scenario failed (shrinking in the
    /// worker keeps the expensive part parallel).
    failure: Option<FailureCase>,
}

fn run_cell(scenario_config: &ScenarioConfig, seed: u64) -> CellOutcome {
    let scenario = Scenario::generate(seed, scenario_config);
    let verdict = run_scenario(&scenario);
    let failure = if verdict.pass() {
        None
    } else {
        let minimal = shrink_with(&scenario, |s| !run_scenario(s).pass());
        let message = run_scenario(&minimal)
            .first_failure()
            .unwrap_or_else(|| "unreproducible divergence".to_string());
        Some(FailureCase {
            scenario: minimal.to_string(),
            message,
        })
    };
    CellOutcome { verdict, failure }
}

/// Runs the full campaign. Deterministic: the same config always produces
/// the same report, byte for byte, at any `jobs` value.
pub fn run_verify(config: &VerifyConfig) -> VerifyReport {
    let scenario_config = config.scenario_config();
    let mut seeder = XorShift::new(config.seed ^ 0xD1FF_CA05);
    let seeds: Vec<u64> = (0..config.traces).map(|_| seeder.next_u64()).collect();

    let outcomes = dolos_sim::pool::run_indexed(config.jobs, &seeds, |_, &seed| {
        run_cell(&scenario_config, seed)
    });

    let schemes = verify_schemes();
    let mut summaries: Vec<SchemeSummary> = schemes
        .iter()
        .map(|c| SchemeSummary {
            scheme: c.kind.name(),
            scenarios_passed: 0,
            scenarios_failed: 0,
            tampers_detected: 0,
            tampers_harmless: 0,
            tampers_absorbed: 0,
            commits: 0,
            reads_checked: 0,
            lines_checked: 0,
            first_failure: None,
        })
        .collect();
    let mut cross_failures = Vec::new();

    for outcome in &outcomes {
        for (summary, obs) in summaries.iter_mut().zip(&outcome.verdict.observations) {
            if obs.pass() {
                summary.scenarios_passed += 1;
            } else {
                summary.scenarios_failed += 1;
                if summary.first_failure.is_none() {
                    summary.first_failure = outcome.failure.clone();
                }
            }
            summary.tampers_detected += usize::from(obs.tamper_detected);
            summary.tampers_harmless += usize::from(obs.tamper_harmless);
            summary.tampers_absorbed += usize::from(obs.tamper_absorbed);
            summary.commits += obs.commits;
            summary.reads_checked += obs.reads_checked;
            summary.lines_checked += obs.lines_checked;
        }
        if !outcome.verdict.cross_failures.is_empty() {
            if let Some(failure) = &outcome.failure {
                cross_failures.push(failure.clone());
            }
        }
    }

    VerifyReport {
        seed: config.seed,
        traces: config.traces,
        schemes: summaries,
        cross_failures,
        metamorphic: run_metamorphic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VerifyConfig {
        VerifyConfig {
            seed: 42,
            traces: 6,
            rounds: 2,
            txns_per_round: 4,
            keyspace: 24,
            tamper: true,
            banks: 1,
            jobs: 1,
        }
    }

    #[test]
    fn small_campaign_passes_everywhere() {
        let report = run_verify(&small());
        assert!(report.all_pass(), "{:?}", report);
        assert_eq!(report.schemes.len(), 5);
        for s in &report.schemes {
            assert_eq!(s.scenarios_failed, 0, "{}: {:?}", s.scheme, s.first_failure);
            assert!(s.commits > 0);
        }
    }

    #[test]
    fn campaigns_are_byte_for_byte_reproducible() {
        let a = run_verify(&small());
        let b = run_verify(&small());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let serial = run_verify(&small());
        let serial_json = serial.to_json();
        for jobs in [0usize, 2, 3, 16] {
            let parallel = run_verify(&VerifyConfig { jobs, ..small() });
            assert_eq!(serial, parallel, "jobs={jobs} changed the report");
            assert_eq!(
                serial_json,
                parallel.to_json(),
                "jobs={jobs} changed the JSON bytes"
            );
        }
    }

    #[test]
    fn metamorphic_invariants_hold_and_pin_the_paper_numbers() {
        let report = run_metamorphic();
        assert!(report.pass(), "{:?}", report.violations);
        let get = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.scheme == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
        };
        assert_eq!(get("dolos-full").capacity, 16);
        assert_eq!(get("dolos-partial").capacity, 13);
        assert_eq!(get("dolos-post").capacity, 10);
        assert_eq!(get("ideal").capacity, 16);
        // The eager baseline's queue never backs up in a burst (security
        // serializes before the WPQ); the probe only bounds it from below.
        assert!(get("pre-wpq-secure").capacity >= 16);
        assert_eq!(get("dolos-full").latency_min, 320);
        assert_eq!(get("dolos-partial").latency_min, 160);
        assert_eq!(get("dolos-post").latency_min, 0);
        assert_eq!(get("ideal").latency_min, 0);
        assert!(get("pre-wpq-secure").latency_min >= 2890);
    }

    #[test]
    fn json_is_well_formed_and_spot_checkable() {
        let json = run_verify(&VerifyConfig {
            traces: 2,
            ..small()
        })
        .to_json();
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"scheme\": \"dolos-partial\""));
        assert!(json.contains("\"metamorphic\""));
        assert!(json.ends_with("}\n"));
        crate::test_support::assert_json_parses(&json);
    }

    #[test]
    fn json_escapes_hostile_failure_text() {
        let report = VerifyReport {
            seed: 7,
            traces: 1,
            schemes: vec![SchemeSummary {
                scheme: "dolos-post",
                scenarios_passed: 0,
                scenarios_failed: 1,
                tampers_detected: 0,
                tampers_harmless: 0,
                tampers_absorbed: 0,
                commits: 3,
                reads_checked: 1,
                lines_checked: 9,
                first_failure: Some(FailureCase {
                    scenario: "seed=1;keys=8;[t1]".to_string(),
                    message: "mismatch \"x\" \\ \nline2\ttab\u{1}end".to_string(),
                }),
            }],
            cross_failures: vec![FailureCase {
                scenario: "seed=2;keys=8;[t1]".to_string(),
                message: "cut \"here\"\r".to_string(),
            }],
            metamorphic: MetamorphicReport::default(),
        };
        let json = report.to_json();
        crate::test_support::assert_json_parses(&json);
        assert!(json.contains("\\n"));
        assert!(json.contains("\\t"));
        assert!(json.contains("\\r"));
        assert!(json.contains("\\u0001"));
    }
}
