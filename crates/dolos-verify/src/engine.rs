//! The differential engine: one scenario, every scheme, one shared oracle.
//!
//! A scenario's operation stream is precomputed once — addresses from the
//! [`dolos_whisper::gen`] transaction generator, payloads baked from a
//! seeded stream — and then replayed against each scheme. Alongside every
//! replay the engine maintains a pure reference model (a plaintext map of
//! acknowledged writes): a persist call that returns `Ok` commits into the
//! model; a call interrupted at `wpq-insert` committed in hardware (the
//! ADR domain accepted the line) and commits too; a call interrupted at
//! `persist-start` is lost. Every read during the stream and every line of
//! post-crash recovered state is checked against the model, so
//!
//! * **semantic conformance** is "zero divergences against the model", and
//! * **cross-scheme identity** reduces to every scheme acknowledging the
//!   same persist prefix — checked by comparing the rendered fault-firing
//!   positions and commit counts across schemes.
//!
//! Tamper rounds are terminal and carry the chaos obligations: a secure
//! scheme must detect the corruption or provably land in un-diverged
//! state; the non-secure reference has no detection duty — absorbed
//! corruption is recorded, not failed.

use std::collections::BTreeMap;

use dolos_chaos::{apply_tamper, TamperSpec};
use dolos_core::inject::{FaultPlan, InjectionPoint};
use dolos_core::{ControllerConfig, ControllerKind, MiSuKind, SecureMemorySystem, SecurityError};
use dolos_nvm::Line;
use dolos_secmem::layout::MetaRegion;
use dolos_sim::rng::XorShift;
use dolos_sim::Cycle;
use dolos_whisper::gen::{self, TraceGenConfig};
use dolos_whisper::trace::TraceOp;

use crate::scenario::Scenario;

/// The five schemes the conformance matrix sweeps, in report order: the
/// non-secure reference, the eager-BMT baseline, then the three Mi-SU
/// design options.
pub fn verify_schemes() -> [ControllerConfig; 5] {
    [
        ControllerConfig::ideal(),
        ControllerConfig::baseline(),
        ControllerConfig::dolos(MiSuKind::Full),
        ControllerConfig::dolos(MiSuKind::Partial),
        ControllerConfig::dolos(MiSuKind::Post),
    ]
}

/// One precomputed operation of the engine stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOp {
    /// Advance simulated time.
    Advance(u64),
    /// One fence batch of persist calls with baked payloads.
    Batch(Vec<(u64, Line)>),
    /// A background writeback (persists through the same path).
    Writeback(u64, Line),
    /// A demand read, checked against the model.
    Read(u64),
}

fn round_seed(seed: u64, round: usize) -> u64 {
    seed ^ (round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn bake_line(rng: &mut XorShift) -> Line {
    let mut data = [0u8; 64];
    for chunk in data.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    data
}

/// Precomputes one round's operation stream: generator addresses plus a
/// deterministic payload per persist call. Every scheme replays exactly
/// this vector.
pub fn build_round_ops(scenario: &Scenario, round: usize, txns: usize) -> Vec<EngineOp> {
    let seed = round_seed(scenario.seed, round);
    let gen_config = TraceGenConfig {
        txns,
        keyspace: scenario.keyspace,
        ..TraceGenConfig::default()
    };
    let trace = gen::generate(seed, &gen_config);
    let mut pay = XorShift::new(seed ^ 0x0BAD_F00D);
    let mut ops = Vec::with_capacity(trace.len());
    for op in trace.iter() {
        match op {
            TraceOp::Work(n) | TraceOp::Delay(n) => ops.push(EngineOp::Advance(*n)),
            TraceOp::PersistBatch(lines) => ops.push(EngineOp::Batch(
                lines
                    .iter()
                    .map(|&addr| (addr, bake_line(&mut pay)))
                    .collect(),
            )),
            TraceOp::Writeback(addr) => ops.push(EngineOp::Writeback(*addr, bake_line(&mut pay))),
            TraceOp::Read(addr) => ops.push(EngineOp::Read(*addr)),
        }
    }
    ops
}

/// Everything one scheme's replay of a scenario observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeObservation {
    /// Scheme name.
    pub scheme: &'static str,
    /// Divergences against the shared model (empty on a clean run).
    pub divergences: Vec<String>,
    /// Per-round fault firing, rendered as `point#persist-index` or `-`.
    /// Equal across schemes iff every scheme acknowledged the same persist
    /// prefix.
    pub fired: Vec<String>,
    /// Acknowledged (committed) persist calls.
    pub commits: u64,
    /// Reads checked against the model during the streams.
    pub reads_checked: u64,
    /// Recovered-state lines checked against the model after crashes.
    pub lines_checked: u64,
    /// A tamper round ended in detection (security property fired).
    pub tamper_detected: bool,
    /// A tamper was applied, went undetected, and the state still matched
    /// the model (corruption hit dead state).
    pub tamper_harmless: bool,
    /// Non-secure reference only: undetected corruption diverged the data
    /// and was absorbed. Recorded, never a failure for the reference.
    pub tamper_absorbed: bool,
}

impl SchemeObservation {
    /// Whether this scheme met every obligation.
    pub fn pass(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn zero_line() -> Line {
    [0u8; 64]
}

fn render_line_prefix(line: &Line) -> String {
    format!(
        "{:02x}{:02x}{:02x}{:02x}..",
        line[0], line[1], line[2], line[3]
    )
}

/// Replays `scenario` on one scheme, checking every obligation against the
/// shared model. Deterministic: equal inputs give equal observations.
pub fn run_scheme(config: &ControllerConfig, scenario: &Scenario) -> SchemeObservation {
    // The scenario's bank axis applies uniformly: every scheme replays the
    // stream on the same NVM geometry (banks=1 leaves the config untouched).
    let config = config.clone().with_banks(scenario.banks.max(1));
    let secure = !matches!(config.kind, ControllerKind::IdealNonSecure);
    let mut sys = SecureMemorySystem::new(config.clone());
    let layout = *sys.layout();
    let mut model: BTreeMap<u64, Line> = BTreeMap::new();
    let mut obs = SchemeObservation {
        scheme: config.kind.name(),
        divergences: Vec::new(),
        fired: Vec::new(),
        commits: 0,
        reads_checked: 0,
        lines_checked: 0,
        tamper_detected: false,
        tamper_harmless: false,
        tamper_absorbed: false,
    };

    for (index, round) in scenario.rounds.iter().enumerate() {
        let ops = build_round_ops(scenario, index, round.txns);

        // Stale-epoch snapshot for a scheduled torn dump, taken before this
        // round's crash overwrites the region.
        let dump_snapshot = if matches!(
            round.tamper,
            Some(TamperSpec::TornDump { .. } | TamperSpec::TornBank { .. })
        ) {
            let (start, end) = layout.region_range(MetaRegion::WpqDump);
            sys.nvm().snapshot_range(start, end)
        } else {
            Vec::new()
        };

        if let Some((point, nth)) = round.fault {
            sys.arm_fault(FaultPlan::new(point, nth));
        }
        let mut t = Cycle::ZERO;
        let mut persist_index: u64 = 0;
        let mut fired: Option<(InjectionPoint, u64)> = None;

        // One persist call; returns false when the stream must stop (the
        // armed fault fired or the call failed outright).
        let mut persist = |sys: &mut SecureMemorySystem,
                           t: &mut Cycle,
                           obs: &mut SchemeObservation,
                           model: &mut BTreeMap<u64, Line>,
                           addr: u64,
                           payload: Line|
         -> bool {
            match sys.try_persist_write(*t, addr, &payload) {
                Ok(done) => {
                    *t = done;
                    model.insert(addr, payload);
                    obs.commits += 1;
                    persist_index += 1;
                    true
                }
                Err(SecurityError::PowerInterrupted { point }) => {
                    // The insert-point fault fires after the ADR domain
                    // accepted the line: that persist is committed.
                    if point == InjectionPoint::WpqInsert {
                        model.insert(addr, payload);
                        obs.commits += 1;
                    }
                    fired = Some((point, persist_index));
                    false
                }
                Err(e) => {
                    obs.divergences
                        .push(format!("round {index}: persist failed: {e}"));
                    false
                }
            }
        };

        'stream: for op in &ops {
            match op {
                EngineOp::Advance(n) => t += *n,
                EngineOp::Batch(lines) => {
                    for &(addr, payload) in lines {
                        if !persist(&mut sys, &mut t, &mut obs, &mut model, addr, payload) {
                            break 'stream;
                        }
                    }
                }
                EngineOp::Writeback(addr, payload) => {
                    if !persist(&mut sys, &mut t, &mut obs, &mut model, *addr, *payload) {
                        break 'stream;
                    }
                }
                EngineOp::Read(addr) => {
                    let (done, data) = sys.read(t, *addr);
                    t = done;
                    obs.reads_checked += 1;
                    let expect = model.get(addr).copied().unwrap_or_else(zero_line);
                    if data != expect {
                        obs.divergences.push(format!(
                            "round {index}: read {addr:#x} returned {} want {}",
                            render_line_prefix(&data),
                            render_line_prefix(&expect)
                        ));
                    }
                }
            }
        }
        sys.disarm_fault();
        if !obs.divergences.is_empty() {
            return obs;
        }
        obs.fired.push(match fired {
            Some((point, i)) => format!("{}#{i}", point.name()),
            None => "-".to_string(),
        });

        if round.quiesce && !sys.is_crashed() {
            t = sys.quiesce(t);
        }
        if !sys.is_crashed() {
            sys.crash(t);
        }

        // --- adversarial window ---
        let tampered = match round.tamper {
            Some(spec) => apply_tamper(
                sys.nvm_mut(),
                &layout,
                spec,
                &dump_snapshot,
                config.usable_wpq_entries(),
            ),
            None => false,
        };

        // --- boot, retrying once on a scheduled nested crash ---
        if let Some(nth) = round.nested {
            sys.arm_fault(FaultPlan::new(InjectionPoint::RecoveryReplay, nth));
        }
        let mut recovery = sys.recover();
        if matches!(
            recovery,
            Err(SecurityError::PowerInterrupted {
                point: InjectionPoint::RecoveryReplay,
            })
        ) {
            recovery = sys.recover();
        }
        sys.disarm_fault();

        let detected = match recovery {
            Ok(_) => sys.audit().err(),
            Err(e) => Some(e),
        };
        if let Some(error) = detected {
            if tampered {
                obs.tamper_detected = true;
                return obs; // terminal: the machine refuses to come up
            }
            obs.divergences
                .push(format!("round {index}: spurious detection: {error}"));
            return obs;
        }

        // --- recovered state vs the model, line by line ---
        let mut diverged = false;
        for (&addr, expect) in &model {
            let (_, data) = sys.read(Cycle::ZERO, addr);
            obs.lines_checked += 1;
            if data != *expect {
                diverged = true;
                if tampered && !secure {
                    continue; // absorbed by the non-secure reference
                }
                obs.divergences.push(format!(
                    "round {index}: recovered {addr:#x} holds {} want {}{}",
                    render_line_prefix(&data),
                    render_line_prefix(expect),
                    if tampered { " (silent corruption)" } else { "" }
                ));
            }
        }
        if !obs.divergences.is_empty() {
            return obs;
        }
        if tampered {
            if diverged {
                obs.tamper_absorbed = true;
            } else {
                obs.tamper_harmless = true;
            }
            return obs; // tamper rounds are terminal
        }
    }
    obs
}

/// Verdict of one scenario across all schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioVerdict {
    /// The scenario, rendered (replayable).
    pub scenario: String,
    /// Per-scheme observations, in [`verify_schemes`] order.
    pub observations: Vec<SchemeObservation>,
    /// Cross-scheme divergences (fault cuts or commit counts that differ
    /// between schemes).
    pub cross_failures: Vec<String>,
}

impl ScenarioVerdict {
    /// Whether every scheme passed and all schemes agreed.
    pub fn pass(&self) -> bool {
        self.cross_failures.is_empty() && self.observations.iter().all(|o| o.pass())
    }

    /// The first failure message, if any.
    pub fn first_failure(&self) -> Option<String> {
        for obs in &self.observations {
            if let Some(d) = obs.divergences.first() {
                return Some(format!("{}: {d}", obs.scheme));
            }
        }
        self.cross_failures.first().cloned()
    }
}

/// Runs one scenario through every scheme and cross-checks the outcomes.
pub fn run_scenario(scenario: &Scenario) -> ScenarioVerdict {
    let schemes = verify_schemes();
    let observations: Vec<SchemeObservation> = schemes
        .iter()
        .map(|config| run_scheme(config, scenario))
        .collect();
    let mut cross_failures = Vec::new();
    let reference = &observations[0];
    for obs in &observations[1..] {
        // A detected tamper ends the run before its round's state checks,
        // so commit totals are only comparable when both runs completed
        // the same rounds; the fired cut positions are always comparable
        // over the rounds both executed.
        let rounds = obs.fired.len().min(reference.fired.len());
        if obs.fired[..rounds] != reference.fired[..rounds] {
            cross_failures.push(format!(
                "{} cut at [{}] but {} cut at [{}]",
                reference.scheme,
                reference.fired[..rounds].join(","),
                obs.scheme,
                obs.fired[..rounds].join(",")
            ));
        }
        if obs.fired.len() == reference.fired.len()
            && !obs.tamper_detected
            && !reference.tamper_detected
            && obs.commits != reference.commits
        {
            cross_failures.push(format!(
                "{} acknowledged {} persists but {} acknowledged {}",
                reference.scheme, reference.commits, obs.scheme, obs.commits
            ));
        }
    }
    ScenarioVerdict {
        scenario: scenario.to_string(),
        observations,
        cross_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn clean_scenarios_pass_on_every_scheme() {
        let config = ScenarioConfig {
            tamper: false,
            ..ScenarioConfig::default()
        };
        for seed in 0..8 {
            let scenario = Scenario::generate(seed, &config);
            let verdict = run_scenario(&scenario);
            assert!(
                verdict.pass(),
                "{}: {:?}",
                verdict.scenario,
                verdict.first_failure()
            );
            for obs in &verdict.observations {
                assert!(obs.commits > 0, "{}", obs.scheme);
                assert!(obs.lines_checked > 0, "{}", obs.scheme);
            }
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let scenario = Scenario::generate(5, &ScenarioConfig::default());
        assert_eq!(run_scenario(&scenario), run_scenario(&scenario));
    }

    #[test]
    fn schemes_share_one_operation_stream() {
        let scenario = Scenario::generate(1, &ScenarioConfig::default());
        let a = build_round_ops(&scenario, 0, scenario.rounds[0].txns);
        let b = build_round_ops(&scenario, 0, scenario.rounds[0].txns);
        assert_eq!(a, b);
        assert!(a.iter().any(|op| matches!(op, EngineOp::Batch(_))));
    }

    #[test]
    fn persist_start_cut_loses_the_interrupted_write() {
        // Pin the cut semantics: a fault at persist-start#0 means zero
        // commits in that round, wpq-insert#0 means exactly one.
        use dolos_core::inject::InjectionPoint;
        for (point, expect) in [
            (InjectionPoint::PersistStart, 0),
            (InjectionPoint::WpqInsert, 1),
        ] {
            let scenario = Scenario {
                seed: 77,
                keyspace: 16,
                banks: 1,
                rounds: vec![crate::scenario::VerifyRound {
                    txns: 3,
                    fault: Some((point, 0)),
                    quiesce: false,
                    nested: None,
                    tamper: None,
                }],
            };
            let verdict = run_scenario(&scenario);
            assert!(verdict.pass(), "{:?}", verdict.first_failure());
            for obs in &verdict.observations {
                assert_eq!(obs.commits, expect, "{} at {}", obs.scheme, point.name());
                assert_eq!(obs.fired, vec![format!("{}#0", point.name())]);
            }
        }
    }

    #[test]
    fn conformance_holds_on_both_bank_axes() {
        // The acknowledged-write oracle and the cross-scheme cut-position
        // identity are geometry-independent claims: they must hold whether
        // the WPQ is one queue or four shards. Same seeds, both axes.
        for banks in [1, 4] {
            let config = ScenarioConfig {
                tamper: false,
                banks,
                ..ScenarioConfig::default()
            };
            for seed in 0..6 {
                let scenario = Scenario::generate(seed, &config);
                assert_eq!(scenario.banks, banks);
                let verdict = run_scenario(&scenario);
                assert!(
                    verdict.pass(),
                    "banks={banks} {}: {:?}",
                    verdict.scenario,
                    verdict.first_failure()
                );
                for obs in &verdict.observations {
                    assert!(obs.commits > 0, "banks={banks} {}", obs.scheme);
                }
            }
        }
    }

    #[test]
    fn bank_axis_preserves_commit_counts_per_seed() {
        // Banking changes *when* drains retire, never *which* persists are
        // acknowledged: with no mid-stream cut, a seed's commit total is
        // identical at banks=1 and banks=4 for every scheme.
        let base = ScenarioConfig {
            tamper: false,
            ..ScenarioConfig::default()
        };
        for seed in 0..4 {
            let single = run_scenario(&Scenario::generate(seed, &base));
            let banked = run_scenario(&Scenario::generate(
                seed,
                &ScenarioConfig { banks: 4, ..base },
            ));
            assert!(single.pass() && banked.pass(), "seed {seed}");
            for (a, b) in single.observations.iter().zip(&banked.observations) {
                assert_eq!(a.scheme, b.scheme);
                assert_eq!(a.commits, b.commits, "seed {seed} {}", a.scheme);
                assert_eq!(a.fired, b.fired, "seed {seed} {}", a.scheme);
            }
        }
    }

    #[test]
    fn torn_bank_tamper_is_detected_by_every_misu_scheme() {
        // Round 0 crashes with a loaded queue, so every Mi-SU scheme dumps
        // a first-epoch image; round 1 crashes again and the tamper rewinds
        // bank 1's entire shard to that stale image. The victim slots fail
        // MAC/root verification on every dolos scheme; the schemes without
        // a dump region have nothing to tear and skip the tamper.
        let cut = crate::scenario::VerifyRound {
            txns: 6,
            fault: Some((dolos_core::inject::InjectionPoint::WpqInsert, 7)),
            quiesce: false,
            nested: None,
            tamper: None,
        };
        let scenario = Scenario {
            seed: 3,
            keyspace: 16,
            banks: 4,
            rounds: vec![
                cut.clone(),
                crate::scenario::VerifyRound {
                    tamper: Some(TamperSpec::TornBank { bank: 1, drop: 13 }),
                    ..cut
                },
            ],
        };
        let verdict = run_scenario(&scenario);
        assert!(verdict.pass(), "{:?}", verdict.first_failure());
        for obs in &verdict.observations {
            if obs.scheme.starts_with("dolos-") {
                assert!(
                    obs.tamper_detected,
                    "{}: expected torn-bank detection, got {obs:?}",
                    obs.scheme
                );
            } else {
                assert!(
                    !obs.tamper_detected && !obs.tamper_absorbed,
                    "{}: {obs:?}",
                    obs.scheme
                );
            }
        }
    }

    #[test]
    fn dump_tamper_is_detected_by_every_misu_scheme() {
        // Cut at a WPQ insert so the queue is guaranteed non-empty at the
        // crash. Only the Mi-SU designs materialise a WpqDump region
        // (`crash()` replays ideal/pre-wpq-secure entries in place), so the
        // flip must be *detected* by every dolos-* scheme and *skipped* —
        // no resident line to corrupt — by ideal and the eager baseline.
        let scenario = Scenario {
            seed: 3,
            keyspace: 16,
            banks: 1,
            rounds: vec![crate::scenario::VerifyRound {
                txns: 4,
                fault: Some((dolos_core::inject::InjectionPoint::WpqInsert, 2)),
                quiesce: false,
                nested: None,
                tamper: Some(TamperSpec::FlipBit {
                    region: MetaRegion::WpqDump,
                    pick: 0,
                    bit: 9,
                }),
            }],
        };
        let verdict = run_scenario(&scenario);
        assert!(verdict.pass(), "{:?}", verdict.first_failure());
        for obs in &verdict.observations {
            if obs.scheme.starts_with("dolos-") {
                assert!(
                    obs.tamper_detected,
                    "{}: expected dump tamper detection, got {obs:?}",
                    obs.scheme
                );
            } else {
                assert!(
                    !obs.tamper_detected && !obs.tamper_harmless && !obs.tamper_absorbed,
                    "{}: expected skipped tamper (no dump region), got {obs:?}",
                    obs.scheme
                );
            }
        }
    }
}
