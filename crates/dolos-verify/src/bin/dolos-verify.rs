//! `dolos-verify` — differential and metamorphic conformance across the
//! Mi-SU variants and baselines.
//!
//! ```text
//! dolos-verify campaign [--seed N] [--traces N] [--rounds N] [--txns N]
//!                       [--keyspace N] [--no-tamper] [--banks N] [--jobs N]
//!                       [--json PATH] [--quiet]
//! dolos-verify replay <scenario> [--scheme NAME]
//!
//! `campaign` sweeps seeded scenarios across all five schemes and checks
//! the metamorphic invariants; the report (including the JSON) is
//! byte-for-byte identical at any `--jobs` value. `replay` re-runs one
//! rendered scenario (as printed in failure reports), either across all
//! schemes or on a single named scheme.
//! ```
//!
//! Exit status is 0 when every obligation held, 1 otherwise.

use std::process::ExitCode;

use dolos_verify::{run_scenario, run_verify, Scenario, VerifyConfig};

fn usage() -> ! {
    eprintln!(
        "usage: dolos-verify campaign [--seed N] [--traces N] [--rounds N] [--txns N] \
         [--keyspace N] [--no-tamper] [--banks N] [--jobs N] [--json PATH] [--quiet]\n\
         \x20      dolos-verify replay <scenario> [--scheme NAME]"
    );
    std::process::exit(2);
}

fn campaign(args: &[String]) -> ExitCode {
    let mut config = VerifyConfig::default();
    let mut json_path: Option<String> = None;
    let mut quiet = false;

    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => config.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--traces" => config.traces = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rounds" => config.rounds = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--txns" => config.txns_per_round = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--keyspace" => config.keyspace = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--no-tamper" => config.tamper = false,
            "--banks" => config.banks = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--jobs" => config.jobs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(value(&mut i)),
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let report = run_verify(&config);

    if !quiet {
        println!("{}", report.table().render());
        println!("{}", report.metamorphic_table().render());
        for violation in &report.metamorphic.violations {
            println!("METAMORPHIC VIOLATION: {violation}");
        }
        for scheme in &report.schemes {
            if let Some(failure) = &scheme.first_failure {
                println!(
                    "FAIL {}: {}\n  minimal reproducer: {}",
                    scheme.scheme, failure.message, failure.scenario
                );
            }
        }
        for failure in &report.cross_failures {
            println!(
                "CROSS-SCHEME DIVERGENCE: {}\n  minimal reproducer: {}",
                failure.message, failure.scenario
            );
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("dolos-verify: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if !quiet {
            println!("report written to {path}");
        }
    }

    if report.all_pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay(args: &[String]) -> ExitCode {
    let mut scenario_text: Option<String> = None;
    let mut scheme: Option<String> = None;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scheme" => scheme = Some(value(&mut i)),
            "--help" | "-h" => usage(),
            arg if scenario_text.is_none() && !arg.starts_with('-') => {
                scenario_text = Some(arg.to_string())
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(text) = scenario_text else { usage() };
    let scenario: Scenario = match text.parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dolos-verify: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(name) = scheme {
        let Some(config) = dolos_core::ControllerConfig::named(&name) else {
            eprintln!("dolos-verify: unknown scheme {name:?}");
            return ExitCode::from(2);
        };
        let obs = dolos_verify::run_scheme(&config, &scenario);
        println!(
            "{}: commits={} reads={} lines={} detected={} cuts=[{}]",
            obs.scheme,
            obs.commits,
            obs.reads_checked,
            obs.lines_checked,
            obs.tamper_detected,
            obs.fired.join(",")
        );
        for divergence in &obs.divergences {
            println!("DIVERGENCE: {divergence}");
        }
        return if obs.pass() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let verdict = run_scenario(&scenario);
    for obs in &verdict.observations {
        println!(
            "{}: commits={} reads={} lines={} detected={} cuts=[{}]{}",
            obs.scheme,
            obs.commits,
            obs.reads_checked,
            obs.lines_checked,
            obs.tamper_detected,
            obs.fired.join(","),
            if obs.pass() { "" } else { " DIVERGED" }
        );
        for divergence in &obs.divergences {
            println!("  DIVERGENCE: {divergence}");
        }
    }
    for failure in &verdict.cross_failures {
        println!("CROSS-SCHEME DIVERGENCE: {failure}");
    }
    if verdict.pass() {
        println!("PASS {}", verdict.scenario);
        ExitCode::SUCCESS
    } else {
        println!("FAIL {}", verdict.scenario);
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("campaign") => campaign(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}
