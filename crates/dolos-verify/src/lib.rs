//! dolos-verify: differential and metamorphic conformance across the
//! Dolos Mi-SU variants and baselines.
//!
//! Where `dolos-chaos` asks "does each design keep its promises under
//! adversarial crashes?", this crate asks the stronger cross-cutting
//! question: **do all the designs mean the same thing?** One seeded,
//! shrinkable operation trace is run through every configured scheme —
//! the three Dolos Mi-SU options, the eager-BMT `pre-wpq-secure`
//! baseline, and the insecure `ideal` reference — side by side, and the
//! harness checks
//!
//! * a shared **semantic oracle**: read values during the stream and the
//!   post-crash recovered plaintext must match the acknowledged-write
//!   model in every scheme ([`engine`]);
//! * **cross-scheme identity**: every scheme must acknowledge the same
//!   persist prefix when a power failure cuts the stream at a
//!   scheme-independent injection point ([`scenario`]);
//! * **metamorphic invariants**: minimum persist latency ordered
//!   Post ≤ Partial ≤ Full ≤ baseline, burst WPQ capacity exactly the
//!   configured 16/13/10, and security on/off never changing data
//!   semantics ([`campaign`]).
//!
//! Counterexamples shrink to minimal replayable reproducers through the
//! generic [`dolos_chaos::Shrinkable`] engine; campaigns parallelize over
//! [`dolos_sim::pool`] with byte-identical reports at any `--jobs` value.
//! The `dolos-verify` binary is the CLI entry point (`campaign`,
//! `replay`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod engine;
pub mod scenario;

pub use campaign::{
    capacity_probe, run_metamorphic, run_verify, FailureCase, MetamorphicReport, MetamorphicRow,
    SchemeSummary, VerifyConfig, VerifyReport,
};
pub use engine::{
    build_round_ops, run_scenario, run_scheme, verify_schemes, EngineOp, ScenarioVerdict,
    SchemeObservation,
};
pub use scenario::{Scenario, ScenarioConfig, VerifyRound, CUT_POINTS};

#[cfg(test)]
pub(crate) mod test_support {
    /// Minimal JSON well-formedness scanner: tracks strings, escapes, and
    /// bracket balance. Catches exactly the bug class the hand-rolled
    /// escaper guards against (raw control characters, unescaped
    /// quotes/backslashes).
    pub fn assert_json_parses(json: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut chars = json.chars();
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    '\\' => {
                        let e = chars.next().expect("dangling escape");
                        match e {
                            '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' => {}
                            'u' => {
                                for _ in 0..4 {
                                    let h = chars.next().expect("truncated \\u escape");
                                    assert!(h.is_ascii_hexdigit(), "bad \\u digit {h:?}");
                                }
                            }
                            other => panic!("invalid escape \\{other}"),
                        }
                    }
                    '"' => in_string = false,
                    c if (c as u32) < 0x20 => {
                        panic!("raw control character {:#04x} inside string", c as u32)
                    }
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced brackets");
                    }
                    _ => {}
                }
            }
        }
        assert!(!in_string, "unterminated string");
        assert_eq!(depth, 0, "unbalanced brackets");
    }
}
