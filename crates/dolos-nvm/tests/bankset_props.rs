//! Lockstep and property tests for the bank-sharded WPQ.
//!
//! The tentpole claim is that a [`BankSet`] with `banks = 1` *is* the old
//! single [`WriteQueue`] — same outcomes, same occupancy, same statistics,
//! byte for byte — and that at higher bank counts the address-to-bank map
//! is a partition whose shards individually respect the per-bank capacity.
//! These tests drive both models through seeded op streams and check the
//! claims at every step, not just at the end.

use dolos_nvm::addr::LineAddr;
use dolos_nvm::bank::BankSet;
use dolos_nvm::wpq::{InsertOutcome, WriteQueue};
use dolos_sim::rng::XorShift;
use dolos_sim::Cycle;

fn addr(n: u64) -> LineAddr {
    LineAddr::from_index(n)
}

/// Drives a `BankSet::new(1, capacity)` and a plain `WriteQueue` through
/// one seeded stream of inserts, fetches, and clears, asserting lockstep
/// equality after every operation.
fn lockstep_round(seed: u64, capacity: usize, ops: usize) {
    let mut set = BankSet::new(1, capacity);
    let mut wpq = WriteQueue::new(capacity);
    let mut rng = XorShift::new(seed);
    // Fetched-but-uncleared slots, shared by construction: outcomes are
    // asserted identical, so both models always have the same fetch heads.
    let mut inflight: Vec<usize> = Vec::new();

    for step in 0..ops {
        let now = Cycle::new(step as u64);
        match rng.next_below(4) {
            // Insert or coalesce: a small keyspace forces both paths.
            0 | 1 => {
                let a = addr(rng.next_below(2 * capacity as u64));
                let payload = [rng.next_below(256) as u8; 64];
                assert_eq!(set.coalesce_slot(a), wpq.coalesce_slot(a), "step {step}");
                let got = set.try_insert_at(now, a, payload, None);
                let want = wpq.try_insert_at(now, a, payload, None);
                assert_eq!(got, want, "step {step}");
                if let InsertOutcome::Inserted { slot } = got {
                    assert_eq!(set.bank_of_slot(slot), 0);
                }
            }
            // Fetch the oldest entry into the drain window.
            2 => {
                let got = set.fetch_oldest(0);
                let want = wpq.fetch_oldest();
                assert_eq!(got, want, "step {step}");
                if let Some(entry) = got {
                    inflight.push(entry.slot);
                }
            }
            // Retire the oldest in-flight entry, in fetch order.
            _ => {
                if !inflight.is_empty() {
                    let slot = inflight.remove(0);
                    set.clear_at(now, slot);
                    wpq.clear_at(now, slot);
                }
            }
        }
        assert_eq!(set.len(), wpq.len(), "step {step}");
        assert_eq!(set.is_empty(), wpq.is_empty(), "step {step}");
        assert_eq!(set.is_full(0), wpq.is_full(), "step {step}");
        assert_eq!(
            set.next_insert_slot(0),
            wpq.next_insert_slot(),
            "step {step}"
        );
        assert_eq!(
            set.occupied_in_order(),
            wpq.occupied_in_order(),
            "step {step}"
        );
    }
    // The merged statistics are the single shard's, byte for byte.
    assert_eq!(set.stats(), wpq.stats(), "seed {seed}");
}

#[test]
fn single_bank_set_locksteps_with_a_plain_write_queue() {
    for seed in 0..32 {
        lockstep_round(seed, 16, 400);
    }
}

#[test]
fn single_bank_lockstep_holds_at_odd_capacities() {
    // The Partial/Post usable depths are not powers of two; the lockstep
    // must not depend on capacity alignment.
    for (seed, capacity) in [(1, 13), (2, 10), (3, 1), (4, 3)] {
        lockstep_round(seed, capacity, 300);
    }
}

#[test]
fn bank_mapping_is_a_partition() {
    // Every address maps to exactly one bank, stably, and an insert lands
    // in precisely that shard (observed through per-bank occupancy).
    for banks in [1usize, 2, 4, 8, 16] {
        let mut set = BankSet::new(banks, 4);
        let mut rng = XorShift::new(banks as u64);
        for _ in 0..200 {
            let a = addr(rng.next_below(1 << 20));
            let bank = set.bank_of(a);
            assert!(bank < banks, "bank {bank} out of range at {banks} banks");
            assert_eq!(bank, set.bank_of(a), "mapping must be stable");
            let before = set.bank_len(bank);
            let others: usize = (0..banks)
                .filter(|&b| b != bank)
                .map(|b| set.bank_len(b))
                .sum();
            match set.try_insert_at(Cycle::ZERO, a, [0xEE; 64], None) {
                InsertOutcome::Inserted { slot } | InsertOutcome::Coalesced { slot } => {
                    assert_eq!(set.bank_of_slot(slot), bank, "slot landed off-bank");
                    assert!(set.bank_len(bank) >= before);
                }
                InsertOutcome::Full => assert!(set.is_full(bank)),
            }
            let others_after: usize = (0..banks)
                .filter(|&b| b != bank)
                .map(|b| set.bank_len(b))
                .sum();
            assert_eq!(others, others_after, "insert touched a foreign bank");
        }
    }
}

#[test]
fn shards_never_exceed_the_per_bank_capacity() {
    // An adversarial storm of distinct addresses: each shard must cap at
    // its own depth and the global occupancy must always equal the sum of
    // the shards — no slot is ever double-counted or borrowed across banks.
    for (banks, per_bank) in [(2usize, 3usize), (4, 13), (8, 10)] {
        let mut set = BankSet::new(banks, per_bank);
        let mut rng = XorShift::new(0xB0B5);
        for i in 0..(banks * per_bank * 4) {
            let a = addr(rng.next_below(1 << 16));
            let _ = set.try_insert_at(Cycle::new(i as u64), a, [0x11; 64], None);
            let mut total = 0;
            for bank in 0..banks {
                let len = set.bank_len(bank);
                assert!(
                    len <= per_bank,
                    "bank {bank} holds {len} > {per_bank} ({banks} banks)"
                );
                total += len;
            }
            assert_eq!(total, set.len(), "merged occupancy diverged");
            assert!(set.len() <= set.capacity());
        }
    }
}

#[test]
fn merged_occupancy_matches_the_global_queue_at_one_bank() {
    // The banks=1 shard sum is the old global occupancy — checked against
    // an independently-maintained reference count, so an off-by-one in
    // either `len` cannot cancel out.
    let mut set = BankSet::new(1, 16);
    let mut live = 0usize;
    let mut rng = XorShift::new(7);
    let mut inflight: Vec<usize> = Vec::new();
    for step in 0..500u64 {
        if rng.chance(0.6) {
            let a = addr(rng.next_below(24));
            match set.try_insert_at(Cycle::new(step), a, [0x42; 64], None) {
                InsertOutcome::Inserted { .. } => live += 1,
                InsertOutcome::Coalesced { .. } | InsertOutcome::Full => {}
            }
        } else if rng.chance(0.5) {
            if let Some(entry) = set.fetch_oldest(0) {
                inflight.push(entry.slot);
            }
        } else if !inflight.is_empty() {
            set.clear_at(Cycle::new(step), inflight.remove(0));
            live -= 1;
        }
        assert_eq!(set.len(), live, "step {step}");
        assert_eq!(set.bank_len(0), live, "step {step}");
    }
}

#[test]
fn drain_clamps_are_independent_across_banks() {
    // The per-bank busy-until clocks are the whole point of banking: a
    // slow drain in one bank must never delay another bank's completion.
    let mut set = BankSet::new(4, 4);
    assert_eq!(set.note_drain_done(0, Cycle::new(5_000)), Cycle::new(5_000));
    for bank in 1..4 {
        let done = Cycle::new(100 * bank as u64);
        assert_eq!(set.note_drain_done(bank, done), done, "bank {bank}");
    }
    // Within a bank the clamp is monotone.
    assert_eq!(set.note_drain_done(0, Cycle::new(10)), Cycle::new(5_000));
}
