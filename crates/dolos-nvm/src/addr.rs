//! Strongly-typed cacheline addresses.

use core::fmt;

use crate::LINE_SIZE;

/// A cacheline-aligned physical address.
///
/// Using a newtype instead of a bare `u64` keeps byte addresses, line
/// addresses, and metadata indices from being mixed up across the
/// controller/secmem boundary.
///
/// # Examples
///
/// ```
/// use dolos_nvm::addr::LineAddr;
///
/// let a = LineAddr::new(0x1000).unwrap();
/// assert_eq!(a.as_u64(), 0x1000);
/// assert_eq!(a.line_index(), 0x40);
/// assert!(LineAddr::new(0x1001).is_none()); // not 64-byte aligned
/// assert_eq!(LineAddr::containing(0x1039), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address, or `None` if `addr` is not 64-byte aligned.
    pub fn new(addr: u64) -> Option<Self> {
        addr.is_multiple_of(LINE_SIZE as u64)
            .then_some(LineAddr(addr))
    }

    /// Returns the line containing the given byte address.
    pub fn containing(byte_addr: u64) -> Self {
        LineAddr(byte_addr & !(LINE_SIZE as u64 - 1))
    }

    /// Creates a line address from a line index (address / 64).
    pub fn from_index(index: u64) -> Self {
        LineAddr(index * LINE_SIZE as u64)
    }

    /// The raw byte address.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The line index (address / 64).
    pub fn line_index(self) -> u64 {
        self.0 / LINE_SIZE as u64
    }

    /// The 4 KiB page index this line belongs to.
    pub fn page_index(self) -> u64 {
        self.0 / 4096
    }

    /// The line's slot within its 4 KiB page (0..64).
    pub fn line_in_page(self) -> usize {
        ((self.0 % 4096) / LINE_SIZE as u64) as usize
    }

    /// The next line address.
    pub fn next(self) -> Self {
        LineAddr(self.0 + LINE_SIZE as u64)
    }

    /// The line `n` lines after this one.
    pub fn offset_lines(self, n: u64) -> Self {
        LineAddr(self.0 + n * LINE_SIZE as u64)
    }

    /// The NVM bank this line maps to, for a power-of-two bank count.
    ///
    /// The mapping XOR-folds a higher line-index window onto the low bits
    /// before masking, so both dense sequential sweeps and strided
    /// page-granular workloads spread across banks instead of pinning one.
    /// `banks == 1` always maps to bank 0 — the single-queue baseline.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or not a power of two.
    pub fn bank_index(self, banks: usize) -> usize {
        assert!(
            banks.is_power_of_two(),
            "bank count must be a power of two, got {banks}"
        );
        let idx = self.line_index();
        ((idx ^ (idx >> 7)) & (banks as u64 - 1)) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_enforced() {
        assert!(LineAddr::new(0).is_some());
        assert!(LineAddr::new(64).is_some());
        assert!(LineAddr::new(63).is_none());
    }

    #[test]
    fn containing_rounds_down() {
        assert_eq!(LineAddr::containing(127).as_u64(), 64);
        assert_eq!(LineAddr::containing(128).as_u64(), 128);
    }

    #[test]
    fn page_decomposition() {
        let a = LineAddr::new(4096 + 3 * 64).unwrap();
        assert_eq!(a.page_index(), 1);
        assert_eq!(a.line_in_page(), 3);
    }

    #[test]
    fn index_round_trip() {
        let a = LineAddr::from_index(17);
        assert_eq!(a.line_index(), 17);
        assert_eq!(a.as_u64(), 17 * 64);
    }

    #[test]
    fn traversal() {
        let a = LineAddr::new(0).unwrap();
        assert_eq!(a.next().as_u64(), 64);
        assert_eq!(a.offset_lines(4).as_u64(), 256);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(LineAddr::new(256).unwrap().to_string(), "0x100");
    }

    #[test]
    fn bank_index_is_total_on_power_of_two_counts() {
        for banks in [1usize, 2, 4, 8, 16] {
            for i in 0..1024u64 {
                let b = LineAddr::from_index(i).bank_index(banks);
                assert!(b < banks, "index {i} escaped: bank {b} of {banks}");
            }
        }
    }

    #[test]
    fn single_bank_maps_everything_to_zero() {
        for i in [0u64, 1, 63, 64, 127, 1 << 20, u64::MAX / 64] {
            assert_eq!(LineAddr::from_index(i).bank_index(1), 0);
        }
    }

    #[test]
    fn sequential_lines_round_robin_low_bits() {
        // Below the XOR-fold window (index < 128) the mapping is the plain
        // low-bit interleave, so adjacent lines land on adjacent banks.
        let banks = 4;
        for i in 0..16u64 {
            assert_eq!(
                LineAddr::from_index(i).bank_index(banks),
                (i % banks as u64) as usize
            );
        }
    }

    #[test]
    fn strided_pages_do_not_pin_one_bank() {
        // 4 KiB-page stride (64 lines) hits every bank thanks to the fold.
        let banks = 8;
        let mut seen = [false; 8];
        for page in 0..64u64 {
            seen[LineAddr::from_index(page * 64).bank_index(banks)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "page stride pinned banks: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bank_count_panics() {
        let _ = LineAddr::from_index(0).bank_index(3);
    }
}
