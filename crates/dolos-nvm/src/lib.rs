//! Non-volatile memory substrate: device model, byte store, and the Write
//! Pending Queue.
//!
//! This crate supplies the pieces of the memory system below the security
//! units:
//!
//! * [`addr`] — strongly-typed cacheline addresses;
//! * [`device`] — the PCM device model from Table 1 (150 ns reads, 500 ns
//!   writes at 4 GHz) over a sparse, functionally-real byte store, with a
//!   tampering API used by the attack-injection tests;
//! * [`wpq`] — the ADR-protected Write Pending Queue: a circular buffer with
//!   per-entry cleared bits, insertion/fetch indices, and the volatile tag
//!   array that enables write coalescing and read hits (paper §4.5);
//! * [`bank`] — bank-sharded WPQs: one [`wpq::WriteQueue`] shard plus one
//!   busy-until timestamp per NVM bank, exposing memory-level parallelism
//!   to the drain scheduler (`banks = 1` degenerates to the single queue).
//!
//! # Examples
//!
//! ```
//! use dolos_nvm::{addr::LineAddr, device::NvmDevice};
//! use dolos_sim::Cycle;
//!
//! let mut nvm = NvmDevice::new();
//! let line = [0x5Au8; 64];
//! let done = nvm.write_line(Cycle::ZERO, LineAddr::new(0x100).unwrap(), &line);
//! let (_, data) = nvm.read_line(done, LineAddr::new(0x100).unwrap());
//! assert_eq!(data, line);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bank;
pub mod device;
pub mod wpq;

pub use addr::LineAddr;
pub use bank::BankSet;
pub use device::NvmDevice;
pub use wpq::{InsertOutcome, WpqEntry, WriteQueue};

/// Bytes per cacheline throughout the model.
pub const LINE_SIZE: usize = 64;

/// A 64-byte cacheline payload.
pub type Line = [u8; LINE_SIZE];
