//! PCM device model: real bytes, Table 1 timing.
//!
//! The store is sparse (only lines ever written exist) so a "16 GB" device
//! costs memory proportional to the working set. Reads of never-written lines
//! return zeroes, matching a zero-initialized medium.
//!
//! Timing follows the paper's DDR-based PCM: 150 ns reads and 500 ns writes,
//! i.e. 600 and 2000 cycles at the 4 GHz core clock. Reads and writes each
//! serialize on their own port; this deliberately simple channel model is the
//! same abstraction level the paper's table implies.

use std::collections::BTreeMap;

use dolos_sim::resource::Pipeline;
use dolos_sim::stats::StatSet;
use dolos_sim::trace::{EventKind, TraceEvent, TraceMode, TraceSink};
use dolos_sim::Cycle;

use crate::{addr::LineAddr, Line, LINE_SIZE};

/// PCM read latency in cycles (150 ns at 4 GHz).
pub const READ_LATENCY: u64 = 600;

/// PCM write latency in cycles (500 ns at 4 GHz).
pub const WRITE_LATENCY: u64 = 2000;

/// Issue interval of the read port: the device accepts a new read every
/// 50 cycles (~12.5 ns, a DDR-bus-limited 64 B transfer) even though each
/// read takes [`READ_LATENCY`] to complete.
pub const READ_ISSUE_INTERVAL: u64 = 50;

/// Issue interval of the write port: sustained PCM write bandwidth of one
/// 64 B line per 100 cycles (~2.5 GB/s), independent of the per-line
/// [`WRITE_LATENCY`].
pub const WRITE_ISSUE_INTERVAL: u64 = 100;

/// The non-volatile memory device: a sparse line store plus timing ports.
///
/// The contents survive [`NvmDevice::power_cycle`], which models a crash /
/// reboot: timing state resets, data stays. Tests use [`NvmDevice::tamper`]
/// and [`NvmDevice::replay_snapshot`] to mount the attacks from the threat
/// model (spoofing, relocation, replay).
#[derive(Debug, Clone)]
pub struct NvmDevice {
    /// Line store, ordered by address: range scans (recovery's counter-region
    /// enumeration) come out sorted for free, and nothing downstream can
    /// observe hasher-dependent order.
    lines: BTreeMap<u64, Line>,
    read_port: Pipeline,
    write_port: Pipeline,
    reads: u64,
    writes: u64,
    /// Program cycles per line — the endurance profile (PCM cells wear out
    /// after ~1e8 writes; secure-NVM designs care about write amplification).
    write_counts: BTreeMap<u64, u64>,
    /// Event sink for cycle-stamped read/write service spans.
    trace: TraceSink,
}

impl Default for NvmDevice {
    fn default() -> Self {
        Self {
            lines: BTreeMap::new(),
            read_port: Pipeline::new(READ_ISSUE_INTERVAL, READ_LATENCY),
            write_port: Pipeline::new(WRITE_ISSUE_INTERVAL, WRITE_LATENCY),
            reads: 0,
            writes: 0,
            write_counts: BTreeMap::new(),
            trace: TraceSink::Null,
        }
    }
}

impl NvmDevice {
    /// Creates an empty (all-zero) device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the event-tracing mode (discarding any buffered events).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace = TraceSink::from_mode(mode);
    }

    /// Drains buffered trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Reads a line, returning `(completion_time, data)`.
    pub fn read_line(&mut self, now: Cycle, addr: LineAddr) -> (Cycle, Line) {
        self.reads += 1;
        let done = self.read_port.acquire(now);
        if self.trace.is_enabled() {
            self.trace
                .span(EventKind::NvmRead, now, done, addr.as_u64(), done - now);
        }
        let data = self.peek(addr);
        (done, data)
    }

    /// Writes a line, returning the completion time.
    pub fn write_line(&mut self, now: Cycle, addr: LineAddr, data: &Line) -> Cycle {
        self.write_line_ticket(now, addr, data).1
    }

    /// Writes a line, returning `(accepted, completed)`: the write is
    /// *accepted* (buffer slot can be reused) one issue interval after the
    /// port picks it up; the cells finish programming at *completed*.
    pub fn write_line_ticket(&mut self, now: Cycle, addr: LineAddr, data: &Line) -> (Cycle, Cycle) {
        self.writes += 1;
        *self.write_counts.entry(addr.as_u64()).or_insert(0) += 1;
        self.lines.insert(addr.as_u64(), *data);
        let completed = self.write_port.acquire(now);
        let accepted = Cycle::new(completed.as_u64() - (WRITE_LATENCY - WRITE_ISSUE_INTERVAL));
        if self.trace.is_enabled() {
            self.trace.span(
                EventKind::NvmWrite,
                now,
                completed,
                addr.as_u64(),
                accepted.as_u64(),
            );
        }
        (accepted, completed)
    }

    /// Reads a line's current contents without consuming device time.
    ///
    /// Used by recovery bookkeeping and tests; the timing-accurate path is
    /// [`NvmDevice::read_line`].
    pub fn peek(&self, addr: LineAddr) -> Line {
        self.lines
            .get(&addr.as_u64())
            .copied()
            .unwrap_or([0; LINE_SIZE])
    }

    /// Writes a line's contents without consuming device time.
    ///
    /// Used by the ADR drain path, whose energy budget is accounted
    /// separately from run-time device ports, and by test setup.
    pub fn poke(&mut self, addr: LineAddr, data: &Line) {
        self.lines.insert(addr.as_u64(), *data);
    }

    /// Applies an attacker mutation to a line (spoofing/relocation attacks).
    ///
    /// Returns the previous contents.
    pub fn tamper(&mut self, addr: LineAddr, f: impl FnOnce(&mut Line)) -> Line {
        let entry = self.lines.entry(addr.as_u64()).or_insert([0; LINE_SIZE]);
        let before = *entry;
        f(entry);
        before
    }

    /// Flips a single bit of a line (rowhammer-style corruption / targeted
    /// spoofing). `bit` counts from the least-significant bit of byte 0;
    /// values wrap within the line.
    ///
    /// Returns the previous contents.
    pub fn flip_bit(&mut self, addr: LineAddr, bit: u32) -> Line {
        let byte = (bit as usize / 8) % LINE_SIZE;
        let mask = 1u8 << (bit % 8);
        self.tamper(addr, |line| line[byte] ^= mask)
    }

    /// Captures the contents of a line for a later replay attack.
    pub fn snapshot_line(&self, addr: LineAddr) -> Line {
        self.peek(addr)
    }

    /// Replays previously captured contents into a line (replay attack).
    pub fn replay_snapshot(&mut self, addr: LineAddr, old: &Line) {
        self.lines.insert(addr.as_u64(), *old);
    }

    /// Captures every resident line in `[start, end)`, sorted by address.
    /// Pairs with [`NvmDevice::restore_lines`] to model torn ADR dumps and
    /// region-wide replay attacks: snapshot the region, let execution
    /// continue, then restore a chosen subset of its lines.
    pub fn snapshot_range(&self, start: u64, end: u64) -> Vec<(LineAddr, Line)> {
        self.resident_lines_in(start, end)
            .into_iter()
            .map(|a| (a, self.peek(a)))
            .collect()
    }

    /// Writes captured `(address, contents)` pairs back, untimed. Restoring
    /// only part of a [`NvmDevice::snapshot_range`] capture models a torn
    /// write burst: some lines carry the new epoch, the rest the old one.
    pub fn restore_lines(&mut self, lines: &[(LineAddr, Line)]) {
        for (addr, data) in lines {
            self.lines.insert(addr.as_u64(), *data);
        }
    }

    /// Models a power cycle: data is retained, timing/port state resets.
    pub fn power_cycle(&mut self) {
        self.read_port.reset();
        self.write_port.reset();
    }

    /// Number of timed reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of timed writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Timed writes a given line has endured.
    pub fn line_write_count(&self, addr: LineAddr) -> u64 {
        self.write_counts.get(&addr.as_u64()).copied().unwrap_or(0)
    }

    /// The endurance hot spot: the most-written line and its write count.
    /// Ties resolve to the lowest address (ordered iteration), so the answer
    /// is a pure function of the write history.
    pub fn max_line_writes(&self) -> Option<(LineAddr, u64)> {
        self.write_counts
            .iter()
            .max_by(|(a1, c1), (a2, c2)| c1.cmp(c2).then(a2.cmp(a1)))
            .map(|(&a, &c)| (LineAddr::containing(a), c))
    }

    /// Number of distinct lines ever written.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Addresses of resident (ever-written) lines within `[start, end)`,
    /// sorted. Recovery uses this to enumerate the counter-block region
    /// without scanning the full device; the ordered store makes this a
    /// range scan instead of a filter-and-sort over every resident line.
    pub fn resident_lines_in(&self, start: u64, end: u64) -> Vec<LineAddr> {
        self.lines
            .range(start..end)
            .map(|(&a, _)| LineAddr::containing(a))
            .collect()
    }

    /// Snapshots device statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("nvm.reads", self.reads as f64);
        s.set("nvm.writes", self.writes as f64);
        s.set("nvm.resident_lines", self.resident_lines() as f64);
        s.set(
            "nvm.max_line_writes",
            self.max_line_writes().map_or(0.0, |(_, c)| c as f64),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u64) -> LineAddr {
        LineAddr::new(a).expect("aligned")
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut nvm = NvmDevice::new();
        let line = [0xC3u8; 64];
        nvm.write_line(Cycle::ZERO, addr(0x40), &line);
        let (_, got) = nvm.read_line(Cycle::ZERO, addr(0x40));
        assert_eq!(got, line);
    }

    #[test]
    fn flip_bit_toggles_and_wraps() {
        let mut nvm = NvmDevice::new();
        nvm.poke(addr(0x40), &[0u8; 64]);
        nvm.flip_bit(addr(0x40), 13); // byte 1, bit 5
        assert_eq!(nvm.peek(addr(0x40))[1], 1 << 5);
        nvm.flip_bit(addr(0x40), 13);
        assert_eq!(nvm.peek(addr(0x40)), [0u8; 64]);
        // Bit index wraps within the 512-bit line.
        nvm.flip_bit(addr(0x40), 512);
        assert_eq!(nvm.peek(addr(0x40))[0], 1);
    }

    #[test]
    fn partial_restore_models_a_torn_dump() {
        let mut nvm = NvmDevice::new();
        for i in 0..4u64 {
            nvm.poke(addr(i * 64), &[1u8; 64]);
        }
        let old = nvm.snapshot_range(0, 4 * 64);
        assert_eq!(old.len(), 4);
        for i in 0..4u64 {
            nvm.poke(addr(i * 64), &[2u8; 64]);
        }
        // Tear: only the first two lines revert to the old epoch.
        nvm.restore_lines(&old[..2]);
        assert_eq!(nvm.peek(addr(0))[0], 1);
        assert_eq!(nvm.peek(addr(64))[0], 1);
        assert_eq!(nvm.peek(addr(128))[0], 2);
        assert_eq!(nvm.peek(addr(192))[0], 2);
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let mut nvm = NvmDevice::new();
        let (_, got) = nvm.read_line(Cycle::ZERO, addr(0x80));
        assert_eq!(got, [0u8; 64]);
    }

    #[test]
    fn timing_matches_table_1() {
        let mut nvm = NvmDevice::new();
        let (done, _) = nvm.read_line(Cycle::ZERO, addr(0));
        assert_eq!(done, Cycle::new(READ_LATENCY));
        let wdone = nvm.write_line(Cycle::ZERO, addr(0), &[0; 64]);
        assert_eq!(wdone, Cycle::new(WRITE_LATENCY));
    }

    #[test]
    fn writes_pipeline_on_the_port() {
        let mut nvm = NvmDevice::new();
        let a = nvm.write_line(Cycle::ZERO, addr(0), &[1; 64]);
        let b = nvm.write_line(Cycle::ZERO, addr(64), &[2; 64]);
        assert_eq!(a, Cycle::new(WRITE_LATENCY));
        // Second write issues one interval later, not a full latency later.
        assert_eq!(b, Cycle::new(WRITE_ISSUE_INTERVAL + WRITE_LATENCY));
    }

    #[test]
    fn write_ticket_accepts_before_completion() {
        let mut nvm = NvmDevice::new();
        let (accepted, completed) = nvm.write_line_ticket(Cycle::ZERO, addr(0), &[1; 64]);
        assert_eq!(accepted, Cycle::new(WRITE_ISSUE_INTERVAL));
        assert_eq!(completed, Cycle::new(WRITE_LATENCY));
    }

    #[test]
    fn data_survives_power_cycle() {
        let mut nvm = NvmDevice::new();
        nvm.write_line(Cycle::new(100), addr(0), &[9; 64]);
        nvm.power_cycle();
        assert_eq!(nvm.peek(addr(0)), [9; 64]);
        // Port pacing resets with power.
        let (accepted, _) = nvm.write_line_ticket(Cycle::ZERO, addr(64), &[1; 64]);
        assert_eq!(accepted, Cycle::new(WRITE_ISSUE_INTERVAL));
    }

    #[test]
    fn tamper_returns_old_contents() {
        let mut nvm = NvmDevice::new();
        nvm.poke(addr(0), &[5; 64]);
        let before = nvm.tamper(addr(0), |line| line[0] ^= 0xFF);
        assert_eq!(before, [5; 64]);
        assert_eq!(nvm.peek(addr(0))[0], 5 ^ 0xFF);
    }

    #[test]
    fn replay_restores_stale_data() {
        let mut nvm = NvmDevice::new();
        nvm.poke(addr(0), &[1; 64]);
        let stale = nvm.snapshot_line(addr(0));
        nvm.poke(addr(0), &[2; 64]);
        nvm.replay_snapshot(addr(0), &stale);
        assert_eq!(nvm.peek(addr(0)), [1; 64]);
    }

    #[test]
    fn endurance_tracking_counts_per_line() {
        let mut nvm = NvmDevice::new();
        for _ in 0..3 {
            nvm.write_line(Cycle::ZERO, addr(0), &[1; 64]);
        }
        nvm.write_line(Cycle::ZERO, addr(64), &[1; 64]);
        assert_eq!(nvm.line_write_count(addr(0)), 3);
        assert_eq!(nvm.line_write_count(addr(64)), 1);
        assert_eq!(nvm.line_write_count(addr(128)), 0);
        let (hot, count) = nvm.max_line_writes().unwrap();
        assert_eq!(hot, addr(0));
        assert_eq!(count, 3);
        // Pokes (ADR drain / test setup) do not count as wear-inducing
        // program operations in this model.
        nvm.poke(addr(0), &[2; 64]);
        assert_eq!(nvm.line_write_count(addr(0)), 3);
    }

    #[test]
    fn stats_count_operations() {
        let mut nvm = NvmDevice::new();
        nvm.write_line(Cycle::ZERO, addr(0), &[0; 64]);
        nvm.read_line(Cycle::ZERO, addr(0));
        let s = nvm.stats();
        assert_eq!(s.get("nvm.reads"), Some(1.0));
        assert_eq!(s.get("nvm.writes"), Some(1.0));
    }
}
