//! The ADR-protected Write Pending Queue (WPQ).
//!
//! The WPQ is a strict circular buffer, exactly as the paper manages it
//! (§4.3): insertion happens at `next_insert`, the Ma-SU fetches at
//! `next_fetch`, and each entry carries a *cleared* bit that is set once the
//! Ma-SU has fully processed it. Insertion fails — and the core retries —
//! when the slot at `next_insert` has not been cleared yet.
//!
//! Slot identity matters for security: the Mi-SU pre-generates one encryption
//! pad *per slot*, so an entry is always encrypted with the pad of the slot
//! it occupies.
//!
//! A parallel **volatile tag array** (paper §4.5) maps plaintext addresses to
//! slots, enabling write coalescing and read hits without decrypting entries.

use dolos_crypto::mac::Mac64;
use dolos_sim::flat::FlatMap;
use dolos_sim::stats::StatSet;
use dolos_sim::trace::{EventKind, TraceEvent, TraceMode, TraceSink};
use dolos_sim::Cycle;

use crate::{addr::LineAddr, Line};

/// One occupied WPQ slot: the (Mi-SU-encrypted) payload and its metadata.
/// All fields are plain value types; `Copy` keeps the drain path's
/// fetch-oldest handoff allocation- and clone-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WpqEntry {
    /// The cacheline address this write targets.
    pub addr: LineAddr,
    /// The 64-byte payload, encrypted with this slot's Mi-SU pad.
    pub payload: Line,
    /// The per-entry MAC (Partial/Post designs); `None` in Full-WPQ.
    pub mac: Option<Mac64>,
    /// The slot this entry occupies (determines its encryption pad).
    pub slot: usize,
}

/// Result of attempting to insert a write into the WPQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new slot was allocated.
    Inserted {
        /// The allocated slot index.
        slot: usize,
    },
    /// The write was merged into an existing live entry for the same address.
    Coalesced {
        /// The slot that absorbed the write.
        slot: usize,
    },
    /// The queue is full; the requester must retry later.
    Full,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Free,
    /// Inserted, not yet picked up by the Ma-SU; eligible for coalescing.
    Live(WpqEntry),
    /// Fetched by the Ma-SU, processing in flight; not eligible for
    /// coalescing, still occupies ADR budget until cleared.
    Busy(WpqEntry),
}

impl Slot {
    fn entry(&self) -> Option<&WpqEntry> {
        match self {
            Slot::Free => None,
            Slot::Live(e) | Slot::Busy(e) => Some(e),
        }
    }
}

/// The Write Pending Queue.
///
/// # Examples
///
/// ```
/// use dolos_nvm::{addr::LineAddr, wpq::{InsertOutcome, WriteQueue}};
///
/// let mut wpq = WriteQueue::new(2);
/// let a = LineAddr::new(0).unwrap();
/// assert!(matches!(wpq.try_insert(a, [1; 64], None), InsertOutcome::Inserted { .. }));
/// // Same address coalesces instead of consuming a slot.
/// assert!(matches!(wpq.try_insert(a, [2; 64], None), InsertOutcome::Coalesced { .. }));
/// assert_eq!(wpq.len(), 1);
/// assert_eq!(wpq.lookup(a).unwrap().payload, [2; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct WriteQueue {
    slots: Vec<Slot>,
    next_insert: usize,
    next_fetch: usize,
    next_scan: usize,
    live: usize,
    /// Whether the volatile tag array exists (write coalescing + read hits,
    /// §4.5). Disabled only by ablation configurations.
    coalescing: bool,
    /// Address → slot, keyed by the raw line address. Flat and sorted: the
    /// queue holds at most a few dozen entries, so binary search beats
    /// hashing, and the structure carries no hasher state.
    tag: FlatMap<usize>,
    inserts: u64,
    coalesces: u64,
    full_events: u64,
    read_hits: u64,
    /// Event sink for the cycle-stamped insert/retire/occupancy trace.
    trace: TraceSink,
}

impl WriteQueue {
    /// Creates a queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ capacity must be non-zero");
        Self {
            slots: vec![Slot::Free; capacity],
            next_insert: 0,
            next_fetch: 0,
            next_scan: 0,
            live: 0,
            coalescing: true,
            tag: FlatMap::new(),
            inserts: 0,
            coalesces: 0,
            full_events: 0,
            read_hits: 0,
            trace: TraceSink::Null,
        }
    }

    /// Installs the event-tracing mode (discarding any buffered events).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace = TraceSink::from_mode(mode);
    }

    /// Drains buffered trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied (live + busy) slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether insertion at `next_insert` would fail right now.
    pub fn is_full(&self) -> bool {
        !matches!(self.slots[self.next_insert], Slot::Free)
    }

    /// The slot the next (non-coalescing) insertion will occupy, or `None`
    /// if the queue is full. The Mi-SU needs this to pick the encryption pad
    /// before the entry is written into the queue.
    pub fn next_insert_slot(&self) -> Option<usize> {
        (!self.is_full()).then_some(self.next_insert)
    }

    /// The slot a write to `addr` would coalesce into, if any.
    pub fn coalesce_slot(&self, addr: LineAddr) -> Option<usize> {
        if !self.coalescing {
            return None;
        }
        let &slot = self.tag.get(addr.as_u64())?;
        matches!(self.slots[slot], Slot::Live(_)).then_some(slot)
    }

    /// Disables (or re-enables) the volatile tag array — coalescing and
    /// read hits stop working, as in the ablation study.
    pub fn set_coalescing(&mut self, enabled: bool) {
        self.coalescing = enabled;
    }

    /// Attempts to insert a write.
    ///
    /// If a live (not yet fetched) entry for the same address exists, the
    /// write coalesces into it in place — reusing the slot and therefore the
    /// slot's encryption pad. Otherwise a new slot is allocated at
    /// `next_insert`; if that slot has not been cleared yet the queue is full
    /// and [`InsertOutcome::Full`] is returned.
    pub fn try_insert(
        &mut self,
        addr: LineAddr,
        payload: Line,
        mac: Option<Mac64>,
    ) -> InsertOutcome {
        if let Some(slot) = self.coalesce_slot(addr) {
            if let Slot::Live(entry) = &mut self.slots[slot] {
                entry.payload = payload;
                entry.mac = mac;
                self.coalesces += 1;
                return InsertOutcome::Coalesced { slot };
            }
        }
        if self.is_full() {
            self.full_events += 1;
            return InsertOutcome::Full;
        }
        let slot = self.next_insert;
        self.slots[slot] = Slot::Live(WpqEntry {
            addr,
            payload,
            mac,
            slot,
        });
        self.tag.insert(addr.as_u64(), slot);
        self.next_insert = (self.next_insert + 1) % self.slots.len();
        self.live += 1;
        self.inserts += 1;
        InsertOutcome::Inserted { slot }
    }

    /// [`WriteQueue::try_insert`] with a cycle stamp: when tracing is on,
    /// successful inserts emit [`EventKind::WpqInsert`]/
    /// [`EventKind::WpqCoalesce`] plus an [`EventKind::WpqOccupancy`] sample
    /// carrying the live occupancy after the operation. Timing-neutral: the
    /// outcome is exactly `try_insert`'s.
    pub fn try_insert_at(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        payload: Line,
        mac: Option<Mac64>,
    ) -> InsertOutcome {
        let outcome = self.try_insert(addr, payload, mac);
        if self.trace.is_enabled() {
            let occupancy = self.live as u64;
            match outcome {
                InsertOutcome::Inserted { .. } => {
                    self.trace
                        .instant(EventKind::WpqInsert, now, addr.as_u64(), occupancy);
                    self.trace
                        .instant(EventKind::WpqOccupancy, now, 0, occupancy);
                }
                InsertOutcome::Coalesced { .. } => {
                    self.trace
                        .instant(EventKind::WpqCoalesce, now, addr.as_u64(), occupancy);
                    self.trace
                        .instant(EventKind::WpqOccupancy, now, 0, occupancy);
                }
                // The requester's stall is the controller's event
                // (EventKind::FenceStall); a full queue changes nothing here.
                InsertOutcome::Full => {}
            }
        }
        outcome
    }

    /// [`WriteQueue::clear`] with a cycle stamp: when tracing is on, emits
    /// [`EventKind::WpqRetire`] plus an [`EventKind::WpqOccupancy`] sample
    /// carrying the live occupancy after the retire.
    ///
    /// # Panics
    ///
    /// As [`WriteQueue::clear`].
    pub fn clear_at(&mut self, now: Cycle, slot: usize) {
        let addr = if self.trace.is_enabled() {
            self.slots[slot].entry().map(|e| e.addr.as_u64())
        } else {
            None
        };
        self.clear(slot);
        if let Some(addr) = addr {
            let occupancy = self.live as u64;
            self.trace
                .instant(EventKind::WpqRetire, now, addr, occupancy);
            self.trace
                .instant(EventKind::WpqOccupancy, now, 0, occupancy);
        }
    }

    /// Sets the MAC of an occupied slot (Post-WPQ computes MACs after
    /// insertion).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn set_mac(&mut self, slot: usize, mac: Mac64) {
        match &mut self.slots[slot] {
            Slot::Live(e) | Slot::Busy(e) => e.mac = Some(mac),
            Slot::Free => panic!("set_mac on a free WPQ slot"),
        }
    }

    /// Looks up the freshest entry for `addr` via the volatile tag array.
    ///
    /// Counts as a read hit when it succeeds. Always misses when the tag
    /// array is disabled.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<&WpqEntry> {
        if !self.coalescing {
            return None;
        }
        let &slot = self.tag.get(addr.as_u64())?;
        let entry = self.slots[slot].entry()?;
        self.read_hits += 1;
        Some(entry)
    }

    /// Returns the oldest unfetched entry and marks it busy, or `None` if
    /// every entry has already been fetched.
    ///
    /// The Ma-SU fetches entries strictly in insertion order; multiple
    /// fetched entries may be in flight in its pipelined engine at once, but
    /// they *clear* in order (see [`WriteQueue::clear`]).
    pub fn fetch_oldest(&mut self) -> Option<WpqEntry> {
        let idx = self.next_scan;
        match &self.slots[idx] {
            Slot::Live(_) => {}
            _ => return None,
        }
        let Slot::Live(entry) = std::mem::replace(&mut self.slots[idx], Slot::Free) else {
            unreachable!("checked above");
        };
        let copy = entry;
        self.slots[idx] = Slot::Busy(entry);
        self.next_scan = (self.next_scan + 1) % self.slots.len();
        Some(copy)
    }

    /// Marks the entry at the fetch head cleared (fully processed) and
    /// advances `next_fetch`. This is step ④ of the Ma-SU pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not the current fetch head or the slot is not
    /// busy — the Ma-SU clears entries strictly in order.
    pub fn clear(&mut self, slot: usize) {
        assert_eq!(slot, self.next_fetch, "WPQ entries clear in order");
        let Slot::Busy(entry) = std::mem::replace(&mut self.slots[slot], Slot::Free) else {
            panic!("clearing a WPQ slot that is not busy");
        };
        if self.tag.get(entry.addr.as_u64()) == Some(&slot) {
            self.tag.remove(entry.addr.as_u64());
        }
        self.live -= 1;
        self.next_fetch = (self.next_fetch + 1) % self.slots.len();
    }

    /// All occupied entries in drain (fetch) order — the ADR dump set.
    pub fn occupied_in_order(&self) -> Vec<WpqEntry> {
        let cap = self.slots.len();
        let mut out = Vec::new();
        for i in 0..cap {
            let idx = (self.next_fetch + i) % cap;
            if let Some(e) = self.slots[idx].entry() {
                out.push(*e);
            }
        }
        out
    }

    /// Empties the queue (after an ADR drain or recovery replay).
    pub fn clear_all(&mut self) {
        for slot in &mut self.slots {
            *slot = Slot::Free;
        }
        self.tag.clear();
        self.live = 0;
        self.next_insert = 0;
        self.next_fetch = 0;
        self.next_scan = 0;
    }

    /// Snapshots queue statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("wpq.inserts", self.inserts as f64);
        s.set("wpq.coalesces", self.coalesces as f64);
        s.set("wpq.full_events", self.full_events as f64);
        s.set("wpq.read_hits", self.read_hits as f64);
        s.set("wpq.capacity", self.capacity() as f64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> LineAddr {
        LineAddr::from_index(n)
    }

    #[test]
    fn inserts_fill_slots_in_order() {
        let mut q = WriteQueue::new(3);
        for i in 0..3 {
            match q.try_insert(addr(i), [i as u8; 64], None) {
                InsertOutcome::Inserted { slot } => assert_eq!(slot, i as usize),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(q.is_full());
        assert_eq!(q.try_insert(addr(9), [0; 64], None), InsertOutcome::Full);
    }

    #[test]
    fn coalescing_reuses_slot_and_pad_identity() {
        let mut q = WriteQueue::new(2);
        q.try_insert(addr(5), [1; 64], None);
        let out = q.try_insert(addr(5), [2; 64], None);
        assert_eq!(out, InsertOutcome::Coalesced { slot: 0 });
        assert_eq!(q.len(), 1);
        assert_eq!(q.lookup(addr(5)).unwrap().payload, [2; 64]);
    }

    #[test]
    fn busy_entries_do_not_coalesce() {
        let mut q = WriteQueue::new(4);
        q.try_insert(addr(5), [1; 64], None);
        let fetched = q.fetch_oldest().unwrap();
        assert_eq!(fetched.slot, 0);
        // Same address now allocates a fresh slot.
        let out = q.try_insert(addr(5), [2; 64], None);
        assert_eq!(out, InsertOutcome::Inserted { slot: 1 });
        // Tag array points at the freshest copy.
        assert_eq!(q.lookup(addr(5)).unwrap().payload, [2; 64]);
    }

    #[test]
    fn fetch_and_clear_cycle_the_ring() {
        let mut q = WriteQueue::new(2);
        q.try_insert(addr(0), [0; 64], None);
        q.try_insert(addr(1), [1; 64], None);
        assert!(q.is_full());
        let e = q.fetch_oldest().unwrap();
        // Fetched-but-not-cleared still occupies the slot.
        assert!(q.is_full());
        q.clear(e.slot);
        assert!(!q.is_full());
        // Ring wraps: new insert lands in slot 0.
        assert_eq!(
            q.try_insert(addr(2), [2; 64], None),
            InsertOutcome::Inserted { slot: 0 }
        );
    }

    #[test]
    fn fetch_on_empty_returns_none() {
        let mut q = WriteQueue::new(2);
        assert!(q.fetch_oldest().is_none());
        q.try_insert(addr(0), [0; 64], None);
        let e = q.fetch_oldest().unwrap();
        // Only one entry: nothing further to fetch while it is in flight.
        assert!(q.fetch_oldest().is_none());
        q.clear(e.slot);
        assert!(q.fetch_oldest().is_none());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_clear_panics() {
        let mut q = WriteQueue::new(3);
        q.try_insert(addr(0), [0; 64], None);
        q.try_insert(addr(1), [1; 64], None);
        let _ = q.fetch_oldest().unwrap();
        q.clear(1);
    }

    #[test]
    fn occupied_in_order_is_fetch_order() {
        let mut q = WriteQueue::new(3);
        q.try_insert(addr(10), [0; 64], None);
        q.try_insert(addr(11), [1; 64], None);
        let e = q.fetch_oldest().unwrap();
        q.clear(e.slot);
        q.try_insert(addr(12), [2; 64], None);
        let order: Vec<u64> = q
            .occupied_in_order()
            .iter()
            .map(|e| e.addr.line_index())
            .collect();
        assert_eq!(order, vec![11, 12]);
    }

    #[test]
    fn set_mac_updates_entry() {
        let mut q = WriteQueue::new(2);
        q.try_insert(addr(0), [0; 64], None);
        q.set_mac(0, [9; 8]);
        assert_eq!(q.lookup(addr(0)).unwrap().mac, Some([9; 8]));
    }

    #[test]
    fn clear_all_resets_ring() {
        let mut q = WriteQueue::new(2);
        q.try_insert(addr(0), [0; 64], None);
        q.clear_all();
        assert!(q.is_empty());
        assert!(!q.is_full());
        assert!(q.lookup(addr(0)).is_none());
    }

    #[test]
    fn traced_ops_emit_occupancy_samples_without_changing_outcomes() {
        let mut plain = WriteQueue::new(2);
        let mut traced = WriteQueue::new(2);
        traced.set_trace_mode(TraceMode::Record);
        let t = Cycle::new(7);
        for (i, a) in [0u64, 0, 1].iter().enumerate() {
            let expect = plain.try_insert(addr(*a), [i as u8; 64], None);
            let got = traced.try_insert_at(t, addr(*a), [i as u8; 64], None);
            assert_eq!(expect, got);
        }
        let e = traced.fetch_oldest().unwrap();
        traced.clear_at(Cycle::new(9), e.slot);
        let events = traced.take_trace_events();
        let occupancy: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::WpqOccupancy)
            .map(|e| e.value)
            .collect();
        // insert(1), coalesce(1), insert(2), retire(1).
        assert_eq!(occupancy, vec![1, 1, 2, 1]);
        assert!(events.iter().any(|e| e.kind == EventKind::WpqCoalesce));
        assert!(events.iter().any(|e| e.kind == EventKind::WpqRetire));
        // An untraced queue emits nothing.
        assert!(plain.take_trace_events().is_empty());
    }

    #[test]
    fn stats_track_events() {
        let mut q = WriteQueue::new(1);
        q.try_insert(addr(0), [0; 64], None);
        q.try_insert(addr(1), [1; 64], None); // full
        q.try_insert(addr(0), [2; 64], None); // coalesce
        let s = q.stats();
        assert_eq!(s.get("wpq.inserts"), Some(1.0));
        assert_eq!(s.get("wpq.full_events"), Some(1.0));
        assert_eq!(s.get("wpq.coalesces"), Some(1.0));
    }
}
