//! Bank-sharded Write Pending Queues.
//!
//! Real DDR-T/NVM parts expose bank-level parallelism: independent banks
//! service writes concurrently, and only same-bank operations serialize.
//! [`BankSet`] models that by sharding the ADR-protected WPQ into one
//! [`WriteQueue`] per bank plus one *busy-until* timestamp per bank (the
//! per-bank analogue of the controller's old global drain-completion clamp).
//!
//! The shard an address belongs to is a pure function of the line address
//! ([`LineAddr::bank_index`]), so an address always lands in — and
//! coalesces/replays within — the same shard. Slot identity stays global:
//! shard `b`'s local slot `s` is exposed as global slot
//! `b * per_bank_capacity + s`, which is what the Mi-SU pad array is keyed
//! by.
//!
//! With `banks == 1` a `BankSet` is a thin wrapper around a single
//! [`WriteQueue`]: every operation forwards to shard 0 with an identity slot
//! mapping, so timing, statistics, and trace output are byte-identical to
//! the unbanked model (pinned by the lockstep tests in
//! `tests/bankset_props.rs`).

use dolos_crypto::mac::Mac64;
use dolos_sim::stats::StatSet;
use dolos_sim::trace::{EventKind, TraceEvent, TraceMode};
use dolos_sim::Cycle;

use crate::{
    addr::LineAddr,
    wpq::{InsertOutcome, WpqEntry, WriteQueue},
    Line,
};

/// A set of per-bank WPQ shards with per-bank drain-busy timestamps.
///
/// # Examples
///
/// ```
/// use dolos_nvm::{addr::LineAddr, bank::BankSet, wpq::InsertOutcome};
/// use dolos_sim::Cycle;
///
/// let mut set = BankSet::new(2, 2);
/// let a = LineAddr::from_index(0); // bank 0
/// let b = LineAddr::from_index(1); // bank 1
/// assert_eq!(set.bank_of(a), 0);
/// assert_eq!(set.bank_of(b), 1);
/// let out = set.try_insert_at(Cycle::ZERO, b, [1; 64], None);
/// // Bank 1's local slot 0 is global slot 2 (1 * per_bank_capacity + 0).
/// assert!(matches!(out, InsertOutcome::Inserted { slot: 2 }));
/// ```
#[derive(Debug, Clone)]
pub struct BankSet {
    shards: Vec<WriteQueue>,
    /// Per-bank drain serialization point: a bank's next drain cannot
    /// complete before its previous drain did.
    busy_until: Vec<Cycle>,
    per_bank_capacity: usize,
}

impl BankSet {
    /// Creates `banks` shards of `per_bank_capacity` slots each.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or `per_bank_capacity` is
    /// zero.
    pub fn new(banks: usize, per_bank_capacity: usize) -> Self {
        assert!(
            banks.is_power_of_two(),
            "bank count must be a power of two, got {banks}"
        );
        Self {
            shards: (0..banks)
                .map(|_| WriteQueue::new(per_bank_capacity))
                .collect(),
            busy_until: vec![Cycle::ZERO; banks],
            per_bank_capacity,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.shards.len()
    }

    /// Slots per bank.
    pub fn per_bank_capacity(&self) -> usize {
        self.per_bank_capacity
    }

    /// Total slot count across all banks.
    pub fn capacity(&self) -> usize {
        self.banks() * self.per_bank_capacity
    }

    /// The bank `addr` maps to.
    pub fn bank_of(&self, addr: LineAddr) -> usize {
        addr.bank_index(self.banks())
    }

    /// The bank a global slot belongs to.
    pub fn bank_of_slot(&self, slot: usize) -> usize {
        slot / self.per_bank_capacity
    }

    fn global(&self, bank: usize, local: usize) -> usize {
        bank * self.per_bank_capacity + local
    }

    fn globalize(&self, bank: usize, mut entry: WpqEntry) -> WpqEntry {
        entry.slot = self.global(bank, entry.slot);
        entry
    }

    /// Occupied (live + busy) slots across all banks.
    pub fn len(&self) -> usize {
        self.shards.iter().map(WriteQueue::len).sum()
    }

    /// Occupied slots in one bank.
    pub fn bank_len(&self, bank: usize) -> usize {
        self.shards[bank].len()
    }

    /// Whether every bank is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(WriteQueue::is_empty)
    }

    /// Whether `bank`'s shard is full at its insertion point.
    pub fn is_full(&self, bank: usize) -> bool {
        self.shards[bank].is_full()
    }

    /// The global slot the next insertion into `bank` will occupy, or
    /// `None` if that shard is full.
    pub fn next_insert_slot(&self, bank: usize) -> Option<usize> {
        self.shards[bank]
            .next_insert_slot()
            .map(|local| self.global(bank, local))
    }

    /// The global slot a write to `addr` would coalesce into, if any.
    pub fn coalesce_slot(&self, addr: LineAddr) -> Option<usize> {
        let bank = self.bank_of(addr);
        self.shards[bank]
            .coalesce_slot(addr)
            .map(|local| self.global(bank, local))
    }

    /// Attempts to insert a write into its address's bank, with a cycle
    /// stamp for tracing. Returned slots are global.
    pub fn try_insert_at(
        &mut self,
        now: Cycle,
        addr: LineAddr,
        payload: Line,
        mac: Option<Mac64>,
    ) -> InsertOutcome {
        let bank = self.bank_of(addr);
        match self.shards[bank].try_insert_at(now, addr, payload, mac) {
            InsertOutcome::Inserted { slot } => InsertOutcome::Inserted {
                slot: self.global(bank, slot),
            },
            InsertOutcome::Coalesced { slot } => InsertOutcome::Coalesced {
                slot: self.global(bank, slot),
            },
            InsertOutcome::Full => InsertOutcome::Full,
        }
    }

    /// Sets the MAC of an occupied global slot (Post-WPQ computes MACs
    /// after insertion).
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn set_mac(&mut self, slot: usize, mac: Mac64) {
        let bank = self.bank_of_slot(slot);
        self.shards[bank].set_mac(slot % self.per_bank_capacity, mac);
    }

    /// Looks up the freshest entry for `addr` via its bank's volatile tag
    /// array, returning a copy with a globalized slot.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<WpqEntry> {
        let bank = self.bank_of(addr);
        let entry = *self.shards[bank].lookup(addr)?;
        Some(self.globalize(bank, entry))
    }

    /// Returns the oldest unfetched entry of `bank` and marks it busy, or
    /// `None` if every entry in that bank has been fetched.
    pub fn fetch_oldest(&mut self, bank: usize) -> Option<WpqEntry> {
        let entry = self.shards[bank].fetch_oldest()?;
        Some(self.globalize(bank, entry))
    }

    /// Marks the entry at `slot` (global) cleared, with a cycle stamp.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not its bank's current fetch head or is not busy.
    pub fn clear_at(&mut self, now: Cycle, slot: usize) {
        let bank = self.bank_of_slot(slot);
        self.shards[bank].clear_at(now, slot % self.per_bank_capacity);
    }

    /// Clamps a drain completion time against `bank`'s previous drain:
    /// returns — and records as the new busy-until — the later of the two.
    /// Same-bank drains serialize; different banks proceed independently.
    pub fn note_drain_done(&mut self, bank: usize, done: Cycle) -> Cycle {
        let clamped = self.busy_until[bank].max(done);
        self.busy_until[bank] = clamped;
        clamped
    }

    /// The cycle `bank`'s most recent drain completes.
    pub fn busy_until(&self, bank: usize) -> Cycle {
        self.busy_until[bank]
    }

    /// All occupied entries in drain order, bank-major: bank 0's fetch
    /// order, then bank 1's, and so on — the ADR dump set. Per-address
    /// ordering is preserved because an address always maps to one bank.
    pub fn occupied_in_order(&self) -> Vec<WpqEntry> {
        let mut out = Vec::new();
        for (bank, shard) in self.shards.iter().enumerate() {
            out.extend(
                shard
                    .occupied_in_order()
                    .into_iter()
                    .map(|e| self.globalize(bank, e)),
            );
        }
        out
    }

    /// Empties every shard and rewinds every busy-until clock (after an
    /// ADR drain or recovery replay).
    pub fn clear_all(&mut self) {
        for shard in &mut self.shards {
            shard.clear_all();
        }
        for busy in &mut self.busy_until {
            *busy = Cycle::ZERO;
        }
    }

    /// Disables (or re-enables) every shard's volatile tag array.
    pub fn set_coalescing(&mut self, enabled: bool) {
        for shard in &mut self.shards {
            shard.set_coalescing(enabled);
        }
    }

    /// Installs the event-tracing mode on every shard.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        for shard in &mut self.shards {
            shard.set_trace_mode(mode);
        }
    }

    /// Drains buffered trace events from every shard, bank-major. Each
    /// bank's [`EventKind::WpqOccupancy`] samples are tagged with the bank
    /// index in their `addr` field, so per-bank occupancy is recoverable;
    /// bank 0 keeps `addr == 0`, preserving single-bank byte identity.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for (bank, shard) in self.shards.iter_mut().enumerate() {
            let mut events = shard.take_trace_events();
            for event in &mut events {
                if event.kind == EventKind::WpqOccupancy {
                    event.addr = bank as u64;
                }
            }
            out.extend(events);
        }
        out
    }

    /// Merged statistics: shard counters (inserts, coalesces, full events,
    /// read hits, capacity) sum across banks, so the single-bank snapshot
    /// equals the plain [`WriteQueue`] one.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        for shard in &self.shards {
            s.merge(&shard.stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> LineAddr {
        LineAddr::from_index(n)
    }

    #[test]
    fn slots_are_globalized_per_bank() {
        let mut set = BankSet::new(4, 3);
        // Line indices 0..4 hit banks 0..4 in order (below the fold window).
        for i in 0..4u64 {
            let out = set.try_insert_at(Cycle::ZERO, addr(i), [i as u8; 64], None);
            assert_eq!(
                out,
                InsertOutcome::Inserted {
                    slot: i as usize * 3
                }
            );
        }
        assert_eq!(set.len(), 4);
        for bank in 0..4 {
            assert_eq!(set.bank_len(bank), 1);
        }
    }

    #[test]
    fn full_is_per_bank() {
        let mut set = BankSet::new(2, 1);
        assert!(matches!(
            set.try_insert_at(Cycle::ZERO, addr(0), [0; 64], None),
            InsertOutcome::Inserted { slot: 0 }
        ));
        // Bank 0 is full; a second distinct bank-0 address bounces...
        assert_eq!(
            set.try_insert_at(Cycle::ZERO, addr(2), [1; 64], None),
            InsertOutcome::Full
        );
        // ...but bank 1 still accepts.
        assert!(matches!(
            set.try_insert_at(Cycle::ZERO, addr(1), [2; 64], None),
            InsertOutcome::Inserted { slot: 1 }
        ));
        assert!(set.is_full(0));
        assert!(set.next_insert_slot(0).is_none());
    }

    #[test]
    fn coalescing_stays_within_the_bank() {
        let mut set = BankSet::new(2, 2);
        set.try_insert_at(Cycle::ZERO, addr(1), [1; 64], None);
        assert_eq!(set.coalesce_slot(addr(1)), Some(2));
        let out = set.try_insert_at(Cycle::ZERO, addr(1), [9; 64], None);
        assert_eq!(out, InsertOutcome::Coalesced { slot: 2 });
        assert_eq!(set.lookup(addr(1)).unwrap().payload, [9; 64]);
        assert_eq!(set.lookup(addr(1)).unwrap().slot, 2);
    }

    #[test]
    fn fetch_and_clear_round_trip_globally() {
        let mut set = BankSet::new(2, 2);
        set.try_insert_at(Cycle::ZERO, addr(1), [7; 64], None);
        assert!(set.fetch_oldest(0).is_none());
        let e = set.fetch_oldest(1).unwrap();
        assert_eq!(e.slot, 2);
        assert_eq!(e.payload, [7; 64]);
        set.clear_at(Cycle::new(10), e.slot);
        assert!(set.is_empty());
    }

    #[test]
    fn drain_clamp_serializes_within_a_bank_only() {
        let mut set = BankSet::new(2, 2);
        assert_eq!(set.note_drain_done(0, Cycle::new(100)), Cycle::new(100));
        // An earlier completion in the same bank clamps up.
        assert_eq!(set.note_drain_done(0, Cycle::new(40)), Cycle::new(100));
        // The other bank is unaffected.
        assert_eq!(set.note_drain_done(1, Cycle::new(40)), Cycle::new(40));
        assert_eq!(set.busy_until(0), Cycle::new(100));
        assert_eq!(set.busy_until(1), Cycle::new(40));
        set.clear_all();
        assert_eq!(set.busy_until(0), Cycle::ZERO);
    }

    #[test]
    fn occupied_in_order_is_bank_major() {
        let mut set = BankSet::new(2, 2);
        set.try_insert_at(Cycle::ZERO, addr(1), [1; 64], None); // bank 1
        set.try_insert_at(Cycle::ZERO, addr(0), [0; 64], None); // bank 0
        let order: Vec<u64> = set
            .occupied_in_order()
            .iter()
            .map(|e| e.addr.line_index())
            .collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn occupancy_trace_events_carry_the_bank_index() {
        let mut set = BankSet::new(2, 2);
        set.set_trace_mode(TraceMode::Record);
        set.try_insert_at(Cycle::new(5), addr(0), [0; 64], None); // bank 0
        set.try_insert_at(Cycle::new(6), addr(1), [1; 64], None); // bank 1
        let events = set.take_trace_events();
        let occ: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.kind == EventKind::WpqOccupancy)
            .map(|e| (e.addr, e.value))
            .collect();
        assert_eq!(occ, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn stats_sum_across_banks() {
        let mut set = BankSet::new(2, 2);
        set.try_insert_at(Cycle::ZERO, addr(0), [0; 64], None);
        set.try_insert_at(Cycle::ZERO, addr(1), [1; 64], None);
        set.try_insert_at(Cycle::ZERO, addr(1), [2; 64], None); // coalesce
        let s = set.stats();
        assert_eq!(s.get("wpq.inserts"), Some(2.0));
        assert_eq!(s.get("wpq.coalesces"), Some(1.0));
        assert_eq!(s.get("wpq.capacity"), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bank_count_panics() {
        let _ = BankSet::new(6, 2);
    }
}
