//! Lockstep differential pins: the T-table AES fast path against the
//! retained byte-oriented reference, and the allocation-free pad paths
//! against `generate_pad`.
//!
//! The fast path is the single function every simulated pad byte, MAC tag
//! and tree node flows through; any divergence from the reference would
//! silently change ciphertexts, MACs and therefore recovery/conformance
//! behaviour everywhere. These tests are the contract that lets the rest of
//! the workspace treat `encrypt_block` as *the* FIPS-197 cipher.

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::{generate_pad, pad_into, pad_line, IvBuilder, MAX_PAD_BYTES};
use dolos_sim::rng::XorShift;

fn random_bytes16(rng: &mut XorShift) -> [u8; 16] {
    let mut b = [0u8; 16];
    for chunk in b.chunks_exact_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    b
}

/// Seeded random keys × random blocks: fast path == reference, bit for bit.
#[test]
fn fast_aes_matches_reference_on_random_keys_and_blocks() {
    let mut rng = XorShift::new(0x00d0_105a_e5f0_0d5e);
    for _ in 0..64 {
        let key = Aes128::new(&random_bytes16(&mut rng));
        for _ in 0..256 {
            let pt = random_bytes16(&mut rng);
            assert_eq!(key.encrypt_block(&pt), key.encrypt_block_reference(&pt));
        }
    }
}

/// FIPS-197 Appendix B through the fast path.
#[test]
fn fast_aes_fips197_appendix_b() {
    let key = Aes128::new(&[
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ]);
    let ct = key.encrypt_block(&[
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ]);
    assert_eq!(
        ct,
        [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32
        ]
    );
}

/// FIPS-197 Appendix C.1 through the fast path.
#[test]
fn fast_aes_fips197_appendix_c1() {
    let mut kb = [0u8; 16];
    for (i, b) in kb.iter_mut().enumerate() {
        *b = i as u8;
    }
    let mut pt = [0u8; 16];
    for (i, b) in pt.iter_mut().enumerate() {
        *b = (i as u8) * 0x11;
    }
    assert_eq!(
        Aes128::new(&kb).encrypt_block(&pt),
        [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a
        ]
    );
}

/// `pad_line` equals `generate_pad(.., 64)` across an address × counter
/// sweep covering page boundaries and counter bit edges.
#[test]
fn pad_line_matches_generate_pad_across_sweeps() {
    let key = Aes128::new(&[0x5a; 16]);
    let addresses = [0u64, 64, 4032, 4096, 4160, 1 << 20, (1 << 40) - 64];
    let counters = [0u64, 1, 255, 256, 65535, 1 << 32, u64::MAX];
    for &addr in &addresses {
        for &ctr in &counters {
            let iv = IvBuilder::new().address(addr).counter(ctr).build();
            assert_eq!(
                pad_line(&key, &iv).to_vec(),
                generate_pad(&key, &iv, 64),
                "addr {addr:#x} counter {ctr:#x}"
            );
        }
    }
}

/// `pad_into` equals `generate_pad` for every length class, including
/// partial tail blocks and the 256-block maximum.
#[test]
fn pad_into_matches_generate_pad_across_lengths() {
    let key = Aes128::new(&[0x33; 16]);
    let iv = IvBuilder::new().address(8192).counter(99).build();
    for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 512, MAX_PAD_BYTES] {
        let mut buf = vec![0xAB; len];
        pad_into(&key, &iv, &mut buf);
        assert_eq!(buf, generate_pad(&key, &iv, len), "len {len}");
    }
}

/// A maximum-length pad never repeats a 16-byte block: all 256 block
/// indices produce distinct pad material (the wraparound bug this PR fixes
/// would have made blocks 256+ collide with blocks 0+; the guard now caps
/// the pad at exactly the collision-free range).
#[test]
fn max_length_pad_blocks_are_pairwise_distinct() {
    let key = Aes128::new(&[0x77; 16]);
    let iv = IvBuilder::new().address(0x2040).counter(5).build();
    let pad = generate_pad(&key, &iv, MAX_PAD_BYTES);
    let mut blocks: Vec<&[u8]> = pad.chunks_exact(16).collect();
    assert_eq!(blocks.len(), 256);
    blocks.sort();
    blocks.dedup();
    assert_eq!(blocks.len(), 256, "pad material repeated within one IV");
}
