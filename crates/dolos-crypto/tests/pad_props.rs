//! Property tests for counter-mode pad pre-generation.
//!
//! The security of the whole design rests on the pad being a one-time
//! pad: every distinct (cacheline, counter) pair must map to a distinct
//! pad, including across counter-increment boundaries where a truncated
//! serialization would silently wrap. These tests pin that property with
//! seeded sweeps and with the exact boundary values that defeat
//! narrower-than-64-bit counter fields.

use std::collections::BTreeSet;

use dolos_crypto::aes::Aes128;
use dolos_crypto::ctr::{generate_pad, pad_into, IvBuilder, MAX_PAD_BYTES};
use dolos_sim::rng::XorShift;

const LINE: usize = 64;

fn key() -> Aes128 {
    Aes128::new(&[0x3C; 16])
}

/// Counter values straddling every byte-width boundary a truncated IV
/// field could wrap at, plus the extremes.
fn boundary_counters() -> Vec<u64> {
    let mut counters = vec![0, 1, u64::MAX - 1, u64::MAX];
    for bits in [8, 16, 32, 40, 48, 56] {
        let edge = 1u64 << bits;
        counters.extend([edge - 1, edge, edge + 1]);
    }
    counters
}

#[test]
fn encrypt_then_decrypt_round_trips_across_counter_boundaries() {
    let key = key();
    let plaintext: Vec<u8> = (0..LINE as u8).map(|b| b.wrapping_mul(37)).collect();
    for counter in boundary_counters() {
        let iv = IvBuilder::new()
            .address(3 * 4096 + 128)
            .counter(counter)
            .build();
        let pad = generate_pad(&key, &iv, LINE);
        let mut data = plaintext.clone();
        dolos_crypto::ctr::xor_in_place(&mut data, &pad);
        assert_ne!(data, plaintext, "counter {counter:#x}: pad was all-zero");
        dolos_crypto::ctr::xor_in_place(&mut data, &pad);
        assert_eq!(data, plaintext, "counter {counter:#x}: round trip failed");
    }
}

#[test]
fn counter_wraparound_never_reuses_a_pad() {
    // The regression this pins: a 56-bit counter field makes counter 2^56
    // serialize identically to counter 0, so the pads collide and the
    // "one-time" pad is used twice. Every boundary pair must stay distinct.
    let key = key();
    let mut pads: BTreeSet<Vec<u8>> = BTreeSet::new();
    let counters = boundary_counters();
    for &counter in &counters {
        let iv = IvBuilder::new().address(0).counter(counter).build();
        let pad = generate_pad(&key, &iv, LINE);
        assert!(
            pads.insert(pad),
            "pad reuse at counter {counter:#x} (collides with an earlier boundary value)"
        );
    }
    // The historical collision, spelled out: 2^56 vs 0.
    let low = generate_pad(&key, &IvBuilder::new().counter(0).build(), LINE);
    let wrapped = generate_pad(&key, &IvBuilder::new().counter(1 << 56).build(), LINE);
    assert_ne!(low, wrapped, "counter bit 56 is not reaching the IV");
}

#[test]
fn distinct_line_counter_pairs_get_distinct_pads() {
    // Seeded sweep over (address, counter) pairs mixing dense low values
    // with boundary-straddling high ones. Dedup the pairs, then demand
    // pad uniqueness across the whole set.
    let key = key();
    let mut rng = XorShift::new(0x9AD5_11FE);
    let mut pairs: BTreeSet<(u64, u64)> = BTreeSet::new();
    for &counter in &boundary_counters() {
        for line in 0..4u64 {
            pairs.insert((line * 64, counter));
        }
    }
    while pairs.len() < 600 {
        let addr = rng.next_below(1 << 20) * 64;
        let counter = if rng.chance(0.5) {
            rng.next_below(1 << 10)
        } else {
            rng.next_u64()
        };
        pairs.insert((addr, counter));
    }
    let mut pads: BTreeSet<Vec<u8>> = BTreeSet::new();
    for &(addr, counter) in &pairs {
        let iv = IvBuilder::new().address(addr).counter(counter).build();
        let pad = generate_pad(&key, &iv, LINE);
        assert!(
            pads.insert(pad),
            "pad reuse for line {addr:#x} counter {counter:#x}"
        );
    }
    assert_eq!(pads.len(), pairs.len());
}

#[test]
fn pad_pre_generation_is_path_independent() {
    // The Mi-SU pre-generates pads at boot from (slot, register) long
    // before any data arrives; the Ma-SU derives the same IV from the
    // write's address at drain time. Both builder paths must agree, and
    // the pad must depend on nothing but the IV.
    let key = key();
    for (addr, counter) in [(0u64, 7u64), (5 * 4096 + 9 * 64, 1 << 56), (64, u64::MAX)] {
        let by_address = IvBuilder::new().address(addr).counter(counter).build();
        let by_fields = IvBuilder::new()
            .page_id(addr / 4096)
            .page_offset(((addr % 4096) / 64) as u16)
            .counter(counter)
            .build();
        assert_eq!(by_address, by_fields);
        assert_eq!(
            generate_pad(&key, &by_address, LINE),
            generate_pad(&key, &by_fields, LINE)
        );
    }
}

#[test]
fn blocks_within_a_line_use_distinct_pad_material() {
    let key = key();
    let iv = IvBuilder::new().address(4096).counter(1 << 56).build();
    let pad = generate_pad(&key, &iv, LINE);
    let blocks: BTreeSet<&[u8]> = pad.chunks(16).collect();
    assert_eq!(blocks.len(), 4, "16-byte blocks within a line must differ");
}

#[test]
fn block_index_wraparound_is_rejected_not_wrapped() {
    // The block-index field of the IV is one byte, so a single IV can
    // yield at most 256 distinct AES blocks (4 KiB). The historical bug:
    // `generate_pad` cast the block counter with `as u8`, so a 4 KiB + 16 B
    // request silently computed block 256 with index 0 — byte-for-byte
    // pad reuse, the same one-time-pad violation class as the 56-bit
    // counter truncation pinned above. Over-range requests must panic.
    let key = key();
    let iv = IvBuilder::new().address(0).counter(3).build();

    // In range: exactly 256 blocks, all distinct.
    let max = generate_pad(&key, &iv, MAX_PAD_BYTES);
    let blocks: BTreeSet<&[u8]> = max.chunks(16).collect();
    assert_eq!(blocks.len(), 256, "block indices wrapped within one page");

    // Out of range: reject loudly instead of reusing block 0's pad.
    let outcome = std::panic::catch_unwind(|| {
        let key = Aes128::new(&[0x3C; 16]);
        let iv = IvBuilder::new().address(0).counter(3).build();
        generate_pad(&key, &iv, MAX_PAD_BYTES + 16)
    });
    assert!(
        outcome.is_err(),
        "generate_pad accepted a length beyond the block-index range"
    );

    // pad_into enforces the same bound on caller-owned buffers.
    let outcome = std::panic::catch_unwind(|| {
        let key = Aes128::new(&[0x3C; 16]);
        let iv = IvBuilder::new().address(0).counter(3).build();
        let mut buf = vec![0u8; MAX_PAD_BYTES + 1];
        pad_into(&key, &iv, &mut buf);
    });
    assert!(
        outcome.is_err(),
        "pad_into accepted a length beyond the block-index range"
    );
}
