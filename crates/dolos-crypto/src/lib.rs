//! Functional cryptography for the Dolos secure-memory model.
//!
//! The paper models crypto engines purely by latency (Table 1: AES 40 cycles,
//! MAC 160 cycles). This crate implements the *functional* side from scratch
//! so the rest of the workspace can verify real ciphertext, real MACs, and
//! real Merkle-tree roots across crashes and attacks:
//!
//! * [`aes`] — AES-128 block encryption (FIPS-197, encrypt-only): a
//!   T-table fast path ([`Aes128::encrypt_block`]) plus the retained
//!   byte-oriented reference it is lockstep-tested against;
//! * [`ctr`] — counter-mode pad generation with the paper's IV layout
//!   (page ID ‖ page offset ‖ counter ‖ padding, Figure 2); hot paths use
//!   the allocation-free [`ctr::pad_line`] / [`ctr::pad_into`];
//! * [`mac`] — AES-CBC-MAC with 64-bit truncated tags (8-byte MACs, as the
//!   paper assumes for WPQ entries and BMT nodes), with a streaming
//!   [`mac::CbcMac`] for part lists that are never materialized contiguously;
//! * [`latency`] — the cycle costs from Table 1, kept separate from the
//!   functional code so timing-model changes never touch the data path;
//! * [`padcache`] — a direct-mapped memo cache over [`ctr::pad_line`] for
//!   the Ma-SU's hot same-line rewrite/read-back pattern (host-time only:
//!   hit and miss return identical bytes).
//!
//! Simulated timing comes exclusively from [`latency`]; nothing in the
//! functional modules feeds the cycle model, so making this crate faster in
//! wall-clock terms can never move a simulated cycle.
//!
//! # Examples
//!
//! ```
//! use dolos_crypto::{aes::Aes128, ctr::IvBuilder, mac::MacEngine};
//!
//! let key = Aes128::new(&[0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
//!                         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c]);
//! let iv = IvBuilder::new().address(0x4000).counter(7).build();
//! let pad = dolos_crypto::ctr::generate_pad(&key, &iv, 64);
//! assert_eq!(pad.len(), 64);
//!
//! let mac = MacEngine::new([9u8; 16]);
//! let tag = mac.tag(&pad);
//! assert_eq!(tag, mac.tag(&pad)); // deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod latency;
pub mod mac;
pub mod padcache;

pub use aes::Aes128;
pub use ctr::{generate_pad, pad_into, pad_line, Iv, IvBuilder};
pub use mac::{CbcMac, Mac64, MacEngine};
