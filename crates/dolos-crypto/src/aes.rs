//! AES-128 block cipher (FIPS-197), encrypt-only.
//!
//! Counter-mode encryption and CBC-MAC only ever run the cipher in the
//! forward direction, so the inverse cipher is intentionally omitted. Two
//! implementations of the same function live here:
//!
//! * [`Aes128::encrypt_block`] — the hot path: a T-table cipher whose round
//!   tables are precomputed at compile time. One round is 16 table loads,
//!   12 rotates and 16 XORs per block, which is what the workspace-wide
//!   wall-clock budget rests on (every pad byte, MAC tag and tree node in
//!   the simulator funnels through this function).
//! * [`Aes128::encrypt_block_reference`] — the original table-free
//!   byte-oriented cipher, retained verbatim as the auditable specification.
//!   The lockstep suite in `tests/aes_lockstep.rs` pins the fast path
//!   against it over seeded random keys and blocks, and both against the
//!   FIPS-197 appendix vectors.
//!
//! Neither path changes *simulated* timing: the cycle model charges the
//! fixed Table-1 latencies regardless of how fast the host computes the
//! function.

use core::fmt;

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// An AES block.
pub type Block = [u8; BLOCK_SIZE];

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by 2 in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// The round T-table: `TE0[x]` is the MixColumns output column (as a
/// big-endian word, row 0 in the high byte) for an input column whose row-0
/// byte is `SubBytes(x)` and whose other rows are zero:
/// `[2·S(x), S(x), S(x), 3·S(x)]`. The row-1/2/3 tables are byte rotations
/// of this one (`TE0[x].rotate_right(8·r)`), so a single 1 KiB table covers
/// the whole round at the cost of three register rotates.
const TE0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s ^ s2;
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
};

/// Byte-rotated copies of [`TE0`] for rows 1–3, materialized at compile
/// time: four 1 KiB tables trade 3 register rotates per state byte for a
/// direct load each, which measurably matters at ~100M block encrypts per
/// full-scale bench run.
const fn rotated(table: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = table[i].rotate_right(bits);
        i += 1;
    }
    t
}
const TE1: [u32; 256] = rotated(&TE0, 8);
const TE2: [u32; 256] = rotated(&TE0, 16);
const TE3: [u32; 256] = rotated(&TE0, 24);

/// An expanded AES-128 key schedule (11 round keys).
///
/// # Examples
///
/// ```
/// use dolos_crypto::aes::Aes128;
///
/// // FIPS-197 Appendix B vector.
/// let key = Aes128::new(&[0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///                         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c]);
/// let ct = key.encrypt_block(&[0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
///                              0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34]);
/// assert_eq!(ct[0], 0x39);
/// assert_eq!(ct[15], 0x32);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    /// The same schedule as big-endian column words, the layout the T-table
    /// rounds consume (`rk[4r + c]` = round `r`, column `c`).
    rk: [u32; 44],
}

/// Key material must never leak through diagnostics: simulator state
/// (including `Aes128` values inside the Mi-SU/Ma-SU) is routinely
/// `Debug`-formatted into panic messages and chaos/verify JSON reports, so
/// the schedule bytes are redacted rather than derived.
impl fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Aes128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands a 16-byte key into the full round-key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut words = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            words[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&words[4 * r + c]);
            }
        }
        let mut rk = [0u32; 44];
        for (i, w) in rk.iter_mut().enumerate() {
            *w = u32::from_be_bytes(words[i]);
        }
        Self { round_keys, rk }
    }

    /// Encrypts one 16-byte block (T-table fast path).
    ///
    /// Bit-for-bit identical to [`Self::encrypt_block_reference`]; the
    /// lockstep suite and the FIPS-197 vectors pin the equivalence.
    /// `#[inline]` so the CBC-MAC and pad loops (including cross-crate
    /// callers) fold the call away — this function runs ~100M times per
    /// full-scale bench.
    #[inline]
    pub fn encrypt_block(&self, plaintext: &Block) -> Block {
        bytes_from_words(&self.encrypt_words(words_from_bytes(plaintext)))
    }

    /// Encrypts one block given (and returned) in the T-table state
    /// representation: 4 big-endian column words, row 0 in each word's high
    /// byte. Byte-identical to [`Self::encrypt_block`] modulo the
    /// [`words_from_bytes`]/`to_be_bytes` packing. The in-crate CBC-MAC and
    /// CTR loops chain blocks in this domain so the byte↔word conversion
    /// happens once per message, not once per cipher call.
    #[inline]
    pub fn encrypt_words(&self, w: [u32; 4]) -> [u32; 4] {
        let rk = &self.rk;
        let mut w0 = w[0] ^ rk[0];
        let mut w1 = w[1] ^ rk[1];
        let mut w2 = w[2] ^ rk[2];
        let mut w3 = w[3] ^ rk[3];
        // SubBytes ∘ ShiftRows ∘ MixColumns ∘ AddRoundKey, one table lookup
        // per state byte: output column j reads row r from input column
        // j + r (mod 4). Unrolled by hand — with a literal round number every
        // schedule index is a constant, so the 9 rounds compile to straight
        // bounds-check-free loads with no loop-carried register shuffle
        // (measurably faster than the rolled loop on the bench host).
        macro_rules! round {
            ($r:literal) => {
                let t0 = TE0[(w0 >> 24) as usize]
                    ^ TE1[((w1 >> 16) & 0xff) as usize]
                    ^ TE2[((w2 >> 8) & 0xff) as usize]
                    ^ TE3[(w3 & 0xff) as usize]
                    ^ rk[4 * $r];
                let t1 = TE0[(w1 >> 24) as usize]
                    ^ TE1[((w2 >> 16) & 0xff) as usize]
                    ^ TE2[((w3 >> 8) & 0xff) as usize]
                    ^ TE3[(w0 & 0xff) as usize]
                    ^ rk[4 * $r + 1];
                let t2 = TE0[(w2 >> 24) as usize]
                    ^ TE1[((w3 >> 16) & 0xff) as usize]
                    ^ TE2[((w0 >> 8) & 0xff) as usize]
                    ^ TE3[(w1 & 0xff) as usize]
                    ^ rk[4 * $r + 2];
                let t3 = TE0[(w3 >> 24) as usize]
                    ^ TE1[((w0 >> 16) & 0xff) as usize]
                    ^ TE2[((w1 >> 8) & 0xff) as usize]
                    ^ TE3[(w2 & 0xff) as usize]
                    ^ rk[4 * $r + 3];
                w0 = t0;
                w1 = t1;
                w2 = t2;
                w3 = t3;
            };
        }
        round!(1);
        round!(2);
        round!(3);
        round!(4);
        round!(5);
        round!(6);
        round!(7);
        round!(8);
        round!(9);
        // Final round: SubBytes ∘ ShiftRows ∘ AddRoundKey (no MixColumns).
        let sb = |w: u32| SBOX[(w & 0xff) as usize] as u32;
        let t0 = (sb(w0 >> 24) << 24) | (sb(w1 >> 16) << 16) | (sb(w2 >> 8) << 8) | sb(w3);
        let t1 = (sb(w1 >> 24) << 24) | (sb(w2 >> 16) << 16) | (sb(w3 >> 8) << 8) | sb(w0);
        let t2 = (sb(w2 >> 24) << 24) | (sb(w3 >> 16) << 16) | (sb(w0 >> 8) << 8) | sb(w1);
        let t3 = (sb(w3 >> 24) << 24) | (sb(w0 >> 16) << 16) | (sb(w1 >> 8) << 8) | sb(w2);
        [t0 ^ rk[40], t1 ^ rk[41], t2 ^ rk[42], t3 ^ rk[43]]
    }

    /// Encrypts four independent blocks (word representation, see
    /// [`words_from_bytes`]) in one interleaved pass.
    ///
    /// A single CBC chain is latency-bound: each round's table loads wait on
    /// the previous round's result, so the core idles most of its load
    /// ports. Counter-mode pads have no such dependency — the four blocks of
    /// a cacheline pad are independent — and interleaving them per round
    /// converts the load *latency* bound into a load *throughput* bound.
    /// Byte-identical to four [`Self::encrypt_words`] calls.
    #[inline]
    pub fn encrypt_words4(&self, blocks: [[u32; 4]; 4]) -> [[u32; 4]; 4] {
        let rk = &self.rk;
        let mut s = blocks;
        for b in s.iter_mut() {
            b[0] ^= rk[0];
            b[1] ^= rk[1];
            b[2] ^= rk[2];
            b[3] ^= rk[3];
        }
        for round in 1..10 {
            let k0 = rk[4 * round];
            let k1 = rk[4 * round + 1];
            let k2 = rk[4 * round + 2];
            let k3 = rk[4 * round + 3];
            for b in s.iter_mut() {
                let t0 = TE0[(b[0] >> 24) as usize]
                    ^ TE1[((b[1] >> 16) & 0xff) as usize]
                    ^ TE2[((b[2] >> 8) & 0xff) as usize]
                    ^ TE3[(b[3] & 0xff) as usize]
                    ^ k0;
                let t1 = TE0[(b[1] >> 24) as usize]
                    ^ TE1[((b[2] >> 16) & 0xff) as usize]
                    ^ TE2[((b[3] >> 8) & 0xff) as usize]
                    ^ TE3[(b[0] & 0xff) as usize]
                    ^ k1;
                let t2 = TE0[(b[2] >> 24) as usize]
                    ^ TE1[((b[3] >> 16) & 0xff) as usize]
                    ^ TE2[((b[0] >> 8) & 0xff) as usize]
                    ^ TE3[(b[1] & 0xff) as usize]
                    ^ k2;
                let t3 = TE0[(b[3] >> 24) as usize]
                    ^ TE1[((b[0] >> 16) & 0xff) as usize]
                    ^ TE2[((b[1] >> 8) & 0xff) as usize]
                    ^ TE3[(b[2] & 0xff) as usize]
                    ^ k3;
                *b = [t0, t1, t2, t3];
            }
        }
        let sb = |w: u32| SBOX[(w & 0xff) as usize] as u32;
        for b in s.iter_mut() {
            let [w0, w1, w2, w3] = *b;
            let t0 = (sb(w0 >> 24) << 24) | (sb(w1 >> 16) << 16) | (sb(w2 >> 8) << 8) | sb(w3);
            let t1 = (sb(w1 >> 24) << 24) | (sb(w2 >> 16) << 16) | (sb(w3 >> 8) << 8) | sb(w0);
            let t2 = (sb(w2 >> 24) << 24) | (sb(w3 >> 16) << 16) | (sb(w0 >> 8) << 8) | sb(w1);
            let t3 = (sb(w3 >> 24) << 24) | (sb(w0 >> 16) << 16) | (sb(w1 >> 8) << 8) | sb(w2);
            *b = [t0 ^ rk[40], t1 ^ rk[41], t2 ^ rk[42], t3 ^ rk[43]];
        }
        s
    }

    /// Encrypts one 16-byte block with the byte-oriented reference cipher.
    ///
    /// This is the original table-free implementation, kept as the
    /// specification the fast path is differentially tested against. Use
    /// [`Self::encrypt_block`] everywhere else.
    pub fn encrypt_block_reference(&self, plaintext: &Block) -> Block {
        let mut state = *plaintext;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }
}

/// Packs a 16-byte block into the T-table state representation: 4 big-endian
/// column words (`w[c]` = bytes `4c..4c+4`, row 0 in the high byte).
///
/// `bytes_from_words` is the exact inverse; callers that chain blocks through
/// [`Aes128::encrypt_words`] convert once at each end of the message.
#[inline]
pub fn words_from_bytes(b: &Block) -> [u32; 4] {
    [
        u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
        u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
        u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
        u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
    ]
}

/// Unpacks a T-table state (see [`words_from_bytes`]) back into block bytes.
#[inline]
pub fn bytes_from_words(w: &[u32; 4]) -> Block {
    let mut out = [0u8; BLOCK_SIZE];
    out[0..4].copy_from_slice(&w[0].to_be_bytes());
    out[4..8].copy_from_slice(&w[1].to_be_bytes());
    out[8..12].copy_from_slice(&w[2].to_be_bytes());
    out[12..16].copy_from_slice(&w[3].to_be_bytes());
    out
}

#[inline]
fn add_round_key(state: &mut Block, rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// Row-major shift on the column-major state layout: byte `i` sits at
/// row `i % 4`, column `i / 4`.
#[inline]
fn shift_rows(state: &mut Block) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * col + row] = s[4 * ((col + row) % 4) + row];
        }
    }
}

#[inline]
fn mix_columns(state: &mut Block) {
    for col in 0..4 {
        let a0 = state[4 * col];
        let a1 = state[4 * col + 1];
        let a2 = state[4 * col + 2];
        let a3 = state[4 * col + 3];
        let t = a0 ^ a1 ^ a2 ^ a3;
        state[4 * col] = a0 ^ t ^ xtime(a0 ^ a1);
        state[4 * col + 1] = a1 ^ t ^ xtime(a1 ^ a2);
        state[4 * col + 2] = a2 ^ t ^ xtime(a2 ^ a3);
        state[4 * col + 3] = a3 ^ t ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: full known-answer test, both paths.
    #[test]
    fn fips197_appendix_b_vector() {
        let key = Aes128::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(key.encrypt_block(&pt), expected);
        assert_eq!(key.encrypt_block_reference(&pt), expected);
    }

    /// FIPS-197 Appendix C.1: 000102…0f key over 00112233…ff plaintext.
    #[test]
    fn fips197_appendix_c1_vector() {
        let mut kb = [0u8; 16];
        for (i, b) in kb.iter_mut().enumerate() {
            *b = i as u8;
        }
        let key = Aes128::new(&kb);
        let mut pt = [0u8; 16];
        for (i, b) in pt.iter_mut().enumerate() {
            *b = (i as u8) * 0x11;
        }
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(key.encrypt_block(&pt), expected);
        assert_eq!(key.encrypt_block_reference(&pt), expected);
    }

    #[test]
    fn fast_path_matches_reference_on_structured_blocks() {
        // Dense in-module lockstep over structured patterns; the seeded
        // random sweep lives in tests/aes_lockstep.rs.
        let keys = [[0u8; 16], [0xFF; 16], [0xA5; 16], [1; 16]];
        for kb in keys {
            let key = Aes128::new(&kb);
            for i in 0..=255u8 {
                let mut pt = [i; 16];
                pt[(i % 16) as usize] ^= 0x5A;
                assert_eq!(
                    key.encrypt_block(&pt),
                    key.encrypt_block_reference(&pt),
                    "key {kb:02x?} pattern {i}"
                );
            }
        }
    }

    #[test]
    fn interleaved_quad_matches_single_block_path() {
        // encrypt_words4 must be byte-identical to four encrypt_block calls
        // for arbitrary (including equal and structured) inputs.
        let key = Aes128::new(&[0x3Cu8; 16]);
        let mut blocks = [[0u8; 16]; 4];
        for (k, block) in blocks.iter_mut().enumerate() {
            for (i, b) in block.iter_mut().enumerate() {
                *b = (k * 37 + i * 11) as u8;
            }
        }
        blocks[2] = blocks[0]; // duplicate inputs must not interfere
        let quad = key.encrypt_words4([
            words_from_bytes(&blocks[0]),
            words_from_bytes(&blocks[1]),
            words_from_bytes(&blocks[2]),
            words_from_bytes(&blocks[3]),
        ]);
        for (block, words) in blocks.iter().zip(quad.iter()) {
            assert_eq!(bytes_from_words(words), key.encrypt_block(block));
            assert_eq!(bytes_from_words(words), key.encrypt_block_reference(block));
        }
    }

    #[test]
    fn word_packing_round_trips() {
        let mut block = [0u8; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = 0x10 + i as u8;
        }
        assert_eq!(bytes_from_words(&words_from_bytes(&block)), block);
        assert_eq!(words_from_bytes(&block)[0], 0x1011_1213);
    }

    #[test]
    fn different_keys_give_different_ciphertext() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        let pt = [7u8; 16];
        assert_ne!(a.encrypt_block(&pt), b.encrypt_block(&pt));
    }

    #[test]
    fn encryption_is_deterministic() {
        let k = Aes128::new(&[3u8; 16]);
        let pt = [0x5au8; 16];
        assert_eq!(k.encrypt_block(&pt), k.encrypt_block(&pt));
    }

    #[test]
    fn xtime_matches_gf256() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
    }

    #[test]
    fn te0_encodes_mix_column_of_sbox() {
        // Spot-check the const table against the reference primitives.
        for &x in &[0u8, 1, 0x53, 0xFF] {
            let s = SBOX[x as usize];
            let expected = u32::from_be_bytes([xtime(s), s, s, s ^ xtime(s)]);
            assert_eq!(TE0[x as usize], expected, "TE0[{x:#x}]");
        }
    }

    #[test]
    fn debug_output_redacts_the_key_schedule() {
        // The schedule of an all-zero key starts 00…00 then 62 63 63 63;
        // none of those byte spellings may surface in Debug output (panic
        // messages and chaos/verify JSON format simulator state with {:?}).
        let key = Aes128::new(&[0u8; 16]);
        let printed = format!("{key:?}");
        assert!(printed.contains("redacted"), "got: {printed}");
        for rk in &key.round_keys {
            for b in rk {
                // No decimal or hex spelling of any schedule byte beyond
                // the struct name itself.
                assert!(
                    !printed.contains(&format!("{b}, ")) && !printed.contains(&format!("{b:#x}")),
                    "round-key byte {b} leaked into {printed}"
                );
            }
        }
        assert_eq!(format!("{:?}", Aes128::new(&[0x2b; 16])), printed);
    }
}
