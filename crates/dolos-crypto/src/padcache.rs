//! Direct-mapped counter-block pad cache for the Ma-SU hot path.
//!
//! A counter-mode pad is a pure function of `(line address, packed
//! counter)`, so recomputing it costs four serial AES block encryptions of
//! *host* time on every touch of a line — yet the dominant access pattern
//! (write a line, read it back; decrypt-then-reencrypt during a counter
//! overflow) asks for the same `(address, counter)` pair again almost
//! immediately. The simulated AES latency is charged by the Ma-SU's latency
//! model regardless, so memoizing the pad on the host is timing-invisible:
//! a hit and a miss return bit-identical pads and move no simulated cycles.
//!
//! The cache is a fixed-size direct-mapped array indexed by line address —
//! deliberately not a `HashMap` (hasher seeding is nondeterministic) and
//! deliberately allocation-free after construction (the pad path is a
//! hot-alloc lint root). A write bumps the line's counter, maps to the same
//! slot, and overwrites it: stale pads self-invalidate because the counter
//! is part of the match key.
//!
//! # Examples
//!
//! ```
//! use dolos_crypto::aes::Aes128;
//! use dolos_crypto::padcache::PadCache;
//!
//! let key = Aes128::new(&[7; 16]);
//! let mut cache = PadCache::new(64);
//! let miss = cache.pad(&key, 0x40, 3);
//! let hit = cache.pad(&key, 0x40, 3);
//! assert_eq!(miss, hit);
//! assert_eq!(cache.misses(), 1);
//! assert_eq!(cache.hits(), 1);
//! // A counter bump (rewrite) self-invalidates the slot.
//! assert_ne!(cache.pad(&key, 0x40, 4), hit);
//! ```

use crate::aes::Aes128;
use crate::ctr::{pad_line, IvBuilder};

/// Line size covered by one pad, in bytes.
const LINE_SIZE: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: u64,
    counter: u64,
    pad: [u8; LINE_SIZE],
    valid: bool,
}

/// A direct-mapped memo cache from `(line address, packed counter)` to the
/// 64-byte counter-mode pad.
#[derive(Debug, Clone)]
pub struct PadCache {
    slots: Vec<Slot>,
    hits: u64,
    misses: u64,
}

impl PadCache {
    /// Creates a cache with `slots` direct-mapped entries (rounded up to a
    /// power of two, minimum 1).
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1).next_power_of_two();
        PadCache {
            slots: vec![
                Slot {
                    addr: 0,
                    counter: 0,
                    pad: [0; LINE_SIZE],
                    valid: false,
                };
                slots
            ],
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the pad for `(addr, counter)`, computing and caching it on a
    /// miss. Hit or miss, the returned bytes are identical — the cache can
    /// only change host time, never a value.
    pub fn pad(&mut self, key: &Aes128, addr: u64, counter: u64) -> [u8; LINE_SIZE] {
        // Line addresses are 64-byte aligned; drop the dead low bits before
        // indexing so consecutive lines land in consecutive slots.
        let slot = ((addr >> 6) as usize) & (self.slots.len() - 1);
        let entry = &mut self.slots[slot];
        if entry.valid && entry.addr == addr && entry.counter == counter {
            self.hits += 1;
            return entry.pad;
        }
        self.misses += 1;
        let iv = IvBuilder::new().address(addr).counter(counter).build();
        let pad = pad_line(key, &iv);
        *entry = Slot {
            addr,
            counter,
            pad,
            valid: true,
        };
        pad
    }

    /// Pad requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Pad requests that recomputed the AES chain.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctr::generate_pad;

    fn key() -> Aes128 {
        Aes128::new(&[9; 16])
    }

    #[test]
    fn hit_returns_the_uncached_pad() {
        let k = key();
        let mut c = PadCache::new(16);
        for (addr, counter) in [(0x40u64, 1u64), (0x80, 2), (0x40, 1), (0x1_0000, 9)] {
            let got = c.pad(&k, addr, counter);
            let iv = IvBuilder::new().address(addr).counter(counter).build();
            assert_eq!(
                got.to_vec(),
                generate_pad(&k, &iv, 64),
                "({addr:#x},{counter})"
            );
        }
        assert_eq!(c.hits(), 1); // only the repeated (0x40, 1) pair
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn counter_bump_invalidates_the_slot() {
        let k = key();
        let mut c = PadCache::new(4);
        let p1 = c.pad(&k, 0x40, 1);
        let p2 = c.pad(&k, 0x40, 2);
        assert_ne!(p1, p2);
        assert_eq!(c.hits(), 0);
        // The old counter now misses (and recomputes correctly).
        assert_eq!(c.pad(&k, 0x40, 1), p1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn conflicting_lines_evict_without_corruption() {
        let k = key();
        let mut c = PadCache::new(1); // every line maps to slot 0
        let a = c.pad(&k, 0x40, 1);
        let b = c.pad(&k, 0x80, 1);
        assert_ne!(a, b);
        assert_eq!(c.pad(&k, 0x40, 1), a); // evicted, recomputed, identical
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn size_rounds_to_power_of_two() {
        assert_eq!(PadCache::new(0).slots.len(), 1);
        assert_eq!(PadCache::new(3).slots.len(), 4);
        assert_eq!(PadCache::new(256).slots.len(), 256);
    }
}
