//! Message authentication codes (AES-CBC-MAC, 64-bit tags).
//!
//! The paper associates an 8-byte MAC with each protected unit (WPQ entry,
//! BMT node, data line). We implement a length-prefixed AES-CBC-MAC and
//! truncate to 64 bits. Length prefixing closes the classic CBC-MAC
//! length-extension weakness for variable-length messages; all MACed objects
//! in this workspace additionally have fixed formats per call site.

use crate::aes::{Aes128, BLOCK_SIZE};

/// A 64-bit truncated MAC tag.
pub type Mac64 = [u8; 8];

/// A keyed MAC engine.
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
///
/// let mac = MacEngine::new([0x42; 16]);
/// let tag = mac.tag(b"persist me");
/// assert!(mac.verify(b"persist me", &tag));
/// assert!(!mac.verify(b"persist mE", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct MacEngine {
    key: Aes128,
}

impl MacEngine {
    /// Creates an engine from a 16-byte key.
    pub fn new(key: [u8; 16]) -> Self {
        Self {
            key: Aes128::new(&key),
        }
    }

    /// Computes the 64-bit tag of `message`.
    pub fn tag(&self, message: &[u8]) -> Mac64 {
        let mut state = [0u8; BLOCK_SIZE];
        // Length prefix block.
        state[0..8].copy_from_slice(&(message.len() as u64).to_le_bytes());
        state = self.key.encrypt_block(&state);
        for chunk in message.chunks(BLOCK_SIZE) {
            for (s, m) in state.iter_mut().zip(chunk.iter()) {
                *s ^= m;
            }
            state = self.key.encrypt_block(&state);
        }
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&state[0..8]);
        tag
    }

    /// Computes a tag over several segments without concatenating them.
    ///
    /// Equivalent to `tag` over the segments joined in order, with each
    /// segment's length folded in, so `(["ab", "c"])` and `(["a", "bc"])`
    /// produce different tags.
    pub fn tag_parts(&self, parts: &[&[u8]]) -> Mac64 {
        let mut state = [0u8; BLOCK_SIZE];
        state[0..8].copy_from_slice(&(parts.len() as u64).to_le_bytes());
        state = self.key.encrypt_block(&state);
        for part in parts {
            let mut len_block = [0u8; BLOCK_SIZE];
            len_block[0..8].copy_from_slice(&(part.len() as u64).to_le_bytes());
            for (s, l) in state.iter_mut().zip(len_block.iter()) {
                *s ^= l;
            }
            state = self.key.encrypt_block(&state);
            for chunk in part.chunks(BLOCK_SIZE) {
                for (s, m) in state.iter_mut().zip(chunk.iter()) {
                    *s ^= m;
                }
                state = self.key.encrypt_block(&state);
            }
        }
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&state[0..8]);
        tag
    }

    /// Verifies `message` against `expected` in constant shape (full compare).
    pub fn verify(&self, message: &[u8], expected: &Mac64) -> bool {
        self.tag(message) == *expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MacEngine {
        MacEngine::new([7u8; 16])
    }

    #[test]
    fn tag_is_deterministic() {
        let m = engine();
        assert_eq!(m.tag(b"hello"), m.tag(b"hello"));
    }

    #[test]
    fn tag_depends_on_message() {
        let m = engine();
        assert_ne!(m.tag(b"hello"), m.tag(b"hellp"));
    }

    #[test]
    fn tag_depends_on_key() {
        let a = MacEngine::new([1u8; 16]);
        let b = MacEngine::new([2u8; 16]);
        assert_ne!(a.tag(b"x"), b.tag(b"x"));
    }

    #[test]
    fn tag_depends_on_length() {
        let m = engine();
        // Same prefix, trailing zero byte vs. absent byte must differ.
        assert_ne!(m.tag(&[0u8; 16]), m.tag(&[0u8; 17]));
        assert_ne!(m.tag(b""), m.tag(&[0u8]));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let m = engine();
        let tag = m.tag(b"wpq entry");
        assert!(m.verify(b"wpq entry", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!m.verify(b"wpq entry", &bad));
    }

    #[test]
    fn tag_parts_is_boundary_sensitive() {
        let m = engine();
        let joined = m.tag_parts(&[b"ab", b"c"]);
        let rejoined = m.tag_parts(&[b"a", b"bc"]);
        assert_ne!(joined, rejoined);
        assert_eq!(m.tag_parts(&[b"ab", b"c"]), joined);
    }

    #[test]
    fn empty_message_tags() {
        let m = engine();
        let t = m.tag(b"");
        assert!(m.verify(b"", &t));
        assert_ne!(t, [0u8; 8]);
    }
}
