//! Message authentication codes (AES-CBC-MAC, 64-bit tags).
//!
//! The paper associates an 8-byte MAC with each protected unit (WPQ entry,
//! BMT node, data line). We implement a length-prefixed AES-CBC-MAC and
//! truncate to 64 bits. Length prefixing closes the classic CBC-MAC
//! length-extension weakness for variable-length messages; all MACed objects
//! in this workspace additionally have fixed formats per call site.

use crate::aes::{Aes128, BLOCK_SIZE};

/// A 64-bit truncated MAC tag.
pub type Mac64 = [u8; 8];

/// The CBC state in the cipher's word representation (see
/// [`crate::aes::words_from_bytes`]). Chaining in this domain skips the
/// byte↔word packing on every cipher call; the packing is a bijection, so
/// tags stay byte-identical to the byte-domain formulation.
type StateWords = [u32; 4];

/// The length-prefix block (`n` little-endian in bytes 0..8, zeros after) in
/// the word representation.
#[inline]
fn len_words(n: u64) -> StateWords {
    let le = n.to_le_bytes();
    [
        u32::from_be_bytes([le[0], le[1], le[2], le[3]]),
        u32::from_be_bytes([le[4], le[5], le[6], le[7]]),
        0,
        0,
    ]
}

/// XORs up to one block of message bytes into the state, zero-padding a
/// short chunk (equivalent to the byte-domain `zip` XOR, which simply
/// leaves trailing state bytes untouched).
#[inline]
fn xor_chunk(state: &mut StateWords, chunk: &[u8]) {
    if chunk.len() == BLOCK_SIZE {
        state[0] ^= u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        state[1] ^= u32::from_be_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        state[2] ^= u32::from_be_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
        state[3] ^= u32::from_be_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
    } else {
        let mut block = [0u8; BLOCK_SIZE];
        block[..chunk.len()].copy_from_slice(chunk);
        state[0] ^= u32::from_be_bytes([block[0], block[1], block[2], block[3]]);
        state[1] ^= u32::from_be_bytes([block[4], block[5], block[6], block[7]]);
        state[2] ^= u32::from_be_bytes([block[8], block[9], block[10], block[11]]);
        state[3] ^= u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    }
}

/// Truncates the final state to the 64-bit tag (state bytes 0..8).
#[inline]
fn truncate_tag(state: &StateWords) -> Mac64 {
    let mut tag = [0u8; 8];
    tag[0..4].copy_from_slice(&state[0].to_be_bytes());
    tag[4..8].copy_from_slice(&state[1].to_be_bytes());
    tag
}

/// A keyed MAC engine.
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
///
/// let mac = MacEngine::new([0x42; 16]);
/// let tag = mac.tag(b"persist me");
/// assert!(mac.verify(b"persist me", &tag));
/// assert!(!mac.verify(b"persist mE", &tag));
/// ```
#[derive(Clone)]
pub struct MacEngine {
    key: Aes128,
    /// `enc_K(len_block(n))` for `n < INIT_CACHE`: the first cipher block of
    /// every tag depends only on the message length (or part count), and the
    /// hot call sites use a handful of small constants (64-byte lines,
    /// 8-child BMT nodes, 3-part data MACs). Caching the encrypted prefix
    /// saves one serial AES call per MAC — 20% of a line tag's cipher work.
    init: [StateWords; INIT_CACHE],
}

/// Cached initial states cover lengths/part counts `0..=64`: every
/// fixed-format MAC in the workspace (line tags, BMT parents, WPQ entries)
/// lands in this range, and larger values fall back to computing the prefix.
const INIT_CACHE: usize = 65;

/// [`MacEngine`] holds values derived from the key (the cached initial
/// states are themselves valid tags of empty part lists), so its `Debug` is
/// redacted down to the cipher's — same rationale as [`Aes128`]'s manual
/// implementation.
impl core::fmt::Debug for MacEngine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MacEngine")
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

impl MacEngine {
    /// Creates an engine from a 16-byte key.
    pub fn new(key: [u8; 16]) -> Self {
        let key = Aes128::new(&key);
        let mut init = [[0u32; 4]; INIT_CACHE];
        for (n, state) in init.iter_mut().enumerate() {
            *state = key.encrypt_words(len_words(n as u64));
        }
        Self { key, init }
    }

    /// The CBC state after absorbing the length-prefix block for `n`.
    #[inline]
    fn initial_state(&self, n: u64) -> StateWords {
        if let Some(state) = self.init.get(n as usize) {
            *state
        } else {
            self.key.encrypt_words(len_words(n))
        }
    }

    /// Computes the 64-bit tag of `message`.
    pub fn tag(&self, message: &[u8]) -> Mac64 {
        // Length prefix block (cached for small lengths).
        let mut state = self.initial_state(message.len() as u64);
        for chunk in message.chunks(BLOCK_SIZE) {
            xor_chunk(&mut state, chunk);
            state = self.key.encrypt_words(state);
        }
        truncate_tag(&state)
    }

    /// Computes a tag over several segments without concatenating them.
    ///
    /// Equivalent to `tag` over the segments joined in order, with each
    /// segment's length folded in, so `(["ab", "c"])` and `(["a", "bc"])`
    /// produce different tags.
    pub fn tag_parts(&self, parts: &[&[u8]]) -> Mac64 {
        let mut state = self.initial_state(parts.len() as u64);
        for part in parts {
            let lw = len_words(part.len() as u64);
            state[0] ^= lw[0];
            state[1] ^= lw[1];
            state = self.key.encrypt_words(state);
            for chunk in part.chunks(BLOCK_SIZE) {
                xor_chunk(&mut state, chunk);
                state = self.key.encrypt_words(state);
            }
        }
        truncate_tag(&state)
    }

    /// Verifies `message` against `expected` in constant shape (full compare).
    pub fn verify(&self, message: &[u8], expected: &Mac64) -> bool {
        self.tag(message) == *expected
    }

    /// Starts a streaming computation equivalent to [`Self::tag_parts`] over
    /// `part_count` parts.
    ///
    /// `tag_parts` folds the part count into the first cipher block, so a
    /// streaming caller must declare it up front. Feed each part with
    /// [`CbcMac::part`] (whole slice) or the
    /// [`CbcMac::begin_part`]/[`CbcMac::update`]/[`CbcMac::end_part`] triple
    /// (scattered bytes), then take the tag with [`CbcMac::finish`]. The
    /// result is byte-identical to `tag_parts` over the same byte
    /// sequences — hot paths use this to MAC table-sized part lists without
    /// first collecting them into a `Vec<&[u8]>` or concatenation buffers.
    pub fn streamer(&self, part_count: usize) -> CbcMac<'_> {
        CbcMac {
            key: &self.key,
            state: self.initial_state(part_count as u64),
            buf: [0u8; BLOCK_SIZE],
            buf_len: 0,
            in_part: false,
            parts_left: part_count,
            expected: 0,
            fed: 0,
        }
    }

    /// Starts a streaming computation equivalent to [`Self::tag`] over a
    /// message of exactly `message_len` bytes.
    ///
    /// `tag` folds the total length into its first cipher block, so a
    /// streaming caller must declare it up front; feeding a different
    /// number of bytes is a logic error and is asserted. The returned
    /// state is already "inside" the single implicit part: feed bytes with
    /// [`CbcMac::update`], then close with [`CbcMac::end_part`] and take
    /// the tag with [`CbcMac::finish`]. The result is byte-identical to
    /// `tag` over the same byte sequence — hot paths use this to MAC
    /// scattered fields without first concatenating them into a `Vec`.
    ///
    /// Unlike [`Self::streamer`]/[`Self::tag_parts`], no per-part length
    /// block is absorbed — the chaining exactly mirrors `tag`'s, so the
    /// two formulations stay interchangeable per call site, never mixed.
    pub fn stream_tag(&self, message_len: u64) -> CbcMac<'_> {
        CbcMac {
            key: &self.key,
            state: self.initial_state(message_len),
            buf: [0u8; BLOCK_SIZE],
            buf_len: 0,
            in_part: true,
            parts_left: 0,
            expected: message_len,
            fed: 0,
        }
    }
}

/// An incremental CBC-MAC over borrowed byte slices.
///
/// Created by [`MacEngine::streamer`]; produces tags byte-identical to
/// [`MacEngine::tag_parts`] without requiring the parts to be materialized
/// contiguously or collected into a slice-of-slices first. Each declared
/// part may itself be fed as several scattered sub-slices; the internal
/// 16-byte buffer reproduces `tag_parts`' chunking exactly, so sub-slice
/// boundaries never affect the tag.
///
/// # Examples
///
/// ```
/// use dolos_crypto::mac::MacEngine;
///
/// let mac = MacEngine::new([7u8; 16]);
/// let mut s = mac.streamer(2);
/// s.part(b"first");
/// s.begin_part(6);
/// s.update(b"sec");
/// s.update(b"ond");
/// s.end_part();
/// assert_eq!(s.finish(), mac.tag_parts(&[b"first", b"second"]));
/// ```
#[derive(Debug)]
pub struct CbcMac<'a> {
    key: &'a Aes128,
    state: StateWords,
    buf: [u8; BLOCK_SIZE],
    buf_len: usize,
    in_part: bool,
    parts_left: usize,
    /// Bytes promised to `begin_part` for the open part.
    expected: u64,
    /// Bytes actually fed via `update` for the open part.
    fed: u64,
}

impl CbcMac<'_> {
    /// Absorbs one whole part.
    pub fn part(&mut self, part: &[u8]) {
        self.begin_part(part.len() as u64);
        self.update(part);
        self.end_part();
    }

    /// Opens a part whose bytes will arrive via [`Self::update`].
    ///
    /// `part_len` must equal the total number of bytes fed before
    /// [`Self::end_part`]; it is folded into the MAC (the length block), so
    /// a mismatch is a logic error and is asserted.
    pub fn begin_part(&mut self, part_len: u64) {
        assert!(!self.in_part, "begin_part called inside an open part");
        assert!(self.parts_left > 0, "more parts fed than declared");
        self.parts_left -= 1;
        self.in_part = true;
        self.buf = [0u8; BLOCK_SIZE];
        self.buf_len = 0;
        self.expected = part_len;
        self.fed = 0;
        let lw = len_words(part_len);
        self.state[0] ^= lw[0];
        self.state[1] ^= lw[1];
        self.state = self.key.encrypt_words(self.state);
    }

    /// Feeds part bytes; may be called any number of times per part.
    pub fn update(&mut self, mut bytes: &[u8]) {
        assert!(self.in_part, "update called outside a part");
        self.fed += bytes.len() as u64;
        while !bytes.is_empty() {
            let take = (BLOCK_SIZE - self.buf_len).min(bytes.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len == BLOCK_SIZE {
                xor_chunk(&mut self.state, &self.buf);
                self.state = self.key.encrypt_words(self.state);
                self.buf_len = 0;
            }
        }
    }

    /// Closes the current part, flushing any partial chunk.
    pub fn end_part(&mut self) {
        assert!(self.in_part, "end_part called outside a part");
        assert_eq!(
            self.fed, self.expected,
            "part length declared to begin_part does not match bytes fed"
        );
        if self.buf_len > 0 {
            xor_chunk(&mut self.state, &self.buf[..self.buf_len]);
            self.state = self.key.encrypt_words(self.state);
            self.buf_len = 0;
        }
        self.in_part = false;
        self.fed = 0;
        self.expected = 0;
    }

    /// Returns the 64-bit tag. All declared parts must have been fed.
    pub fn finish(self) -> Mac64 {
        assert!(!self.in_part, "finish called inside an open part");
        assert_eq!(self.parts_left, 0, "fewer parts fed than declared");
        truncate_tag(&self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MacEngine {
        MacEngine::new([7u8; 16])
    }

    #[test]
    fn tag_is_deterministic() {
        let m = engine();
        assert_eq!(m.tag(b"hello"), m.tag(b"hello"));
    }

    #[test]
    fn tag_depends_on_message() {
        let m = engine();
        assert_ne!(m.tag(b"hello"), m.tag(b"hellp"));
    }

    #[test]
    fn tag_depends_on_key() {
        let a = MacEngine::new([1u8; 16]);
        let b = MacEngine::new([2u8; 16]);
        assert_ne!(a.tag(b"x"), b.tag(b"x"));
    }

    #[test]
    fn tag_depends_on_length() {
        let m = engine();
        // Same prefix, trailing zero byte vs. absent byte must differ.
        assert_ne!(m.tag(&[0u8; 16]), m.tag(&[0u8; 17]));
        assert_ne!(m.tag(b""), m.tag(&[0u8]));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let m = engine();
        let tag = m.tag(b"wpq entry");
        assert!(m.verify(b"wpq entry", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!m.verify(b"wpq entry", &bad));
    }

    #[test]
    fn tag_parts_is_boundary_sensitive() {
        let m = engine();
        let joined = m.tag_parts(&[b"ab", b"c"]);
        let rejoined = m.tag_parts(&[b"a", b"bc"]);
        assert_ne!(joined, rejoined);
        assert_eq!(m.tag_parts(&[b"ab", b"c"]), joined);
    }

    #[test]
    fn empty_message_tags() {
        let m = engine();
        let t = m.tag(b"");
        assert!(m.verify(b"", &t));
        assert_ne!(t, [0u8; 8]);
    }

    /// The byte-domain specification of `tag`, reimplemented over the public
    /// cipher API: length-prefix block, then XOR-encrypt each 16-byte chunk.
    /// Pins the word-domain chaining and the initial-state cache (lengths on
    /// both sides of the cache boundary) to the original formulation.
    fn tag_specification(key_bytes: [u8; 16], msg: &[u8]) -> Mac64 {
        let key = Aes128::new(&key_bytes);
        let mut state = [0u8; BLOCK_SIZE];
        state[0..8].copy_from_slice(&(msg.len() as u64).to_le_bytes());
        state = key.encrypt_block(&state);
        for chunk in msg.chunks(BLOCK_SIZE) {
            for (s, c) in state.iter_mut().zip(chunk.iter()) {
                *s ^= c;
            }
            state = key.encrypt_block(&state);
        }
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&state[0..8]);
        tag
    }

    #[test]
    fn tag_matches_byte_domain_specification() {
        let m = engine();
        for len in [0usize, 1, 7, 15, 16, 17, 63, 64, 65, 128, 200] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            assert_eq!(m.tag(&msg), tag_specification([7u8; 16], &msg), "len {len}");
        }
    }

    #[test]
    fn debug_output_redacts_derived_state() {
        // The cached initial states are key-derived (each is a valid tag of
        // an empty part list), so MacEngine's Debug must not print them.
        let printed = format!("{:?}", engine());
        assert!(printed.contains("redacted"), "got: {printed}");
        assert!(!printed.contains("init"), "got: {printed}");
    }

    #[test]
    fn streamer_matches_tag_parts_whole_slices() {
        let m = engine();
        let cases: &[&[&[u8]]] = &[
            &[],
            &[b""],
            &[b"a"],
            &[b"ab", b"c"],
            &[b"0123456789abcdef"],
            &[b"0123456789abcdef0", b"", b"xyz"],
            &[&[0u8; 8], &[1u8; 8], &[2u8; 8], &[3u8; 24]],
        ];
        for parts in cases {
            let mut s = m.streamer(parts.len());
            for p in *parts {
                s.part(p);
            }
            assert_eq!(s.finish(), m.tag_parts(parts), "parts {parts:?}");
        }
    }

    #[test]
    fn streamer_is_insensitive_to_update_granularity() {
        let m = engine();
        let data: Vec<u8> = (0..=100u8).collect();
        let expected = m.tag_parts(&[&data, b"tail"]);
        for split in [1usize, 3, 7, 16, 17, 64, 100] {
            let mut s = m.streamer(2);
            s.begin_part(data.len() as u64);
            for chunk in data.chunks(split) {
                s.update(chunk);
            }
            s.end_part();
            s.part(b"tail");
            assert_eq!(s.finish(), expected, "split {split}");
        }
    }

    #[test]
    fn stream_tag_matches_tag() {
        let m = engine();
        for len in [0usize, 1, 7, 15, 16, 17, 63, 64, 65, 128, 200] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let expected = m.tag(&msg);
            for split in [1usize, 3, 7, 16, 17, 64] {
                let mut s = m.stream_tag(len as u64);
                for chunk in msg.chunks(split) {
                    s.update(chunk);
                }
                s.end_part();
                assert_eq!(s.finish(), expected, "len {len} split {split}");
            }
            // Single-shot feed (a no-op update loop for the empty message).
            let mut s = m.stream_tag(len as u64);
            s.update(&msg);
            s.end_part();
            assert_eq!(s.finish(), expected, "len {len} whole");
        }
    }

    #[test]
    #[should_panic(expected = "does not match bytes fed")]
    fn stream_tag_rejects_length_mismatch() {
        let m = engine();
        let mut s = m.stream_tag(4);
        s.update(b"12345");
        s.end_part();
    }

    #[test]
    #[should_panic(expected = "does not match bytes fed")]
    fn streamer_rejects_length_mismatch() {
        let m = engine();
        let mut s = m.streamer(1);
        s.begin_part(5);
        s.update(b"only4");
        s.update(b"!");
        // 6 bytes fed against 5 declared.
        s.end_part();
    }

    #[test]
    #[should_panic(expected = "fewer parts fed than declared")]
    fn streamer_rejects_missing_parts() {
        let m = engine();
        let mut s = m.streamer(2);
        s.part(b"only one");
        let _ = s.finish();
    }
}
