//! Cycle-latency model of the cryptographic engines (Table 1 of the paper).
//!
//! Keeping the latency constants separate from the functional crypto lets the
//! sensitivity benches sweep them without touching the data path.

/// Latency of one AES operation (pad generation), in cycles.
pub const AES_LATENCY: u64 = 40;

/// Latency of one MAC computation, in cycles.
pub const MAC_LATENCY: u64 = 160;

/// Number of serial MAC computations for an eager Bonsai-Merkle-Tree update
/// in the Ma-SU ("160×10 cycles for eager update", Table 1).
pub const EAGER_UPDATE_MACS: u64 = 10;

/// Number of serial MAC computations for a lazy (ToC/Phoenix) update in the
/// Ma-SU ("160×4 cycles for lazy update", Table 1).
pub const LAZY_UPDATE_MACS: u64 = 4;

/// The crypto-latency configuration used by a controller instance.
///
/// Defaults reproduce Table 1; benches construct modified copies for
/// sensitivity sweeps.
///
/// # Examples
///
/// ```
/// use dolos_crypto::latency::CryptoLatency;
///
/// let lat = CryptoLatency::default();
/// assert_eq!(lat.eager_update_cycles(), 1600);
/// assert_eq!(lat.lazy_update_cycles(), 640);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoLatency {
    /// Cycles for one AES pad generation.
    pub aes: u64,
    /// Cycles for one MAC computation.
    pub mac: u64,
    /// Serial MACs per eager integrity-tree update.
    pub eager_macs: u64,
    /// Serial MACs per lazy integrity-tree update.
    pub lazy_macs: u64,
}

impl Default for CryptoLatency {
    fn default() -> Self {
        Self {
            aes: AES_LATENCY,
            mac: MAC_LATENCY,
            eager_macs: EAGER_UPDATE_MACS,
            lazy_macs: LAZY_UPDATE_MACS,
        }
    }
}

impl CryptoLatency {
    /// Total cycles for an eager integrity-tree update.
    pub fn eager_update_cycles(&self) -> u64 {
        self.mac * self.eager_macs
    }

    /// Total cycles for a lazy integrity-tree update.
    pub fn lazy_update_cycles(&self) -> u64 {
        self.mac * self.lazy_macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let l = CryptoLatency::default();
        assert_eq!(l.aes, 40);
        assert_eq!(l.mac, 160);
        assert_eq!(l.eager_update_cycles(), 1600);
        assert_eq!(l.lazy_update_cycles(), 640);
    }

    #[test]
    fn sweeps_scale_linearly() {
        let l = CryptoLatency {
            mac: 80,
            ..Default::default()
        };
        assert_eq!(l.eager_update_cycles(), 800);
        assert_eq!(l.lazy_update_cycles(), 320);
    }
}
