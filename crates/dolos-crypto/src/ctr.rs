//! Counter-mode encryption pads with the paper's IV layout.
//!
//! Figure 2 of the paper defines the initialization vector as
//! `Page ID ‖ Page Offset ‖ Counter ‖ Padding`. Encrypting successive IVs
//! (one per 16-byte AES block within the cacheline) produces a one-time pad
//! that is XORed with the plaintext. Because the pad depends only on
//! (address, counter), it can be generated before the data arrives — the
//! property both the Ma-SU decryption-latency hiding and the Mi-SU
//! boot-time pre-generation rely on.

use crate::aes::{bytes_from_words, words_from_bytes, Aes128, Block, BLOCK_SIZE};

/// Bytes per 4 KiB page (64 cachelines of 64 B).
const PAGE_SIZE: u64 = 4096;

/// The initialization vector for one cacheline encryption.
///
/// Split-counter schemes form the IV from the page ID, the cacheline's
/// offset within the page, and the (major, minor) encryption counter. The
/// Mi-SU reuses the same layout with a synthetic "address" equal to the WPQ
/// slot index and the persistent counter register as the counter.
///
/// # Examples
///
/// ```
/// use dolos_crypto::ctr::IvBuilder;
///
/// let iv = IvBuilder::new().address(0x1040).counter(3).build();
/// let same = IvBuilder::new().address(0x1040).counter(3).build();
/// let other = IvBuilder::new().address(0x1040).counter(4).build();
/// assert_eq!(iv, same);
/// assert_ne!(iv, other);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Iv {
    page_id: u64,
    page_offset: u16,
    counter: u64,
}

impl Iv {
    /// The page ID field.
    pub fn page_id(&self) -> u64 {
        self.page_id
    }

    /// The page-offset field (cacheline index within the page).
    pub fn page_offset(&self) -> u16 {
        self.page_offset
    }

    /// The counter field.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Serializes the IV into an AES block, with `block_index` occupying the
    /// padding field so each 16-byte slice of a cacheline gets a distinct IV.
    ///
    /// Layout (little-endian fields):
    ///
    /// ```text
    /// byte  0..5   page ID (low 40 bits; 4 KiB pages cover 2^52 B)
    /// byte  5..7   page offset (cacheline index within the page)
    /// byte  7      block index within the cacheline
    /// byte  8..16  counter, all 64 bits
    /// ```
    ///
    /// The counter field carries the full `u64`: a truncated counter would
    /// reuse a pad once the increment stream crosses the truncation
    /// boundary, which is exactly the one-time-pad violation counter-mode
    /// must never permit. The page-ID field is the one deliberately
    /// narrowed — its 40 bits still address 2^52 bytes of 4 KiB pages,
    /// far beyond any configuration the simulator models.
    fn to_block(self, block_index: u8) -> Block {
        let mut block = [0u8; BLOCK_SIZE];
        block[0..5].copy_from_slice(&self.page_id.to_le_bytes()[0..5]);
        block[5..7].copy_from_slice(&self.page_offset.to_le_bytes());
        block[7] = block_index;
        block[8..16].copy_from_slice(&self.counter.to_le_bytes());
        block
    }

    /// [`Self::to_block`] with block index 0, pre-packed into the cipher's
    /// word representation. The block-index byte is the low byte of word 1
    /// and is zero here, so pad loops derive block `i`'s IV words as
    /// `[w0, w1 ^ i, w2, w3]` (i ≤ 255) without rebuilding and repacking the
    /// byte block per AES call.
    fn to_base_words(self) -> [u32; 4] {
        words_from_bytes(&self.to_block(0))
    }
}

/// Builder for [`Iv`] values.
///
/// Either set the fields directly or derive page ID and offset from a byte
/// address with [`IvBuilder::address`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IvBuilder {
    page_id: u64,
    page_offset: u16,
    counter: u64,
}

impl IvBuilder {
    /// Creates a builder with all-zero fields.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives page ID and page offset from a byte address.
    pub fn address(mut self, addr: u64) -> Self {
        self.page_id = addr / PAGE_SIZE;
        self.page_offset = ((addr % PAGE_SIZE) / 64) as u16;
        self
    }

    /// Sets the page ID directly.
    pub fn page_id(mut self, id: u64) -> Self {
        self.page_id = id;
        self
    }

    /// Sets the page offset (cacheline index within the page) directly.
    pub fn page_offset(mut self, offset: u16) -> Self {
        self.page_offset = offset;
        self
    }

    /// Sets the counter field.
    pub fn counter(mut self, counter: u64) -> Self {
        self.counter = counter;
        self
    }

    /// Builds the IV.
    pub fn build(self) -> Iv {
        Iv {
            page_id: self.page_id,
            page_offset: self.page_offset,
            counter: self.counter,
        }
    }
}

/// Bytes per cacheline, the unit every hot-path pad covers.
pub const LINE_SIZE: usize = 64;

/// The largest pad a single IV can produce: the block-index field of the IV
/// is one byte, so indices 0..=255 are the only distinct per-block IVs.
/// Asking for more would wrap the index and *reuse pad material* — a
/// one-time-pad violation, the same bug class as counter truncation.
pub const MAX_PAD_BYTES: usize = 256 * BLOCK_SIZE;

/// Generates a 64-byte cacheline pad for the given IV without allocating.
///
/// This is the hot path: every simulated line encryption, decryption and
/// recovery probe funnels through here, so the pad is built directly in a
/// stack array (4 AES blocks) instead of a `Vec`. Byte-identical to
/// `generate_pad(key, iv, 64)`.
///
/// # Examples
///
/// ```
/// use dolos_crypto::{aes::Aes128, ctr::{generate_pad, pad_line, IvBuilder}};
///
/// let key = Aes128::new(&[1u8; 16]);
/// let iv = IvBuilder::new().address(0x1040).counter(7).build();
/// assert_eq!(pad_line(&key, &iv).to_vec(), generate_pad(&key, &iv, 64));
/// ```
pub fn pad_line(key: &Aes128, iv: &Iv) -> [u8; LINE_SIZE] {
    let b = iv.to_base_words();
    // The four blocks are independent (distinct block indices), so one
    // interleaved cipher pass keeps the core's load ports busy instead of
    // serializing four latency-bound chains.
    let blocks = key.encrypt_words4([
        b,
        [b[0], b[1] ^ 1, b[2], b[3]],
        [b[0], b[1] ^ 2, b[2], b[3]],
        [b[0], b[1] ^ 3, b[2], b[3]],
    ]);
    let mut pad = [0u8; LINE_SIZE];
    for (chunk, block) in pad.chunks_exact_mut(BLOCK_SIZE).zip(blocks.iter()) {
        chunk.copy_from_slice(&bytes_from_words(block));
    }
    pad
}

/// Fills `pad` with encryption pad bytes for the given IV.
///
/// The caller supplies the buffer, so steady-state users (e.g. the Mi-SU's
/// pre-generated pad slots) can regenerate in place with zero allocation.
/// The final partial block, if any, is produced into a stack scratch block
/// and copied, so `pad` may be any length up to [`MAX_PAD_BYTES`].
///
/// # Panics
///
/// Panics if `pad.len()` exceeds [`MAX_PAD_BYTES`]: the IV's block-index
/// field is a single byte, and silently wrapping it would reuse pad
/// material across 4 KiB boundaries. The check is kept in release builds
/// too (same convention as [`xor_in_place`]): pad reuse is a silent
/// security failure, not a recoverable condition.
pub fn pad_into(key: &Aes128, iv: &Iv, pad: &mut [u8]) {
    assert!(
        pad.len() <= MAX_PAD_BYTES,
        "pad length {} exceeds the {} bytes one IV can generate (block index is u8)",
        pad.len(),
        MAX_PAD_BYTES
    );
    let b = iv.to_base_words();
    let mut i = 0u32;
    // Four independent blocks per interleaved cipher pass (see `pad_line`),
    // then single passes for the stragglers.
    let mut quads = pad.chunks_exact_mut(4 * BLOCK_SIZE);
    for quad in &mut quads {
        let blocks = key.encrypt_words4([
            [b[0], b[1] ^ i, b[2], b[3]],
            [b[0], b[1] ^ (i + 1), b[2], b[3]],
            [b[0], b[1] ^ (i + 2), b[2], b[3]],
            [b[0], b[1] ^ (i + 3), b[2], b[3]],
        ]);
        for (chunk, block) in quad.chunks_exact_mut(BLOCK_SIZE).zip(blocks.iter()) {
            chunk.copy_from_slice(&bytes_from_words(block));
        }
        i += 4;
    }
    let mut chunks = quads.into_remainder().chunks_exact_mut(BLOCK_SIZE);
    for chunk in &mut chunks {
        let block = key.encrypt_words([b[0], b[1] ^ i, b[2], b[3]]);
        chunk.copy_from_slice(&bytes_from_words(&block));
        i += 1;
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let block = bytes_from_words(&key.encrypt_words([b[0], b[1] ^ i, b[2], b[3]]));
        tail.copy_from_slice(&block[..tail.len()]);
    }
}

/// Generates a `len`-byte encryption pad for the given IV.
///
/// `len` is rounded up internally to a multiple of the AES block size but the
/// returned pad is exactly `len` bytes. Prefer [`pad_line`] (stack array) or
/// [`pad_into`] (caller-owned buffer) on hot paths; this convenience wrapper
/// allocates.
///
/// # Panics
///
/// Panics if `len` exceeds [`MAX_PAD_BYTES`]; see [`pad_into`].
///
/// # Examples
///
/// ```
/// use dolos_crypto::{aes::Aes128, ctr::{generate_pad, IvBuilder}};
///
/// let key = Aes128::new(&[1u8; 16]);
/// let iv = IvBuilder::new().address(0).counter(1).build();
/// let pad = generate_pad(&key, &iv, 64);
/// let other = generate_pad(&key, &IvBuilder::new().address(0).counter(2).build(), 64);
/// assert_ne!(pad, other); // counter bump changes the whole pad
/// ```
pub fn generate_pad(key: &Aes128, iv: &Iv, len: usize) -> Vec<u8> {
    let mut pad = vec![0u8; len];
    pad_into(key, iv, &mut pad);
    pad
}

/// XORs `data` in place with `pad`.
///
/// Applying the same pad twice restores the original data, so this single
/// function is both the encryption and the decryption primitive.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn xor_in_place(data: &mut [u8], pad: &[u8]) {
    assert_eq!(data.len(), pad.len(), "pad length mismatch");
    for (d, p) in data.iter_mut().zip(pad.iter()) {
        *d ^= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Aes128 {
        Aes128::new(&[0xA5; 16])
    }

    #[test]
    fn pad_is_deterministic_for_same_iv() {
        let iv = IvBuilder::new().address(4096).counter(9).build();
        assert_eq!(generate_pad(&key(), &iv, 64), generate_pad(&key(), &iv, 64));
    }

    #[test]
    fn pad_differs_per_block_within_line() {
        let iv = IvBuilder::new().address(0).counter(1).build();
        let pad = generate_pad(&key(), &iv, 64);
        assert_ne!(pad[0..16], pad[16..32]);
    }

    #[test]
    fn address_fields_decompose_correctly() {
        let iv = IvBuilder::new().address(2 * 4096 + 3 * 64).build();
        assert_eq!(iv.page_id(), 2);
        assert_eq!(iv.page_offset(), 3);
    }

    #[test]
    fn spatial_uniqueness_same_counter() {
        let a = generate_pad(&key(), &IvBuilder::new().address(0).counter(5).build(), 64);
        let b = generate_pad(&key(), &IvBuilder::new().address(64).counter(5).build(), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn temporal_uniqueness_same_address() {
        let a = generate_pad(&key(), &IvBuilder::new().address(64).counter(5).build(), 64);
        let b = generate_pad(&key(), &IvBuilder::new().address(64).counter(6).build(), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn xor_round_trips() {
        let iv = IvBuilder::new().address(128).counter(2).build();
        let pad = generate_pad(&key(), &iv, 64);
        let original: Vec<u8> = (0..64u8).collect();
        let mut data = original.clone();
        xor_in_place(&mut data, &pad);
        assert_ne!(data, original);
        xor_in_place(&mut data, &pad);
        assert_eq!(data, original);
    }

    #[test]
    fn odd_length_pads() {
        let iv = IvBuilder::new().counter(1).build();
        assert_eq!(generate_pad(&key(), &iv, 72).len(), 72);
        assert_eq!(generate_pad(&key(), &iv, 1).len(), 1);
        assert_eq!(generate_pad(&key(), &iv, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "pad length")]
    fn xor_length_mismatch_panics() {
        let mut d = [0u8; 4];
        xor_in_place(&mut d, &[0u8; 5]);
    }

    #[test]
    fn pad_line_matches_generate_pad() {
        let iv = IvBuilder::new()
            .address(3 * 4096 + 7 * 64)
            .counter(42)
            .build();
        assert_eq!(
            pad_line(&key(), &iv).to_vec(),
            generate_pad(&key(), &iv, 64)
        );
    }

    #[test]
    fn pad_into_matches_generate_pad_including_partial_tail() {
        let iv = IvBuilder::new().address(4096).counter(11).build();
        for len in [0, 1, 15, 16, 17, 63, 64, 72, 4096] {
            let mut buf = vec![0xEE; len];
            pad_into(&key(), &iv, &mut buf);
            assert_eq!(buf, generate_pad(&key(), &iv, len), "len {len}");
        }
    }

    #[test]
    fn max_pad_is_exactly_one_page() {
        // 256 blocks of 16 bytes = one 4 KiB page; the last block uses
        // index 255 and no wraparound occurs.
        let iv = IvBuilder::new().counter(1).build();
        let pad = generate_pad(&key(), &iv, MAX_PAD_BYTES);
        assert_eq!(pad.len(), MAX_PAD_BYTES);
        // The final block differs from the first: distinct block indices.
        assert_ne!(pad[..16], pad[MAX_PAD_BYTES - 16..]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pad_beyond_block_index_range_panics() {
        let iv = IvBuilder::new().counter(1).build();
        let _ = generate_pad(&key(), &iv, MAX_PAD_BYTES + 1);
    }
}
