//! Counter-mode encryption pads with the paper's IV layout.
//!
//! Figure 2 of the paper defines the initialization vector as
//! `Page ID ‖ Page Offset ‖ Counter ‖ Padding`. Encrypting successive IVs
//! (one per 16-byte AES block within the cacheline) produces a one-time pad
//! that is XORed with the plaintext. Because the pad depends only on
//! (address, counter), it can be generated before the data arrives — the
//! property both the Ma-SU decryption-latency hiding and the Mi-SU
//! boot-time pre-generation rely on.

use crate::aes::{Aes128, Block, BLOCK_SIZE};

/// Bytes per 4 KiB page (64 cachelines of 64 B).
const PAGE_SIZE: u64 = 4096;

/// The initialization vector for one cacheline encryption.
///
/// Split-counter schemes form the IV from the page ID, the cacheline's
/// offset within the page, and the (major, minor) encryption counter. The
/// Mi-SU reuses the same layout with a synthetic "address" equal to the WPQ
/// slot index and the persistent counter register as the counter.
///
/// # Examples
///
/// ```
/// use dolos_crypto::ctr::IvBuilder;
///
/// let iv = IvBuilder::new().address(0x1040).counter(3).build();
/// let same = IvBuilder::new().address(0x1040).counter(3).build();
/// let other = IvBuilder::new().address(0x1040).counter(4).build();
/// assert_eq!(iv, same);
/// assert_ne!(iv, other);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Iv {
    page_id: u64,
    page_offset: u16,
    counter: u64,
}

impl Iv {
    /// The page ID field.
    pub fn page_id(&self) -> u64 {
        self.page_id
    }

    /// The page-offset field (cacheline index within the page).
    pub fn page_offset(&self) -> u16 {
        self.page_offset
    }

    /// The counter field.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Serializes the IV into an AES block, with `block_index` occupying the
    /// padding field so each 16-byte slice of a cacheline gets a distinct IV.
    ///
    /// Layout (little-endian fields):
    ///
    /// ```text
    /// byte  0..5   page ID (low 40 bits; 4 KiB pages cover 2^52 B)
    /// byte  5..7   page offset (cacheline index within the page)
    /// byte  7      block index within the cacheline
    /// byte  8..16  counter, all 64 bits
    /// ```
    ///
    /// The counter field carries the full `u64`: a truncated counter would
    /// reuse a pad once the increment stream crosses the truncation
    /// boundary, which is exactly the one-time-pad violation counter-mode
    /// must never permit. The page-ID field is the one deliberately
    /// narrowed — its 40 bits still address 2^52 bytes of 4 KiB pages,
    /// far beyond any configuration the simulator models.
    fn to_block(self, block_index: u8) -> Block {
        let mut block = [0u8; BLOCK_SIZE];
        block[0..5].copy_from_slice(&self.page_id.to_le_bytes()[0..5]);
        block[5..7].copy_from_slice(&self.page_offset.to_le_bytes());
        block[7] = block_index;
        block[8..16].copy_from_slice(&self.counter.to_le_bytes());
        block
    }
}

/// Builder for [`Iv`] values.
///
/// Either set the fields directly or derive page ID and offset from a byte
/// address with [`IvBuilder::address`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IvBuilder {
    page_id: u64,
    page_offset: u16,
    counter: u64,
}

impl IvBuilder {
    /// Creates a builder with all-zero fields.
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives page ID and page offset from a byte address.
    pub fn address(mut self, addr: u64) -> Self {
        self.page_id = addr / PAGE_SIZE;
        self.page_offset = ((addr % PAGE_SIZE) / 64) as u16;
        self
    }

    /// Sets the page ID directly.
    pub fn page_id(mut self, id: u64) -> Self {
        self.page_id = id;
        self
    }

    /// Sets the page offset (cacheline index within the page) directly.
    pub fn page_offset(mut self, offset: u16) -> Self {
        self.page_offset = offset;
        self
    }

    /// Sets the counter field.
    pub fn counter(mut self, counter: u64) -> Self {
        self.counter = counter;
        self
    }

    /// Builds the IV.
    pub fn build(self) -> Iv {
        Iv {
            page_id: self.page_id,
            page_offset: self.page_offset,
            counter: self.counter,
        }
    }
}

/// Generates a `len`-byte encryption pad for the given IV.
///
/// `len` is rounded up internally to a multiple of the AES block size but the
/// returned pad is exactly `len` bytes.
///
/// # Examples
///
/// ```
/// use dolos_crypto::{aes::Aes128, ctr::{generate_pad, IvBuilder}};
///
/// let key = Aes128::new(&[1u8; 16]);
/// let iv = IvBuilder::new().address(0).counter(1).build();
/// let pad = generate_pad(&key, &iv, 64);
/// let other = generate_pad(&key, &IvBuilder::new().address(0).counter(2).build(), 64);
/// assert_ne!(pad, other); // counter bump changes the whole pad
/// ```
pub fn generate_pad(key: &Aes128, iv: &Iv, len: usize) -> Vec<u8> {
    let blocks = len.div_ceil(BLOCK_SIZE);
    let mut pad = Vec::with_capacity(blocks * BLOCK_SIZE);
    for i in 0..blocks {
        pad.extend_from_slice(&key.encrypt_block(&iv.to_block(i as u8)));
    }
    pad.truncate(len);
    pad
}

/// XORs `data` in place with `pad`.
///
/// Applying the same pad twice restores the original data, so this single
/// function is both the encryption and the decryption primitive.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn xor_in_place(data: &mut [u8], pad: &[u8]) {
    assert_eq!(data.len(), pad.len(), "pad length mismatch");
    for (d, p) in data.iter_mut().zip(pad.iter()) {
        *d ^= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Aes128 {
        Aes128::new(&[0xA5; 16])
    }

    #[test]
    fn pad_is_deterministic_for_same_iv() {
        let iv = IvBuilder::new().address(4096).counter(9).build();
        assert_eq!(generate_pad(&key(), &iv, 64), generate_pad(&key(), &iv, 64));
    }

    #[test]
    fn pad_differs_per_block_within_line() {
        let iv = IvBuilder::new().address(0).counter(1).build();
        let pad = generate_pad(&key(), &iv, 64);
        assert_ne!(pad[0..16], pad[16..32]);
    }

    #[test]
    fn address_fields_decompose_correctly() {
        let iv = IvBuilder::new().address(2 * 4096 + 3 * 64).build();
        assert_eq!(iv.page_id(), 2);
        assert_eq!(iv.page_offset(), 3);
    }

    #[test]
    fn spatial_uniqueness_same_counter() {
        let a = generate_pad(&key(), &IvBuilder::new().address(0).counter(5).build(), 64);
        let b = generate_pad(&key(), &IvBuilder::new().address(64).counter(5).build(), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn temporal_uniqueness_same_address() {
        let a = generate_pad(&key(), &IvBuilder::new().address(64).counter(5).build(), 64);
        let b = generate_pad(&key(), &IvBuilder::new().address(64).counter(6).build(), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn xor_round_trips() {
        let iv = IvBuilder::new().address(128).counter(2).build();
        let pad = generate_pad(&key(), &iv, 64);
        let original: Vec<u8> = (0..64u8).collect();
        let mut data = original.clone();
        xor_in_place(&mut data, &pad);
        assert_ne!(data, original);
        xor_in_place(&mut data, &pad);
        assert_eq!(data, original);
    }

    #[test]
    fn odd_length_pads() {
        let iv = IvBuilder::new().counter(1).build();
        assert_eq!(generate_pad(&key(), &iv, 72).len(), 72);
        assert_eq!(generate_pad(&key(), &iv, 1).len(), 1);
        assert_eq!(generate_pad(&key(), &iv, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "pad length")]
    fn xor_length_mismatch_panics() {
        let mut d = [0u8; 4];
        xor_in_place(&mut d, &[0u8; 5]);
    }
}
